"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work in
environments without the ``wheel`` package, e.g. offline CI images.
"""

from setuptools import setup

setup()
