"""Packaging for the SLIDE reproduction.

The single source of truth for the version is ``repro.__version__``; it is
read from the source file (not imported) so building a wheel never requires
the package's runtime dependencies to be importable.
"""

from __future__ import annotations

import re
from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent


def _read_version() -> str:
    source = (_HERE / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__\s*=\s*"([^"]+)"', source, re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


def _read_long_description() -> str:
    readme = _HERE / "README.md"
    return readme.read_text() if readme.is_file() else ""


setup(
    name="repro-slide",
    version=_read_version(),
    description=(
        "Reproduction of SLIDE (MLSys 2020): LSH-driven adaptive sparsity for "
        "training and serving wide networks, with a micro-batching model server"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.__main__:main",
            "repro-ingest=repro.data.__main__:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
