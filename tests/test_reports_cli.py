"""CLI tests for ``python -m repro.reports`` and the per-bench main() shim.

These stick to the cheapest registered generators (fig4/fig11 run in well
under a second) so tier-1 exercises the real end-to-end path — generate,
stamp, validate, write, trend-check — without paying for the full sweep.
"""

from __future__ import annotations

import json

import pytest

import repro.reports.cli as cli
from repro.reports.artifacts import read_artifact
from repro.reports.cli import bench_main, main, run_bench
from repro.reports.registry import bench_ids, get_spec
from repro.reports.trend import TrendReport


def test_list_mentions_every_bench_id(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for bench_id in bench_ids():
        assert bench_id in out
    assert "modelled" in out and "measured" in out


def test_no_arguments_prints_help_and_exits_2(capsys):
    assert main([]) == 2
    assert "--run" in capsys.readouterr().out


def test_run_writes_validated_smoke_artifact(tmp_path, capsys):
    rc = main(
        ["--run", "fig11_hard_threshold", "--smoke", "--in-process", "--out-dir", str(tmp_path)]
    )
    assert rc == 0
    assert "[ok] fig11_hard_threshold" in capsys.readouterr().out
    spec = get_spec("fig11_hard_threshold")
    document = read_artifact(spec, tmp_path / spec.artifact)
    assert document["envelope"]["mode"] == "smoke"
    assert document["envelope"]["measured"] is False


def test_run_with_check_skips_modelled_and_passes(tmp_path, capsys):
    rc = main(
        [
            "--run",
            "fig11_hard_threshold",
            "--check",
            "--smoke",
            "--in-process",
            "--out-dir",
            str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "[skipped] fig11_hard_threshold: modelled artifact" in out
    assert "0 regression(s)" in out


def test_unknown_bench_id_raises_key_error():
    with pytest.raises(KeyError, match="unknown bench id"):
        main(["--run", "fig99_imaginary"])


def test_trend_failure_turns_into_exit_code_1(monkeypatch, tmp_path, capsys):
    # Plumbing test: when the trend checker reports a problem, the CLI must
    # exit non-zero and say why (the gate math itself is covered in
    # test_reports_trend.py).
    def fake_run(spec, smoke, out_dir):
        return []

    failing = TrendReport()
    failing.errors.append("baseline: synthetic failure for the test")
    monkeypatch.setattr(cli, "_run_one", fake_run)
    monkeypatch.setattr(cli, "check_trend", lambda specs, fresh_dir: failing)
    rc = main(
        ["--run", "fig4_sampling", "--check", "--in-process", "--out-dir", str(tmp_path)]
    )
    assert rc == 1
    captured = capsys.readouterr()
    assert "trend gating failed" in captured.err
    assert "synthetic failure" in captured.out


def test_checker_problems_fail_the_run(monkeypatch, tmp_path, capsys):
    spec = get_spec("fig4_sampling")
    monkeypatch.setattr(
        cli, "run_bench", lambda *a, **k: ({}, tmp_path / spec.artifact, ["bad invariant"])
    )
    rc = main(["--run", "fig4_sampling", "--in-process", "--out-dir", str(tmp_path)])
    assert rc == 1
    captured = capsys.readouterr()
    assert "CHECK-FAILED" in captured.out
    assert "bad invariant" in captured.err


def test_run_bench_applies_param_overrides(tmp_path):
    spec = get_spec("fig4_sampling")
    payload, written, problems = run_bench(
        spec,
        smoke=True,
        param_overrides={"neuron_counts": [500, 1000], "queries": 2},
        out_path=tmp_path / "override.json",
    )
    assert problems == []
    assert payload["config"]["neuron_counts"] == [500, 1000]
    assert payload["config"]["queries"] == 2
    document = json.loads(written.read_text())
    assert document["envelope"]["bench_id"] == "fig4_sampling"


def test_bench_main_shim_smoke(tmp_path, capsys):
    out = tmp_path / "shim.json"
    rc = bench_main(
        "fig4_sampling",
        ["--smoke", "--out", str(out), "--param", "queries=2", "--param", "neuron_counts=[500]"],
    )
    assert rc == 0
    assert out.is_file()
    assert f"wrote {out}" in capsys.readouterr().out


def test_bench_main_reports_checker_failures(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(
        cli, "run_bench", lambda *a, **k: ({"rows": []}, tmp_path / "x.json", ["broken"])
    )
    rc = bench_main("fig4_sampling", ["--smoke", "--out", str(tmp_path / "x.json")])
    assert rc == 1
    assert "checks FAILED" in capsys.readouterr().err


def test_sync_docs_roundtrip(capsys):
    # --check-docs is clean right after --sync-docs (exercised against the
    # real docs/paper_map.md; sync is idempotent so the tree is unchanged).
    assert main(["--sync-docs"]) in (0,)
    capsys.readouterr()
    assert main(["--check-docs"]) == 0
    assert "docs check OK" in capsys.readouterr().out
