"""End-to-end integration tests tying the full stack together.

These tests exercise the same pipeline as the paper's main experiment — build
a synthetic extreme-classification dataset, train SLIDE with LSH-driven
adaptive sparsity, train the dense and sampled-softmax baselines, and check
the paper's qualitative claims hold:

1. SLIDE reaches a comparable accuracy to full-softmax training.
2. SLIDE's per-iteration work is a small fraction of the dense baseline's.
3. Adaptive (LSH) sampling beats static sampled softmax at equal budget.
4. Sparse asynchronous updates rarely conflict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dense import DenseNetwork, DenseNetworkConfig
from repro.baselines.sampled_softmax import SampledSoftmaxConfig, SampledSoftmaxNetwork
from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import SyntheticXCConfig, generate_synthetic_xc
from repro.metrics.accuracy import precision_at_1
from repro.parallel.conflicts import analyze_update_conflicts
from repro.types import SparseBatch


@pytest.fixture(scope="module")
def xc_dataset():
    config = SyntheticXCConfig(
        feature_dim=768,
        label_dim=160,
        num_train=512,
        num_test=128,
        avg_features_per_example=30,
        avg_labels_per_example=2.0,
        prototype_nnz=16,
        noise_scale=0.2,
        seed=21,
        name="integration-xc",
    )
    return generate_synthetic_xc(config)


def build_slide(dataset, target_active=24, seed=1) -> SlideNetwork:
    config = SlideNetworkConfig(
        input_dim=dataset.config.feature_dim,
        layers=(
            LayerConfig(size=48, activation="relu"),
            LayerConfig(
                size=dataset.config.label_dim,
                activation="softmax",
                lsh=LSHConfig(hash_family="simhash", k=5, l=20, bucket_size=48),
                sampling=SamplingConfig(
                    strategy="vanilla", target_active=target_active, min_active=12
                ),
                rebuild=RebuildScheduleConfig(initial_period=5, decay=0.3),
            ),
        ),
        seed=seed,
    )
    return SlideNetwork(config)


@pytest.fixture(scope="module")
def trained_slide(xc_dataset):
    network = build_slide(xc_dataset)
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=32,
            epochs=2,
            optimizer=OptimizerConfig(learning_rate=2e-3),
            eval_every=0,
            seed=4,
        ),
    )
    history = trainer.train(xc_dataset.train, xc_dataset.test)
    return network, trainer, history


class TestSlideEndToEnd:
    def test_slide_learns_the_task(self, xc_dataset, trained_slide):
        network, trainer, _ = trained_slide
        accuracy = trainer.evaluate(xc_dataset.test)
        random_baseline = 1.0 / xc_dataset.config.label_dim
        assert accuracy > 10 * random_baseline
        assert accuracy > 0.3

    def test_output_layer_stays_sparse_during_training(self, xc_dataset, trained_slide):
        network, _, history = trained_slide
        avg_active = network.average_output_active(xc_dataset.test[:32])
        assert avg_active < 0.6 * xc_dataset.config.label_dim
        # Work counters recorded every iteration.
        assert all(r.active_weights > 0 for r in history.records)

    def test_hash_tables_were_rebuilt_on_schedule(self, trained_slide):
        network, _, _ = trained_slide
        assert network.output_layer.num_rebuilds >= 2

    def test_slide_work_is_fraction_of_dense_work(self, xc_dataset, trained_slide):
        network, _, history = trained_slide
        hidden = 48
        dense_weights_per_sample = (
            hidden * xc_dataset.config.feature_dim
            + hidden * xc_dataset.config.label_dim
        )
        slide_weights_per_sample = history.total_active_weights() / (
            sum(r.batch_size for r in history.records)
        )
        assert slide_weights_per_sample < 0.5 * dense_weights_per_sample


class TestSlideVsBaselines:
    def test_slide_matches_dense_final_accuracy(self, xc_dataset, trained_slide):
        """Figure 5's iteration-parity claim, at final-accuracy granularity:
        adaptive sparsification does not cost accuracy."""
        _, trainer, _ = trained_slide
        slide_accuracy = trainer.evaluate(xc_dataset.test)

        dense = DenseNetwork(
            DenseNetworkConfig(
                input_dim=xc_dataset.config.feature_dim,
                hidden_dim=48,
                output_dim=xc_dataset.config.label_dim,
                optimizer=OptimizerConfig(learning_rate=2e-3),
                seed=1,
            )
        )
        rng = np.random.default_rng(0)
        order = np.arange(len(xc_dataset.train))
        for _epoch in range(2):
            rng.shuffle(order)
            for start in range(0, len(order), 32):
                chunk = [xc_dataset.train[i] for i in order[start : start + 32]]
                dense.train_batch(
                    SparseBatch.from_examples(
                        chunk,
                        feature_dim=xc_dataset.config.feature_dim,
                        label_dim=xc_dataset.config.label_dim,
                    )
                )
        scores = np.stack([dense.predict_dense(ex) for ex in xc_dataset.test])
        dense_accuracy = precision_at_1(scores, [ex.labels for ex in xc_dataset.test])
        # SLIDE must be at least competitive with the dense baseline.
        assert slide_accuracy >= dense_accuracy - 0.05

    def test_adaptive_sampling_beats_static_sampled_softmax(self, xc_dataset, trained_slide):
        """Figure 7: with a *larger* sampling budget, static sampled softmax
        still converges to a worse accuracy than SLIDE's adaptive sampling."""
        _, trainer, _ = trained_slide
        slide_accuracy = trainer.evaluate(xc_dataset.test)

        ssm = SampledSoftmaxNetwork(
            SampledSoftmaxConfig(
                input_dim=xc_dataset.config.feature_dim,
                hidden_dim=48,
                output_dim=xc_dataset.config.label_dim,
                sample_fraction=0.2,
                optimizer=OptimizerConfig(learning_rate=2e-3),
                seed=1,
            )
        )
        rng = np.random.default_rng(0)
        order = np.arange(len(xc_dataset.train))
        for _epoch in range(2):
            rng.shuffle(order)
            for start in range(0, len(order), 32):
                chunk = [xc_dataset.train[i] for i in order[start : start + 32]]
                ssm.train_batch(
                    SparseBatch.from_examples(
                        chunk,
                        feature_dim=xc_dataset.config.feature_dim,
                        label_dim=xc_dataset.config.label_dim,
                    )
                )
        scores = np.stack([ssm.predict_dense(ex) for ex in xc_dataset.test])
        ssm_accuracy = precision_at_1(scores, [ex.labels for ex in xc_dataset.test])
        assert slide_accuracy > ssm_accuracy


class TestHogwildSafety:
    def test_update_conflicts_shrink_relative_to_dense_updates(self, xc_dataset):
        """Section 3.1's claim is about the *sparsity* of the update
        footprint.  At this test's scaled-down label dimension (160 labels)
        absolute conflict rates are inevitably high — the right invariants
        are that each sample touches a small fraction of the layer and that
        the pairwise overlap between two samples' footprints stays modest
        (dense updates would overlap 100 %)."""
        network = build_slide(xc_dataset, target_active=16, seed=9)
        batch = xc_dataset.train[:32]
        active_sets = []
        for example in batch:
            result = network.forward_sample(example, include_labels=True)
            active_sets.append(result.active_output_ids)
        report = analyze_update_conflicts(active_sets, network.output_dim)
        assert report.mean_active < 0.35 * network.output_dim
        assert report.pairwise_overlap_rate < 0.5
        # The same footprint sizes on the paper's 670K-wide layer would give
        # a negligible expected conflict rate.
        from repro.parallel.conflicts import expected_conflict_fraction

        assert (
            expected_conflict_fraction(32, int(report.mean_active), 670_091) < 0.01
        )

    def test_hogwild_and_synchronous_training_reach_similar_accuracy(self, xc_dataset):
        accuracies = {}
        for mode in (True, False):
            network = build_slide(xc_dataset, seed=5)
            trainer = SlideTrainer(
                network,
                TrainingConfig(
                    batch_size=32,
                    epochs=1,
                    optimizer=OptimizerConfig(learning_rate=2e-3),
                    seed=6,
                ),
                hogwild=mode,
            )
            trainer.train(xc_dataset.train, xc_dataset.test)
            accuracies[mode] = trainer.evaluate(xc_dataset.test[:64])
        # Asynchronous accumulation must not collapse accuracy.
        assert accuracies[True] >= 0.5 * max(accuracies[False], 0.05)


class TestDifferentHashFamilies:
    @pytest.mark.parametrize("family", ["simhash", "dwta", "wta", "doph", "minhash"])
    def test_training_works_with_every_hash_family(self, xc_dataset, family):
        config = SlideNetworkConfig(
            input_dim=xc_dataset.config.feature_dim,
            layers=(
                LayerConfig(size=32, activation="relu"),
                LayerConfig(
                    size=xc_dataset.config.label_dim,
                    activation="softmax",
                    lsh=LSHConfig(hash_family=family, k=4, l=12, bucket_size=48),
                    sampling=SamplingConfig(strategy="vanilla", target_active=20, min_active=12),
                ),
            ),
            seed=2,
        )
        network = SlideNetwork(config)
        trainer = SlideTrainer(
            network,
            TrainingConfig(batch_size=32, epochs=1, optimizer=OptimizerConfig(learning_rate=2e-3), seed=3),
        )
        history = trainer.train(xc_dataset.train[:256], xc_dataset.test[:64])
        assert len(history.records) > 0
        accuracy = evaluate_precision_at_1(network, xc_dataset.test[:64])
        assert accuracy > 1.0 / xc_dataset.config.label_dim


class TestSamplingStrategiesEndToEnd:
    @pytest.mark.parametrize("strategy", ["vanilla", "topk", "hard_threshold"])
    def test_all_strategies_learn(self, xc_dataset, strategy):
        config = SlideNetworkConfig(
            input_dim=xc_dataset.config.feature_dim,
            layers=(
                LayerConfig(size=32, activation="relu"),
                LayerConfig(
                    size=xc_dataset.config.label_dim,
                    activation="softmax",
                    lsh=LSHConfig(hash_family="simhash", k=5, l=16, bucket_size=48),
                    sampling=SamplingConfig(strategy=strategy, target_active=20, min_active=12),
                ),
            ),
            seed=8,
        )
        network = SlideNetwork(config)
        trainer = SlideTrainer(
            network,
            TrainingConfig(batch_size=32, epochs=1, optimizer=OptimizerConfig(learning_rate=2e-3), seed=9),
        )
        trainer.train(xc_dataset.train[:256], xc_dataset.test[:64])
        accuracy = trainer.evaluate(xc_dataset.test[:64])
        assert accuracy > 5.0 / xc_dataset.config.label_dim
