"""Registry completeness: every bench script is registered, importable, and
runnable in smoke mode under its declared timeout; every bench id is
documented in docs/paper_map.md.
"""

from __future__ import annotations

import pytest

from repro.reports.artifacts import read_artifact
from repro.reports.cli import _run_isolated
from repro.reports.docs_sync import check_paper_map
from repro.reports.registry import all_specs, bench_ids, get_spec
from repro.reports.spec import BENCHMARKS_DIR, BenchSpec, MetricGate, REPO_ROOT

SPECS = all_specs()
SPEC_IDS = [spec.bench_id for spec in SPECS]

# Generating every smoke artifact in tier-1 would double the suite's wall
# time; the per-bench smoke sweep runs as CI's bench-regression job
# (`python -m repro.reports --all --smoke --check`).  Tier-1 keeps the
# structural checks plus a smoke run of the cheapest generators, which
# exercises the isolated-runner path end to end.
TIER1_SMOKE_IDS = ["fig4_sampling", "fig11_hard_threshold", "table1_datasets"]


# ----------------------------------------------------------------------
# Bench files <-> registry bijection
# ----------------------------------------------------------------------
def test_every_bench_script_is_registered_and_vice_versa():
    on_disk = {path.stem for path in BENCHMARKS_DIR.glob("bench_*.py")}
    registered = {spec.module for spec in SPECS}
    missing = on_disk - registered
    stale = registered - on_disk
    assert not missing, f"bench scripts without a registry entry: {sorted(missing)}"
    assert not stale, f"registry entries without a bench script: {sorted(stale)}"


def test_bench_ids_are_unique_and_artifacts_distinct():
    ids = bench_ids()
    assert len(ids) == len(set(ids))
    artifacts = [spec.artifact for spec in SPECS]
    assert len(artifacts) == len(set(artifacts))


def test_unknown_bench_id_raises_with_known_ids():
    with pytest.raises(KeyError, match="unknown bench id"):
        get_spec("fig99_imaginary")


# ----------------------------------------------------------------------
# Every generator resolves: run(), checker, standalone main()
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_generator_and_checker_resolve(spec):
    assert callable(spec.generator())
    if spec.checker is not None:
        assert callable(spec.check_fn())
    module = spec.load_module()
    assert callable(getattr(module, "main", None)), (
        f"benchmarks/{spec.module}.py must keep a standalone main() shim"
    )


@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_spec_declares_sane_metadata(spec):
    assert spec.title and spec.paper_anchor
    assert spec.timeout_s > 0
    assert isinstance(spec.schema, dict) and spec.schema.get("type") == "object"
    for gate in spec.gates:
        assert gate.direction in ("higher", "lower")


def test_modelled_specs_never_declare_gates():
    # Satellite of the trend design: modelled payloads restate calibrated
    # paper factors, so "regressions" there would only measure constants.
    modelled = [spec.bench_id for spec in SPECS if not spec.measured]
    assert "fig10_hugepages_simd" in modelled and "table4_hugepages_counters" in modelled
    for spec in SPECS:
        if not spec.measured:
            assert spec.gates == (), f"{spec.bench_id} is modelled but declares gates"


def test_bench_spec_rejects_gates_on_modelled_entries():
    with pytest.raises(ValueError, match="modelled benchmarks must not declare"):
        BenchSpec(
            bench_id="x",
            title="x",
            paper_anchor="Fig 0",
            module="bench_x",
            artifact="BENCH_x.json",
            schema={"type": "object"},
            measured=False,
            gates=(MetricGate("y", "higher", 0.1),),
        )


# ----------------------------------------------------------------------
# Smoke-mode execution under the per-spec timeout (isolated runner)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench_id", TIER1_SMOKE_IDS)
def test_generator_runs_in_smoke_mode_under_timeout(bench_id, tmp_path):
    spec = get_spec(bench_id)
    failures = _run_isolated(spec, smoke=True, out_dir=tmp_path)
    assert failures == []
    document = read_artifact(spec, tmp_path / spec.artifact)
    assert document["envelope"]["mode"] == "smoke"


# ----------------------------------------------------------------------
# Docs coverage: every bench id appears in docs/paper_map.md
# ----------------------------------------------------------------------
def test_every_bench_id_documented_in_paper_map():
    text = (REPO_ROOT / "docs" / "paper_map.md").read_text()
    missing = [spec.bench_id for spec in SPECS if spec.bench_id not in text]
    assert not missing, f"docs/paper_map.md does not mention: {missing}"


def test_paper_map_status_table_in_sync_with_registry():
    assert check_paper_map() == []
