"""Tests for the active-neuron sampling strategies and their probabilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LSHConfig, SamplingConfig
from repro.lsh.index import LSHIndex, QueryResult
from repro.sampling.probability import hard_threshold_curve
from repro.sampling.strategies import (
    HardThresholdSampling,
    TopKSampling,
    VanillaSampling,
    make_sampling_strategy,
)


@pytest.fixture
def built_index(rng) -> tuple[LSHIndex, np.ndarray]:
    config = LSHConfig(hash_family="simhash", k=4, l=16, bucket_size=32)
    index = LSHIndex(input_dim=24, config=config, seed=2)
    weights = rng.normal(size=(200, 24))
    index.build(weights)
    return index, weights


class TestVanillaSampling:
    def test_respects_target_active(self, built_index, rng):
        index, weights = built_index
        strategy = VanillaSampling(rng=np.random.default_rng(0))
        active = strategy.sample(index, rng.normal(size=24), target_active=10)
        assert 0 < active.size <= 10 + index.config.bucket_size  # stops after exceeding target
        assert active.size == np.unique(active).size

    def test_truncates_to_target_when_overshooting(self, built_index, rng):
        index, _ = built_index
        strategy = VanillaSampling(rng=np.random.default_rng(1))
        active = strategy.sample(index, rng.normal(size=24), target_active=5)
        assert active.size <= 5

    def test_no_target_returns_union_of_probed_tables(self, built_index, rng):
        index, _ = built_index
        strategy = VanillaSampling(rng=np.random.default_rng(2))
        active = strategy.sample(index, rng.normal(size=24), target_active=None)
        assert active.size >= 0

    def test_select_from_result(self):
        strategy = VanillaSampling(rng=np.random.default_rng(3))
        result = QueryResult(buckets=[np.array([1, 2, 3]), np.array([4, 5])])
        selected = strategy.select_from_result(result, target_active=2)
        assert selected.size <= 2 + 3
        assert set(selected.tolist()).issubset({1, 2, 3, 4, 5})

    def test_empty_buckets_return_empty(self):
        strategy = VanillaSampling(rng=np.random.default_rng(4))
        result = QueryResult(buckets=[np.zeros(0, dtype=np.int64)] * 3)
        assert strategy.select_from_result(result, 5).size == 0


class TestTopKSampling:
    def test_selects_most_frequent(self):
        strategy = TopKSampling()
        result = QueryResult(
            buckets=[np.array([1, 2]), np.array([2, 3]), np.array([2, 4]), np.array([3])]
        )
        selected = strategy.select_from_result(result, target_active=2)
        assert 2 in selected  # appears 3 times
        assert 3 in selected  # appears twice
        assert selected.size == 2

    def test_returns_all_when_fewer_than_target(self):
        strategy = TopKSampling()
        result = QueryResult(buckets=[np.array([5, 9])])
        np.testing.assert_array_equal(strategy.select_from_result(result, 10), [5, 9])

    def test_sample_uses_all_tables(self, built_index, rng):
        index, _ = built_index
        queries_before = index.num_queries
        strategy = TopKSampling()
        strategy.sample(index, rng.normal(size=24), target_active=8)
        assert index.num_queries == queries_before + 1


class TestHardThresholdSampling:
    def test_keeps_only_frequent_candidates(self):
        strategy = HardThresholdSampling(threshold=2)
        result = QueryResult(
            buckets=[np.array([1, 2]), np.array([2, 3]), np.array([2, 3]), np.array([4])]
        )
        selected = strategy.select_from_result(result, target_active=None)
        np.testing.assert_array_equal(selected, [2, 3])

    def test_falls_back_when_nothing_clears_threshold(self):
        strategy = HardThresholdSampling(threshold=5)
        result = QueryResult(buckets=[np.array([1]), np.array([2])])
        selected = strategy.select_from_result(result, target_active=1)
        assert selected.size == 1

    def test_respects_target_active_cap(self):
        strategy = HardThresholdSampling(threshold=1, rng=np.random.default_rng(0))
        result = QueryResult(buckets=[np.arange(50), np.arange(50)])
        selected = strategy.select_from_result(result, target_active=10)
        assert selected.size == 10

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            HardThresholdSampling(threshold=0)


class TestStrategyFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("vanilla", VanillaSampling),
            ("topk", TopKSampling),
            ("hard_threshold", HardThresholdSampling),
        ],
    )
    def test_builds_by_name(self, name, cls):
        config = SamplingConfig(strategy=name)
        assert isinstance(make_sampling_strategy(config), cls)

    def test_hard_threshold_gets_configured_threshold(self):
        config = SamplingConfig(strategy="hard_threshold", hard_threshold=4)
        strategy = make_sampling_strategy(config)
        assert strategy.threshold == 4


class TestSamplingQuality:
    def test_topk_retrieves_higher_inner_product_neurons_than_random(self, rng):
        """Adaptive sampling must be biased toward large inner products —
        the property that distinguishes SLIDE from static sampled softmax."""
        config = LSHConfig(hash_family="simhash", k=5, l=24, bucket_size=32)
        index = LSHIndex(input_dim=32, config=config, seed=3)
        weights = rng.normal(size=(300, 32))
        index.build(weights)
        strategy = TopKSampling()
        query = rng.normal(size=32)
        active = strategy.sample(index, query, target_active=30)
        assert active.size > 0
        sampled_mean = np.mean(weights[active] @ query)
        overall_mean = np.mean(weights @ query)
        assert sampled_mean > overall_mean


class TestProbabilityCurves:
    def test_hard_threshold_curve_shape(self):
        p_values, selected = hard_threshold_curve(k=1, l=10, m=3)
        assert p_values.shape == selected.shape
        assert np.all((selected >= 0) & (selected <= 1))
        # Selection probability increases with collision probability.
        assert np.all(np.diff(selected) >= -1e-12)

    def test_higher_threshold_selects_less(self):
        p_values, low = hard_threshold_curve(k=1, l=10, m=1)
        _, high = hard_threshold_curve(k=1, l=10, m=9)
        assert np.all(high <= low + 1e-12)
        # Figure 11's qualitative claim: at p=0.8+, even m=9 has a decent chance.
        assert high[-1] > 0.4
