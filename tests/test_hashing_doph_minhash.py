"""Tests for DOPH and MinHash families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.doph import DOPH
from repro.hashing.minhash import MinHash
from repro.types import SparseVector


class TestMinHash:
    def test_shape_and_determinism(self, rng):
        family = MinHash(input_dim=128, k=2, l=6, seed=1)
        dense = np.zeros(128)
        dense[rng.choice(128, size=10, replace=False)] = 1.0
        codes = family.hash_vector(dense)
        assert codes.shape == (6, 2)
        np.testing.assert_array_equal(codes, family.hash_vector(dense))

    def test_codes_in_range(self, rng):
        family = MinHash(input_dim=64, k=3, l=4, code_range=16, seed=2)
        dense = np.zeros(64)
        dense[rng.choice(64, size=8, replace=False)] = 1.0
        codes = family.hash_vector(dense)
        assert codes.min() >= 0 and codes.max() < 16

    def test_empty_vector_sentinel(self):
        family = MinHash(input_dim=32, k=2, l=3, seed=3)
        codes = family.hash_vector(np.zeros(32))
        assert np.all(codes == 0)

    def test_jaccard_monotonicity(self, rng):
        """Sets with higher Jaccard similarity collide more often."""
        family = MinHash(input_dim=512, k=1, l=400, seed=4)

        def to_vec(support):
            dense = np.zeros(512)
            dense[np.asarray(list(support))] = 1.0
            return dense

        base = set(rng.choice(512, size=60, replace=False).tolist())
        high_overlap = set(list(base)[:50]) | set(
            rng.choice(512, size=10, replace=False).tolist()
        )
        low_overlap = set(rng.choice(512, size=60, replace=False).tolist())

        codes_base = family.hash_vector(to_vec(base)).ravel()
        high_rate = np.mean(codes_base == family.hash_vector(to_vec(high_overlap)).ravel())
        low_rate = np.mean(codes_base == family.hash_vector(to_vec(low_overlap)).ravel())
        assert high_rate > low_rate

    def test_invalid_code_range_raises(self):
        with pytest.raises(ValueError):
            MinHash(input_dim=16, k=2, l=2, code_range=1)


class TestDOPH:
    def test_shape_and_determinism(self, rng):
        family = DOPH(input_dim=128, k=2, l=8, top_k=16, seed=1)
        vector = np.abs(rng.normal(size=128))
        codes = family.hash_vector(vector)
        assert codes.shape == (8, 2)
        np.testing.assert_array_equal(codes, family.hash_vector(vector))

    def test_binarise_keeps_top_k(self, rng):
        family = DOPH(input_dim=32, k=2, l=2, top_k=4, seed=2)
        vector = np.arange(32, dtype=np.float64)
        support = family.binarise(vector)
        np.testing.assert_array_equal(np.sort(support), [28, 29, 30, 31])

    def test_binarise_sparse_below_top_k_keeps_all(self, rng):
        family = DOPH(input_dim=64, k=2, l=2, top_k=10, seed=3)
        sparse = SparseVector(indices=[4, 9], values=[1.0, 2.0], dimension=64)
        support = family.binarise(sparse)
        np.testing.assert_array_equal(np.sort(support), [4, 9])

    def test_binarise_drops_exact_zeros(self):
        family = DOPH(input_dim=16, k=2, l=2, top_k=8, seed=4)
        vector = np.zeros(16)
        vector[3] = 1.0
        support = family.binarise(vector)
        np.testing.assert_array_equal(support, [3])

    def test_codes_in_range(self, rng):
        family = DOPH(input_dim=96, k=3, l=5, top_k=20, seed=5)
        codes = family.hash_vector(np.abs(rng.normal(size=96)))
        assert codes.min() >= 0 and codes.max() < family.code_cardinality

    def test_overlapping_supports_collide_more(self, rng):
        # Keep K*L well below the input dimension so each bin spans several
        # coordinates and the minwise position actually carries information.
        family = DOPH(input_dim=256, k=2, l=10, top_k=30, seed=6)
        base = np.zeros(256)
        support = rng.choice(256, size=30, replace=False)
        base[support] = 1.0
        similar = np.zeros(256)
        similar[support[:25]] = 1.0
        similar[rng.choice(np.setdiff1d(np.arange(256), support), size=5, replace=False)] = 1.0
        different = np.zeros(256)
        different[rng.choice(np.setdiff1d(np.arange(256), support), size=30, replace=False)] = 1.0

        codes_base = family.hash_vector(base).ravel()
        sim_rate = np.mean(codes_base == family.hash_vector(similar).ravel())
        diff_rate = np.mean(codes_base == family.hash_vector(different).ravel())
        assert sim_rate > diff_rate

    def test_invalid_top_k_raises(self):
        with pytest.raises(ValueError):
            DOPH(input_dim=16, k=2, l=2, top_k=0)


@given(seed=st.integers(0, 500), nnz=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_doph_codes_within_cardinality_property(seed, nnz):
    rng = np.random.default_rng(seed)
    family = DOPH(input_dim=64, k=2, l=4, top_k=8, seed=seed)
    dense = np.zeros(64)
    dense[rng.choice(64, size=nnz, replace=False)] = rng.random(size=nnz) + 0.1
    codes = family.hash_vector(dense)
    assert codes.min() >= 0
    assert codes.max() < family.code_cardinality
