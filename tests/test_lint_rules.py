"""Per-rule fixtures for the repo-native linter (``tools/lint``).

Each rule gets three kinds of fixture: code that must fire, compliant code
that must stay quiet, and a violating line whose ``# repro: allow[...]``
pragma suppresses it.  Fixtures are in-memory :class:`ModuleSource`
instances with a chosen repo-relative path, so path-scoped rules (DET001's
seeded-path prefixes, EXC001's serving taxonomy) can be exercised without
touching real files.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from tools.lint.core import REPO_ROOT, ModuleSource, collect_sources, run_rules
from tools.lint.rules import ALL_RULES, default_rules, select_rules
from tools.lint.rules.cfg001 import ConfigSchemaSyncRule
from tools.lint.rules.det001 import DeterminismRule
from tools.lint.rules.exc001 import ExceptionDisciplineRule
from tools.lint.rules.lck001 import LockDisciplineRule
from tools.lint.rules.mpx001 import MultiprocessingHygieneRule
from tools.lint.rules.thr001 import ThreadHygieneRule


def check(rule, code: str, rel: str = "src/repro/serving/_fixture.py"):
    """Run one rule over an in-memory module; returns surviving violations."""
    source = ModuleSource(Path(rel), rel, textwrap.dedent(code))
    return run_rules([rule], [source], root=REPO_ROOT)


# ----------------------------------------------------------------------
# LCK001 — lock discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    rule = LockDisciplineRule()

    def test_unguarded_acquire_fires(self):
        violations = check(
            self.rule,
            """
            def swap(lock):
                lock.acquire()
                do_work()
                lock.release()
            """,
        )
        assert len(violations) == 1
        assert "not release-guarded" in violations[0].message

    def test_try_finally_guard_is_quiet(self):
        assert not check(
            self.rule,
            """
            def swap(lock):
                lock.acquire()
                try:
                    do_work()
                finally:
                    lock.release()
            """,
        )

    def test_rwlock_write_guard_pairing(self):
        fired = check(
            self.rule,
            """
            def swap(rw):
                rw.acquire_write()
                mutate()
                rw.release_write()
            """,
        )
        assert len(fired) == 1 and "release_write" in fired[0].message
        assert not check(
            self.rule,
            """
            def swap(rw):
                rw.acquire_write()
                try:
                    mutate()
                finally:
                    rw.release_write()
            """,
        )

    def test_mismatched_release_target_fires(self):
        violations = check(
            self.rule,
            """
            def swap(a, b):
                a.acquire()
                try:
                    do_work()
                finally:
                    b.release()
            """,
        )
        assert len(violations) == 1

    def test_sleep_under_lock_fires(self):
        violations = check(
            self.rule,
            """
            def tick(self):
                with self._lock:
                    time.sleep(0.1)
            """,
        )
        assert len(violations) == 1
        assert "time.sleep" in violations[0].message

    def test_untimed_queue_get_under_lock_fires(self):
        violations = check(
            self.rule,
            """
            def pull(self):
                with self._lock:
                    item = self._queue.get()
                return item
            """,
        )
        assert len(violations) == 1
        assert "un-timed" in violations[0].message

    def test_timed_queue_get_under_lock_is_quiet(self):
        assert not check(
            self.rule,
            """
            def pull(self):
                with self._lock:
                    item = self._queue.get(timeout=0.1)
                return item
            """,
        )

    def test_predict_under_write_lock_fires_but_read_lock_is_fine(self):
        fired = check(
            self.rule,
            """
            def swap(self, x):
                with self._swap_lock.write_locked():
                    return self.engine.predict(x)
            """,
        )
        assert len(fired) == 1 and "exclusive" in fired[0].message
        assert not check(
            self.rule,
            """
            def serve(self, x):
                with self._swap_lock.read_locked():
                    return self.engine.predict(x)
            """,
        )

    def test_pragma_suppresses(self):
        assert not check(
            self.rule,
            """
            def tick(self):
                with self._lock:
                    time.sleep(0.1)  # repro: allow[lock] test fixture
            """,
        )


# ----------------------------------------------------------------------
# DET001 — determinism in seeded paths
# ----------------------------------------------------------------------
class TestDeterminism:
    rule = DeterminismRule()
    scoped = "src/repro/core/_fixture.py"

    def test_np_random_global_fires_in_scope(self):
        violations = check(
            self.rule,
            """
            import numpy as np

            def sample():
                return np.random.rand(4)
            """,
            rel=self.scoped,
        )
        assert len(violations) == 1
        assert "np.random.rand" in violations[0].message

    def test_default_rng_is_sanctioned(self):
        assert not check(
            self.rule,
            """
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed).random(4)
            """,
            rel=self.scoped,
        )

    def test_out_of_scope_module_is_ignored(self):
        assert not check(
            self.rule,
            """
            import numpy as np

            def sample():
                return np.random.rand(4)
            """,
            rel="src/repro/serving/_fixture.py",
        )

    def test_wall_clock_fires_and_monotonic_does_not(self):
        fired = check(
            self.rule,
            """
            import time

            def stamp():
                return time.time()
            """,
            rel=self.scoped,
        )
        assert len(fired) == 1 and "wall clock" in fired[0].message
        assert not check(
            self.rule,
            """
            import time

            def measure():
                return time.monotonic()
            """,
            rel=self.scoped,
        )

    def test_stdlib_random_module_state_fires(self):
        violations = check(
            self.rule,
            """
            import random

            def sample():
                return random.random()
            """,
            rel=self.scoped,
        )
        assert len(violations) == 1
        # Explicit instances remain legal.
        assert not check(
            self.rule,
            """
            import random

            def sample(seed):
                return random.Random(seed).random()
            """,
            rel=self.scoped,
        )

    def test_clock_pragma_suppresses(self):
        assert not check(
            self.rule,
            """
            import time

            def stamp():
                return time.time()  # repro: allow[clock] metadata only
            """,
            rel=self.scoped,
        )


# ----------------------------------------------------------------------
# MPX001 — multiprocessing hygiene
# ----------------------------------------------------------------------
class TestMultiprocessingHygiene:
    rule = MultiprocessingHygieneRule()

    def test_lambda_target_fires(self):
        violations = check(
            self.rule,
            """
            import multiprocessing as mp

            def launch():
                return mp.Process(target=lambda: None)
            """,
        )
        assert len(violations) == 1
        assert "lambda" in violations[0].message

    def test_nested_function_target_fires(self):
        violations = check(
            self.rule,
            """
            import multiprocessing as mp

            def launch():
                def work():
                    pass
                return mp.Process(target=work)
            """,
        )
        assert len(violations) == 1
        assert "module level" in violations[0].message

    def test_module_level_target_is_quiet(self):
        assert not check(
            self.rule,
            """
            import multiprocessing as mp

            def work():
                pass

            def launch():
                return mp.Process(target=work)
            """,
        )

    def test_sharedmemory_without_cleanup_fires_twice(self):
        violations = check(
            self.rule,
            """
            from multiprocessing.shared_memory import SharedMemory

            def allocate(n):
                return SharedMemory(create=True, size=n)
            """,
        )
        messages = " ".join(v.message for v in violations)
        assert len(violations) == 2
        assert "close()" in messages and "unlink()" in messages

    def test_sharedmemory_with_cleanup_is_quiet(self):
        assert not check(
            self.rule,
            """
            from multiprocessing.shared_memory import SharedMemory

            def allocate(n):
                return SharedMemory(create=True, size=n)

            def destroy(shm):
                shm.close()
                shm.unlink()
            """,
        )

    def test_pragma_suppresses(self):
        assert not check(
            self.rule,
            """
            import multiprocessing as mp

            def launch():
                # repro: allow[mp] fork-only test helper
                return mp.Process(target=lambda: None)
            """,
        )


# ----------------------------------------------------------------------
# EXC001 — exception discipline
# ----------------------------------------------------------------------
class TestExceptionDiscipline:
    rule = ExceptionDisciplineRule()

    def test_bare_except_fires(self):
        violations = check(
            self.rule,
            """
            def risky():
                try:
                    work()
                except:
                    handle()
            """,
        )
        assert len(violations) == 1
        assert "bare" in violations[0].message

    def test_silent_broad_except_fires(self):
        violations = check(
            self.rule,
            """
            def risky():
                try:
                    work()
                except Exception:
                    pass
            """,
        )
        assert len(violations) == 1
        assert "silent" in violations[0].message

    def test_handled_broad_except_is_quiet(self):
        assert not check(
            self.rule,
            """
            def risky(log):
                try:
                    work()
                except Exception as exc:
                    log.warning("work failed: %s", exc)
            """,
        )

    def test_narrow_silent_except_is_quiet(self):
        assert not check(
            self.rule,
            """
            def risky():
                try:
                    work()
                except KeyError:
                    pass
            """,
        )

    def test_runtime_error_raise_in_serving_fires(self):
        violations = check(
            self.rule,
            """
            def submit(self):
                raise RuntimeError("queue is closed")
            """,
            rel="src/repro/serving/_fixture.py",
        )
        assert len(violations) == 1
        assert "taxonomy" in violations[0].message

    def test_runtime_error_outside_serving_is_quiet(self):
        assert not check(
            self.rule,
            """
            def submit(self):
                raise RuntimeError("queue is closed")
            """,
            rel="src/repro/core/_fixture.py",
        )

    def test_taxonomy_raise_in_serving_is_quiet(self):
        assert not check(
            self.rule,
            """
            from repro.serving.errors import NotServingError

            def submit(self):
                raise NotServingError("queue is closed")
            """,
            rel="src/repro/serving/_fixture.py",
        )

    def test_pragma_suppresses_silent_except(self):
        assert not check(
            self.rule,
            """
            def risky():
                try:
                    work()
                except Exception:  # repro: allow[exc] best-effort teardown
                    pass
            """,
        )


# ----------------------------------------------------------------------
# THR001 — thread hygiene
# ----------------------------------------------------------------------
class TestThreadHygiene:
    rule = ThreadHygieneRule()

    def test_unjoined_nondaemon_thread_fires(self):
        violations = check(
            self.rule,
            """
            import threading

            def launch(fn):
                worker = threading.Thread(target=fn)
                worker.start()
                return worker
            """,
        )
        assert len(violations) == 1
        assert "neither daemon=True nor" in violations[0].message

    def test_daemon_thread_is_quiet(self):
        assert not check(
            self.rule,
            """
            import threading

            def launch(fn):
                worker = threading.Thread(target=fn, daemon=True)
                worker.start()
                return worker
            """,
        )

    def test_joined_thread_is_quiet(self):
        assert not check(
            self.rule,
            """
            import threading

            def run(fn):
                worker = threading.Thread(target=fn)
                worker.start()
                worker.join()
            """,
        )

    def test_fire_and_forget_construction_fires(self):
        violations = check(
            self.rule,
            """
            import threading

            def launch(fn):
                threading.Thread(target=fn).start()
            """,
        )
        assert len(violations) == 1
        assert "fire-and-forget" in violations[0].message

    def test_pragma_suppresses(self):
        assert not check(
            self.rule,
            """
            import threading

            def launch(fn):
                # repro: allow[thread] joined by the caller
                worker = threading.Thread(target=fn)
                worker.start()
                return worker
            """,
        )


# ----------------------------------------------------------------------
# CFG001 — live check against the real repro.config
# ----------------------------------------------------------------------
def test_cfg001_is_clean_on_the_repo():
    violations = list(ConfigSchemaSyncRule().check_project(REPO_ROOT))
    assert violations == [], [v.message for v in violations]


# ----------------------------------------------------------------------
# Registry sanity
# ----------------------------------------------------------------------
def test_rule_registry_codes_are_unique_and_selectable():
    codes = [rule.code for rule in ALL_RULES]
    assert len(codes) == len(set(codes))
    assert len(codes) >= 6
    selected = select_rules(["lck001", "DET001"])
    assert [rule.code for rule in selected] == ["LCK001", "DET001"]
    with pytest.raises(ValueError):
        select_rules(["NOPE999"])


def test_default_rules_exclude_docs_checker():
    assert "DOC001" not in {rule.code for rule in default_rules()}
    assert "DOC001" in {rule.code for rule in ALL_RULES}


def test_rules_are_quiet_on_the_repo_itself():
    """The committed tree carries zero un-pragma'd violations (empty baseline)."""
    sources, parse_errors = collect_sources(["src/repro"], root=REPO_ROOT)
    assert not parse_errors
    violations = run_rules(default_rules(), sources, root=REPO_ROOT)
    assert violations == [], [v.format() for v in violations]
