"""Tests for the hash-table rebuild schedules."""

from __future__ import annotations

import math

import pytest

from repro.lsh.scheduler import ExponentialDecaySchedule, FixedPeriodSchedule


class TestFixedPeriodSchedule:
    def test_rebuilds_every_period(self):
        schedule = FixedPeriodSchedule(period=10)
        assert not schedule.should_rebuild(9)
        assert schedule.should_rebuild(10)
        schedule.record_rebuild(10)
        assert schedule.next_rebuild_iteration() == 20
        assert not schedule.should_rebuild(19)
        assert schedule.should_rebuild(20)

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            FixedPeriodSchedule(period=0)


class TestExponentialDecaySchedule:
    def test_first_rebuild_at_initial_period(self):
        schedule = ExponentialDecaySchedule(initial_period=50, decay=0.1)
        assert not schedule.should_rebuild(49)
        assert schedule.should_rebuild(50)

    def test_gaps_grow_exponentially(self):
        schedule = ExponentialDecaySchedule(initial_period=10, decay=0.5)
        gaps = []
        iteration = 0
        previous = 0
        for _ in range(5):
            iteration = schedule.next_rebuild_iteration()
            schedule.record_rebuild(iteration)
            gaps.append(iteration - previous)
            previous = iteration
        assert all(b >= a for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] > gaps[0]

    def test_zero_decay_is_fixed_period(self):
        schedule = ExponentialDecaySchedule(initial_period=20, decay=0.0)
        iterations = []
        it = 0
        for _ in range(4):
            it = schedule.next_rebuild_iteration()
            schedule.record_rebuild(it)
            iterations.append(it)
        assert iterations == [20, 40, 60, 80]

    def test_max_period_caps_gap(self):
        schedule = ExponentialDecaySchedule(initial_period=10, decay=2.0, max_period=25)
        for _ in range(10):
            schedule.record_rebuild(schedule.next_rebuild_iteration())
        assert schedule.current_period() == 25

    def test_planned_iterations_match_paper_formula(self):
        n0, lam = 50, 0.1
        schedule = ExponentialDecaySchedule(initial_period=n0, decay=lam, max_period=100_000)
        planned = schedule.planned_iterations(4)
        expected = []
        total = 0.0
        for t in range(4):
            total += n0 * math.exp(lam * t)
            expected.append(int(round(total)))
        assert planned == expected

    def test_long_runs_do_not_overflow(self):
        """Regression: ``N0 * exp(lambda * t)`` used to raise OverflowError
        once ``lambda * t`` passed math.exp's ~709 limit; long trainings must
        settle at max_period instead of crashing."""
        schedule = ExponentialDecaySchedule(
            initial_period=10, decay=5.0, max_period=1000
        )
        iteration = 0
        for _ in range(500):  # exponent reaches 2500 — far past overflow
            iteration = schedule.next_rebuild_iteration()
            schedule.record_rebuild(iteration)
        assert schedule.current_period() == 1000
        assert schedule.next_rebuild_iteration() == iteration + 1000
        # planned_iterations shares the clamped formula.
        planned = schedule.planned_iterations(400)
        assert planned[-1] - planned[-2] == 1000

    def test_planned_iterations_validation(self):
        schedule = ExponentialDecaySchedule(initial_period=10)
        with pytest.raises(ValueError):
            schedule.planned_iterations(-1)
        assert schedule.planned_iterations(0) == []

    def test_rebuild_count_tracks_rebuilds(self):
        schedule = ExponentialDecaySchedule(initial_period=5, decay=0.3)
        assert schedule.rebuild_count == 0
        schedule.record_rebuild(5)
        schedule.record_rebuild(12)
        assert schedule.rebuild_count == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(initial_period=0)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(initial_period=10, decay=-1.0)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(initial_period=10, max_period=5)
