"""Trend-gate tests: metric extraction, tolerance math, and — the point of
the whole gate — injected regressions must fail naming the offending metric,
while in-tolerance wobble and modelled artifacts must pass.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.reports.registry import get_spec
from repro.reports.spec import MetricGate
from repro.reports.trend import (
    MetricPathError,
    check_trend,
    compare_documents,
    extract_metric,
)


def _golden(bench_id: str):
    spec = get_spec(bench_id)
    return spec, json.loads(spec.artifact_path().read_text())


# ----------------------------------------------------------------------
# Metric path language
# ----------------------------------------------------------------------
def test_extract_metric_dict_walk_and_index():
    payload = {"a": {"b": [10, 20, 30]}}
    assert extract_metric(payload, "a.b[2]") == 30.0


def test_extract_metric_row_selector_string_and_numeric():
    payload = {"rows": [{"mode": "dense", "x": 1.0}, {"mode": "sparse", "x": 2.0}]}
    assert extract_metric(payload, "rows[mode=sparse].x") == 2.0
    sweep = {"rows": [{"load": 0.5, "p99": 10.0}, {"load": 2, "p99": 40.0}]}
    # "2" matches the numeric field 2 (and would match 2.0 as well).
    assert extract_metric(sweep, "rows[load=2].p99") == 40.0


def test_extract_metric_errors_name_the_path():
    with pytest.raises(MetricPathError, match="no key 'b'"):
        extract_metric({"a": {}}, "a.b")
    with pytest.raises(MetricPathError, match="no row with mode=x"):
        extract_metric({"rows": [{"mode": "y"}]}, "rows[mode=x].v")
    with pytest.raises(MetricPathError, match="not a number"):
        extract_metric({"a": "text"}, "a")
    with pytest.raises(MetricPathError, match="not a number"):
        extract_metric({"a": True}, "a")  # bools are not metrics
    with pytest.raises(MetricPathError, match="not a list"):
        extract_metric({"a": {}}, "a[0]")


# ----------------------------------------------------------------------
# Gate tolerance math
# ----------------------------------------------------------------------
def test_gate_bounds_and_directions():
    higher = MetricGate("x", "higher", rel_tol=0.1, abs_tol=0.05)
    assert higher.bound(1.0) == pytest.approx(0.85)
    assert higher.passes(1.0, 0.9)
    assert not higher.passes(1.0, 0.8)
    assert higher.passes(1.0, 2.0)  # improvements never fail

    lower = MetricGate("y", "lower", rel_tol=0.75, abs_tol=5.0)
    assert lower.bound(100.0) == pytest.approx(180.0)
    assert lower.passes(100.0, 150.0)
    assert not lower.passes(100.0, 200.0)
    assert lower.passes(100.0, 1.0)  # improvements never fail

    with pytest.raises(ValueError):
        MetricGate("z", "sideways", rel_tol=0.1)
    with pytest.raises(ValueError):
        MetricGate("z", "higher", rel_tol=-0.1)


# ----------------------------------------------------------------------
# Injected regressions fail, naming the metric
# ----------------------------------------------------------------------
def test_p99_inflated_2x_fails_naming_the_metric():
    spec, committed = _golden("serving_latency")
    fresh = copy.deepcopy(committed)
    for row in fresh["payload"]["qps_sweep"]:
        if row["load_fraction"] == 2:
            row["latency_ms"]["p99"] *= 2.0
    report = compare_documents(spec, committed, fresh)
    assert not report.ok
    failing = [result.metric for result in report.failures]
    assert failing == ["qps_sweep[load_fraction=2].latency_ms.p99"]
    described = report.describe()
    assert "REGRESSION" in described and "latency_ms.p99" in described


def test_precision_drop_past_tolerance_fails_naming_the_metric():
    spec, committed = _golden("train_throughput")
    fresh = copy.deepcopy(committed)
    for row in fresh["payload"]["rows"]:
        if row["mode"] == "sparse_batched":
            row["precision_at_1"] = 0.05  # far below committed*(1-0.1)-0.05
    report = compare_documents(spec, committed, fresh)
    assert not report.ok
    failing = [result.metric for result in report.failures]
    assert failing == ["rows[mode=sparse_batched].precision_at_1"]


def test_in_tolerance_wobble_passes():
    spec, committed = _golden("serving_latency")
    fresh = copy.deepcopy(committed)
    for row in fresh["payload"]["qps_sweep"]:
        row["latency_ms"]["p99"] *= 1.05  # well inside rel_tol=0.75 + abs 5ms
    fresh["payload"]["capacity"]["sustained_qps"] *= 0.95  # inside rel_tol=0.6
    report = compare_documents(spec, committed, fresh)
    assert report.ok, report.describe()
    assert len(report.results) == len(spec.gates)


def test_identical_artifact_passes_every_gate():
    spec, committed = _golden("train_throughput")
    report = compare_documents(spec, committed, copy.deepcopy(committed))
    assert report.ok
    assert all(result.ok for result in report.results)


# ----------------------------------------------------------------------
# Modelled artifacts are excluded from gating (satellite: fig10/table4)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench_id", ["fig10_hugepages_simd", "table4_hugepages_counters"])
def test_modelled_metric_mutation_is_not_gated(bench_id):
    spec, committed = _golden(bench_id)
    fresh = copy.deepcopy(committed)
    # Blow up every top-level numeric in the modelled payload; the trend
    # checker must still skip (these numbers restate calibrated paper
    # factors, not host measurements).
    for key, value in list(fresh["payload"].items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            fresh["payload"][key] = value * 10.0
    report = compare_documents(spec, committed, fresh)
    assert report.ok
    assert report.results == []
    assert any("modelled artifact, not trend-gated" in entry for entry in report.skipped)


# ----------------------------------------------------------------------
# Artifact-level failure modes
# ----------------------------------------------------------------------
def test_mode_mismatch_is_an_error_not_a_comparison():
    spec, committed = _golden("train_throughput")
    fresh = copy.deepcopy(committed)
    fresh["envelope"]["mode"] = "full"
    report = compare_documents(spec, committed, fresh)
    assert not report.ok
    assert any("mode mismatch" in entry for entry in report.errors)
    assert report.results == []  # no per-gate comparisons across modes


def test_missing_gated_metric_in_fresh_artifact_fails():
    spec, committed = _golden("train_throughput")
    fresh = copy.deepcopy(committed)
    del fresh["payload"]["speedup_batched_vs_per_sample"]
    report = compare_documents(spec, committed, fresh)
    failing = {result.metric: result for result in report.failures}
    assert "speedup_batched_vs_per_sample" in failing
    assert "fresh artifact" in failing["speedup_batched_vs_per_sample"].detail


def test_check_trend_reports_missing_fresh_artifact_as_error(tmp_path):
    spec = get_spec("train_throughput")
    report = check_trend([spec], fresh_dir=tmp_path)
    assert not report.ok
    assert any("fresh" in entry and "missing" in entry for entry in report.errors)


def test_check_trend_against_self_is_clean(tmp_path):
    # Copy the committed baseline into the "fresh" dir: like-for-like must
    # pass every gate and skip the ungated/modelled specs.
    gated = get_spec("train_throughput")
    modelled = get_spec("fig10_hugepages_simd")
    for spec in (gated, modelled):
        (tmp_path / spec.artifact).write_text(spec.artifact_path().read_text())
    report = check_trend([gated, modelled], fresh_dir=tmp_path)
    assert report.ok, report.describe()
    assert len(report.results) == len(gated.gates)
    assert len(report.skipped) == 1
