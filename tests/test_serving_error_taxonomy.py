"""Regression tests for :class:`repro.serving.errors.NotServingError`.

The "not started / already closed" rejections used to be bare
``RuntimeError``\\ s, invisible to the serving metrics and HTTP mapping
(lint rule EXC001 flagged them).  They now share a taxonomy class; these
tests pin the class contract and every raise site, while confirming the
errors still satisfy the historical ``RuntimeError`` catch interface.
"""

from __future__ import annotations

import pytest

from repro.config import ServingConfig
from repro.core.network import SlideNetwork
from repro.serving import CheckpointStore, ReplicaRouter, ServingRuntime
from repro.serving.batching import MicroBatchQueue
from repro.serving.errors import NotServingError, ServingError


class TestNotServingErrorContract:
    def test_taxonomy_placement(self):
        error = NotServingError("runtime is not started")
        assert isinstance(error, ServingError)
        assert isinstance(error, RuntimeError)  # legacy catch sites keep working

    def test_http_status_and_cause(self):
        assert NotServingError.http_status == 503
        assert NotServingError.cause == "not_serving"

    def test_message_carries_detail(self):
        assert str(NotServingError("router is not started")) == (
            "not serving: router is not started"
        )


class TestRaiseSites:
    def test_closed_queue_submit(self, tiny_dataset):
        queue = MicroBatchQueue()
        queue.close()
        with pytest.raises(NotServingError, match="closed"):
            queue.submit(tiny_dataset.test[0])

    def test_unstarted_runtime_submit(self, tiny_dataset, tiny_network_config):
        runtime = ServingRuntime.from_network(
            SlideNetwork(tiny_network_config), ServingConfig(num_workers=1)
        )
        with pytest.raises(NotServingError, match="not started"):
            runtime.submit(tiny_dataset.test[0])

    def test_unstarted_router_submit_and_predict(
        self, tiny_dataset, tiny_network_config, tmp_path
    ):
        store = CheckpointStore(tmp_path / "store")
        store.save(SlideNetwork(tiny_network_config))
        router = ReplicaRouter(
            store, serving_config=ServingConfig(num_workers=1, max_wait_ms=0.5)
        )
        with pytest.raises(NotServingError, match="not started"):
            router.submit(tiny_dataset.test[0])
        with pytest.raises(NotServingError, match="not started"):
            router.predict(tiny_dataset.test[0])
