"""The serving accuracy-vs-latency sweep and the WorkerPool substrate."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.harness.report import format_table
from repro.harness.serving_sweep import serving_accuracy_latency_sweep
from repro.parallel.executor import WorkerPool


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    from repro.config import (
        LayerConfig,
        LSHConfig,
        OptimizerConfig,
        SamplingConfig,
        SlideNetworkConfig,
        TrainingConfig,
    )

    lsh = LSHConfig(hash_family="simhash", k=3, l=16, bucket_size=64)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=3
        )
    )
    SlideTrainer(
        network,
        TrainingConfig(batch_size=16, epochs=1, optimizer=OptimizerConfig(), seed=11),
    ).train(tiny_dataset.train[:128], tiny_dataset.test[:32])
    return network


def test_sweep_produces_dense_reference_plus_budget_rows(trained, tiny_dataset):
    results = serving_accuracy_latency_sweep(
        trained, tiny_dataset.test[:48], budgets=(None, 16), k=1
    )
    assert [r.engine for r in results] == ["dense", "sparse", "sparse"]
    dense = results[0]
    assert dense.precision_gap == 0.0
    for result in results:
        assert 0.0 <= result.precision_at_1 <= 1.0
        assert result.p50_ms > 0.0
        assert result.p95_ms >= result.p50_ms
        assert result.throughput_rps > 0.0
    # The gap column is measured against the dense reference row.
    for sparse in results[1:]:
        assert sparse.precision_gap == pytest.approx(
            dense.precision_at_1 - sparse.precision_at_1
        )
    # Budgeted row scores at most its budget's worth of candidates.
    assert results[2].mean_candidates <= 16.0


def test_sweep_rows_render_as_table(trained, tiny_dataset):
    results = serving_accuracy_latency_sweep(
        trained, tiny_dataset.test[:16], budgets=(8,), k=1
    )
    rendered = format_table([r.as_row() for r in results], title="sweep")
    assert "precision@1" in rendered
    assert "p95_ms" in rendered


def test_sweep_requires_examples(trained):
    with pytest.raises(ValueError, match="non-empty"):
        serving_accuracy_latency_sweep(trained, [])


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
def test_worker_pool_runs_all_workers():
    seen: set[int] = set()
    lock = threading.Lock()

    def loop(index: int) -> None:
        with lock:
            seen.add(index)

    pool = WorkerPool(4, name="test")
    pool.start(loop)
    pool.join(timeout=5.0)
    assert seen == {0, 1, 2, 3}
    assert pool.alive_count() == 0


def test_worker_pool_alive_count_and_double_start():
    release = threading.Event()

    pool = WorkerPool(2)
    pool.start(lambda index: release.wait(timeout=10.0))
    time.sleep(0.05)
    assert pool.alive_count() == 2
    with pytest.raises(RuntimeError, match="already started"):
        pool.start(lambda index: None)
    release.set()
    pool.join(timeout=5.0)
    assert pool.alive_count() == 0


def test_worker_pool_validates():
    with pytest.raises(ValueError):
        WorkerPool(0)
