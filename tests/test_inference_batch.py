"""Batched prediction APIs and the strict evaluation flag."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dense import DenseNetwork, DenseNetworkConfig
from repro.core.inference import (
    evaluate_precision_at_1,
    evaluate_precision_at_k,
    predict_top_k,
    predict_top_k_batch,
)
from repro.core.network import SlideNetwork
from repro.types import SparseExample, SparseVector


@pytest.fixture
def network(tiny_network_config):
    return SlideNetwork(tiny_network_config)


def test_predict_dense_batch_matches_per_example(network, tiny_dataset):
    examples = tiny_dataset.test[:12]
    batched = network.predict_dense_batch(examples)
    assert batched.shape == (12, network.output_dim)
    for row, example in enumerate(examples):
        np.testing.assert_allclose(batched[row], network.predict_dense(example))


def test_predict_dense_batch_empty(network):
    assert network.predict_dense_batch([]).shape == (0, network.output_dim)


def test_dense_baseline_batch_matches_per_example(tiny_dataset):
    config = DenseNetworkConfig(
        input_dim=tiny_dataset.config.feature_dim,
        hidden_dim=16,
        output_dim=tiny_dataset.config.label_dim,
        seed=5,
    )
    baseline = DenseNetwork(config)
    examples = tiny_dataset.test[:8]
    batched = baseline.predict_dense_batch(examples)
    for row, example in enumerate(examples):
        np.testing.assert_allclose(batched[row], baseline.predict_dense(example))


def test_predict_top_k_batch_matches_scalar(network, tiny_dataset):
    examples = tiny_dataset.test[:10]
    batched = predict_top_k_batch(network, examples, k=3)
    assert batched.shape == (10, 3)
    for row, example in enumerate(examples):
        np.testing.assert_array_equal(batched[row], predict_top_k(network, example, k=3))


def test_predict_top_k_batch_validates_and_clamps(network, tiny_dataset):
    with pytest.raises(ValueError, match="positive"):
        predict_top_k_batch(network, tiny_dataset.test[:2], k=0)
    assert predict_top_k_batch(network, [], k=2).shape == (0, 2)
    # k beyond the class count clamps, matching the scalar helper.
    clamped = predict_top_k_batch(network, tiny_dataset.test[:2], k=network.output_dim + 5)
    assert clamped.shape == (2, network.output_dim)
    np.testing.assert_array_equal(
        clamped[0], predict_top_k(network, tiny_dataset.test[0], k=network.output_dim + 5)
    )


def test_precision_at_k_batch_equals_legacy_loop(network, tiny_dataset):
    examples = tiny_dataset.test[:32]
    batched = evaluate_precision_at_k(network, examples, k=2)
    scores = []
    for example in examples:
        if example.labels.size == 0:
            continue
        predictions = predict_top_k(network, example, k=2)
        scores.append(np.isin(predictions, example.labels).sum() / 2)
    assert batched == pytest.approx(float(np.mean(scores)))


def _unlabeled(dimension: int) -> SparseExample:
    return SparseExample(
        features=SparseVector(
            indices=np.array([0, 1]), values=np.array([1.0, -1.0]), dimension=dimension
        ),
        labels=np.zeros(0, dtype=np.int64),
    )


def test_strict_flag_reports_unlabeled_examples(network, tiny_dataset):
    examples = tiny_dataset.test[:8] + [_unlabeled(network.input_dim)] * 2
    # Default: silently skipped, same value as without the strays.
    relaxed = evaluate_precision_at_k(network, examples, k=1)
    assert relaxed == evaluate_precision_at_k(network, tiny_dataset.test[:8], k=1)
    with pytest.raises(ValueError, match="2 of 10 examples have no labels"):
        evaluate_precision_at_k(network, examples, k=1, strict=True)
    with pytest.raises(ValueError, match="no labels"):
        evaluate_precision_at_1(network, examples, strict=True)


def test_precision_all_unlabeled_returns_zero(network):
    assert evaluate_precision_at_k(network, [_unlabeled(network.input_dim)], k=1) == 0.0
