"""Latency histogram and throughput meter."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.perf.latency import LatencyHistogram, ThroughputMeter


def test_empty_histogram():
    histogram = LatencyHistogram()
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.percentile(50) == 0.0
    summary = histogram.summary()
    assert summary["count"] == 0.0
    assert summary["p99_s"] == 0.0


def test_percentiles_match_exact_quantiles_within_bucket_error():
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=-6.0, sigma=1.0, size=20_000)  # ~ms scale
    histogram = LatencyHistogram(growth=1.1)
    for sample in samples:
        histogram.record(sample)
    for p in (50, 95, 99):
        exact = np.percentile(samples, p)
        estimate = histogram.percentile(p)
        assert estimate == pytest.approx(exact, rel=0.12), f"p{p}"


def test_percentiles_are_monotone_and_bounded_by_observed_range():
    histogram = LatencyHistogram()
    for value in (0.001, 0.002, 0.004, 0.008, 0.5):
        histogram.record(value)
    p50, p95, p99 = (histogram.percentile(p) for p in (50, 95, 99))
    assert 0.001 <= p50 <= p95 <= p99 <= 0.5


def test_out_of_range_observations_are_clamped():
    histogram = LatencyHistogram(min_latency=1e-3, max_latency=1.0)
    histogram.record(1e-9)
    histogram.record(100.0)
    assert histogram.count == 2
    assert histogram.summary()["max_s"] == 100.0  # exact extremes still tracked
    assert histogram.percentile(100) <= 100.0


def test_merge_combines_observations():
    a, b = LatencyHistogram(), LatencyHistogram()
    for value in (0.01, 0.02):
        a.record(value)
    for value in (0.03, 0.04):
        b.record(value)
    a.merge(b)
    assert a.count == 4
    assert a.summary()["max_s"] == pytest.approx(0.04)


def test_merge_rejects_mismatched_layout():
    a = LatencyHistogram(growth=1.1)
    b = LatencyHistogram(growth=1.5)
    with pytest.raises(ValueError, match="bucket layout"):
        a.merge(b)
    # Same bucket count but a different range is also a layout mismatch.
    c = LatencyHistogram(min_latency=1e-6, max_latency=60.0)
    d = LatencyHistogram(min_latency=2e-6, max_latency=120.0)
    if c._counts.shape == d._counts.shape:
        with pytest.raises(ValueError, match="bucket layout"):
            c.merge(d)


def test_merge_self_and_cross_merges_complete():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.record(0.01)
    b.record(0.02)
    a.merge(a)  # no-op, must not deadlock on its own lock
    assert a.count == 1

    # Opposite-direction merges from two threads must not deadlock (locks
    # are taken in canonical id() order).
    done = threading.Event()

    def cross():
        for _ in range(200):
            a.merge(b)
            b.merge(a)
        done.set()

    thread = threading.Thread(target=cross)
    thread.start()
    for _ in range(200):
        b.merge(a)
        a.merge(b)
    assert done.wait(timeout=10.0)
    thread.join(timeout=5.0)


def test_concurrent_recording_loses_nothing():
    histogram = LatencyHistogram()
    per_thread = 2_000

    def record():
        for _ in range(per_thread):
            histogram.record(0.005)

    threads = [threading.Thread(target=record) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert histogram.count == 4 * per_thread


def test_validation():
    with pytest.raises(ValueError):
        LatencyHistogram(min_latency=0.0)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)
    with pytest.raises(ValueError):
        LatencyHistogram().percentile(101)


def test_throughput_meter():
    meter = ThroughputMeter()
    assert meter.requests_per_second() == 0.0
    meter.start()
    meter.mark(10)
    assert meter.completed == 10
    assert meter.elapsed() >= 0.0
    # Elapsed time is tiny but positive, so the rate is finite and positive.
    assert meter.requests_per_second() > 0.0


# ----------------------------------------------------------------------
# Raw-sample reservoir (exact percentiles, cross-worker aggregation)
# ----------------------------------------------------------------------
def test_exact_percentile_is_exact_while_samples_fit_reservoir():
    histogram = LatencyHistogram(reservoir_size=1000)
    values = np.linspace(0.001, 0.5, 500)
    for value in values:
        histogram.record(float(value))
    assert histogram.retained_samples == 500
    for p in (50.0, 99.0, 99.9):
        assert histogram.exact_percentile(p) == pytest.approx(
            float(np.percentile(values, p)), rel=1e-12
        )
    # The summary prefers exact percentiles when a reservoir is populated.
    summary = histogram.summary()
    assert summary["p999_s"] == pytest.approx(float(np.percentile(values, 99.9)))


def test_reservoir_subsamples_uniformly_beyond_capacity():
    histogram = LatencyHistogram(reservoir_size=200, seed=1)
    for value in np.linspace(0.001, 1.0, 5000):
        histogram.record(float(value))
    assert histogram.retained_samples == 200
    # A uniform sample of a uniform ramp: the median estimate must land
    # near the true median (loose bound — it is a 200-sample estimate).
    assert histogram.exact_percentile(50.0) == pytest.approx(0.5, abs=0.1)


def test_exact_percentile_falls_back_to_buckets_without_reservoir():
    histogram = LatencyHistogram()  # reservoir_size=0
    for value in (0.01, 0.02, 0.03):
        histogram.record(value)
    assert histogram.retained_samples == 0
    assert histogram.exact_percentile(50.0) == histogram.percentile(50.0)


def test_merge_pools_reservoirs_across_workers():
    workers = [LatencyHistogram(reservoir_size=4096, seed=i) for i in range(3)]
    all_values = []
    rng = np.random.default_rng(9)
    for worker in workers:
        values = rng.uniform(0.001, 0.2, size=300)
        all_values.append(values)
        for value in values:
            worker.record(float(value))
    merged = LatencyHistogram(reservoir_size=4096)
    for worker in workers:
        merged.merge(worker)
    pooled = np.concatenate(all_values)
    assert merged.count == pooled.size
    assert merged.retained_samples == pooled.size
    # Everything fit the reservoir, so the cross-worker p99 is *exact* —
    # the property the autoscaler and the serving bench rely on.
    assert merged.exact_percentile(99.0) == pytest.approx(
        float(np.percentile(pooled, 99.0)), rel=1e-12
    )


def test_merge_downsamples_weighted_when_reservoir_overflows():
    a = LatencyHistogram(reservoir_size=100, seed=2)
    b = LatencyHistogram(reservoir_size=100, seed=3)
    for value in np.full(900, 0.01):
        a.record(float(value))
    for value in np.full(100, 0.1):
        b.record(float(value))
    a.merge(b)
    assert a.count == 1000
    assert a.retained_samples == 100
    # a's history is 9x larger, so its value should dominate the merged
    # sample roughly in proportion.
    slow = sum(1 for v in [a.exact_percentile(p) for p in range(0, 100, 5)] if v > 0.05)
    assert slow <= 8  # ~10% of the mass sits at 0.1

def test_reservoir_validation():
    with pytest.raises(ValueError):
        LatencyHistogram(reservoir_size=-1)
