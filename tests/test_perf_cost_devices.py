"""Tests for the cost model, device profiles and wall-clock simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.cost_model import (
    WorkloadCounts,
    dense_iteration_work,
    sampled_softmax_iteration_work,
    slide_iteration_work,
)
from repro.perf.devices import (
    CPUProfile,
    GPUProfile,
    SLIDE_CPU_PROFILE,
    SLIDE_UTILIZATION,
    TF_CPU_PROFILE,
    TF_CPU_UTILIZATION,
    TF_GPU_PROFILE,
    UtilizationCurve,
)
from repro.perf.simulator import SimulatedRun, WallClockSimulator


class TestWorkloadCounts:
    def test_addition_and_scaling(self):
        a = WorkloadCounts(dense_macs=10, sparse_macs=5, hash_ops=2, table_lookups=1, bytes_touched=100)
        b = WorkloadCounts(dense_macs=1, sparse_macs=1, hash_ops=1, table_lookups=1, bytes_touched=1)
        total = a + b
        assert total.dense_macs == 11
        assert total.total_macs == 17
        scaled = a.scaled(2.0)
        assert scaled.sparse_macs == 10
        assert scaled.bytes_touched == 200

    def test_slide_work_much_smaller_than_dense(self):
        """The fundamental SLIDE claim: with <1 % active neurons the sparse
        workload is orders of magnitude below the dense one."""
        dense = dense_iteration_work(batch_size=128, avg_input_nnz=75, hidden_dim=128, output_dim=670_091)
        slide = slide_iteration_work(
            batch_size=128, avg_input_nnz=75, hidden_dim=128,
            avg_active_output=3000, k=8, l=50, output_dim=670_091,
        )
        assert slide.total_macs < dense.total_macs / 50

    def test_sampled_softmax_work_between_slide_and_dense(self):
        dense = dense_iteration_work(128, 75, 128, 670_091)
        ssm = sampled_softmax_iteration_work(128, 75, 128, num_sampled=int(0.2 * 670_091))
        slide = slide_iteration_work(128, 75, 128, 3000, 8, 50, output_dim=670_091)
        assert slide.total_macs < ssm.total_macs < dense.total_macs

    def test_work_scales_linearly_with_batch(self):
        small = slide_iteration_work(64, 75, 128, 1000, 9, 50)
        large = slide_iteration_work(128, 75, 128, 1000, 9, 50)
        assert large.sparse_macs == pytest.approx(2 * small.sparse_macs)

    def test_validation(self):
        with pytest.raises(ValueError):
            slide_iteration_work(0, 75, 128, 1000, 9, 50)
        with pytest.raises(ValueError):
            dense_iteration_work(8, 75, 0, 100)
        with pytest.raises(ValueError):
            sampled_softmax_iteration_work(8, 75, 128, 0)


class TestUtilizationCurve:
    def test_interpolates_between_anchors(self):
        curve = UtilizationCurve(cores=(1, 10), utilization=(1.0, 0.5))
        assert curve(1) == pytest.approx(1.0)
        assert curve(10) == pytest.approx(0.5)
        assert 0.5 < curve(5) < 1.0

    def test_clamps_outside_range(self):
        curve = UtilizationCurve(cores=(2, 8), utilization=(0.9, 0.6))
        assert curve(1) == pytest.approx(0.9)
        assert curve(64) == pytest.approx(0.6)

    def test_speedup_is_cores_times_utilization(self):
        curve = UtilizationCurve(cores=(1, 4), utilization=(1.0, 0.5))
        assert curve.speedup(4) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilizationCurve(cores=(1,), utilization=(1.0,))
        with pytest.raises(ValueError):
            UtilizationCurve(cores=(4, 1), utilization=(0.5, 0.5))
        with pytest.raises(ValueError):
            UtilizationCurve(cores=(1, 2), utilization=(0.5, 1.5))

    def test_paper_calibration_anchors(self):
        """Table 2: SLIDE stays above 80 %, TF-CPU degrades below 50 %."""
        for threads in (8, 16, 32):
            assert SLIDE_UTILIZATION(threads) >= 0.8
            assert TF_CPU_UTILIZATION(threads) <= 0.5


class TestDeviceProfiles:
    def _work(self):
        return slide_iteration_work(128, 75, 128, 1000, 9, 50, output_dim=205_443)

    def test_more_cores_is_faster(self):
        work = self._work()
        times = [SLIDE_CPU_PROFILE.iteration_seconds(work, cores=c) for c in (2, 8, 32, 44)]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_cores_capped_at_max(self):
        work = self._work()
        assert SLIDE_CPU_PROFILE.iteration_seconds(work, cores=44) == pytest.approx(
            SLIDE_CPU_PROFILE.iteration_seconds(work, cores=1000)
        )

    def test_gpu_ignores_core_count(self):
        work = dense_iteration_work(128, 75, 128, 205_443)
        assert TF_GPU_PROFILE.iteration_seconds(work, cores=2) == pytest.approx(
            TF_GPU_PROFILE.iteration_seconds(work, cores=44)
        )

    def test_invalid_cores_raise(self):
        with pytest.raises(ValueError):
            SLIDE_CPU_PROFILE.iteration_seconds(self._work(), cores=0)

    def test_sparse_ops_cost_more_per_op_than_dense(self):
        assert SLIDE_CPU_PROFILE.sparse_mac_seconds > SLIDE_CPU_PROFILE.dense_mac_seconds

    def test_paper_headline_shape_slide_beats_gpu_beats_cpu_at_44_cores(self):
        """Figure 5 qualitative check straight from the cost model: at the
        paper's Amazon-670K dimensions, SLIDE on 44 cores is faster per
        iteration than TF on the V100, which is faster than TF on 44 CPU
        cores."""
        dense_work = dense_iteration_work(256, 75, 128, 670_091)
        slide_work = slide_iteration_work(256, 75, 128, 3000, 8, 50, output_dim=670_091)
        slide_time = SLIDE_CPU_PROFILE.iteration_seconds(slide_work, cores=44)
        gpu_time = TF_GPU_PROFILE.iteration_seconds(dense_work)
        cpu_time = TF_CPU_PROFILE.iteration_seconds(dense_work, cores=44)
        assert slide_time < gpu_time < cpu_time
        # And the factors are in the right ballpark (paper: 2.7x and ~3x).
        assert 1.5 < gpu_time / slide_time < 6.0
        assert 1.5 < cpu_time / gpu_time < 8.0

    def test_gpu_crossover_exists_at_intermediate_core_count(self):
        """Figure 9: SLIDE needs some minimum number of cores to beat the GPU."""
        dense_work = dense_iteration_work(128, 75, 128, 205_443)
        slide_work = slide_iteration_work(128, 75, 128, 1000, 9, 50, output_dim=205_443)
        gpu_time = TF_GPU_PROFILE.iteration_seconds(dense_work)
        slide_2 = SLIDE_CPU_PROFILE.iteration_seconds(slide_work, cores=2)
        slide_44 = SLIDE_CPU_PROFILE.iteration_seconds(slide_work, cores=44)
        assert slide_2 > gpu_time  # too few cores: GPU wins
        assert slide_44 < gpu_time  # full socket: SLIDE wins


class TestSimulator:
    def _runs(self):
        work = [WorkloadCounts(dense_macs=1e6)] * 5
        accuracies = [0.1, 0.2, 0.3, 0.35, 0.36]
        sim = WallClockSimulator(GPUProfile(name="gpu"), cores=None)
        return sim.simulate("gpu", work, accuracies)

    def test_cumulative_times_increase(self):
        run = self._runs()
        assert np.all(np.diff(run.cumulative_seconds) > 0)
        assert run.iterations.tolist() == [1, 2, 3, 4, 5]

    def test_time_to_accuracy(self):
        run = self._runs()
        t = run.time_to_accuracy(0.3)
        assert t == pytest.approx(run.cumulative_seconds[2])
        assert run.time_to_accuracy(0.99) is None

    def test_convergence_time_and_final_accuracy(self):
        run = self._runs()
        assert run.final_accuracy() == pytest.approx(0.36)
        assert run.convergence_time() <= run.cumulative_seconds[-1]

    def test_mismatched_lengths_raise(self):
        sim = WallClockSimulator(GPUProfile(name="gpu"))
        with pytest.raises(ValueError):
            sim.simulate("x", [WorkloadCounts()], [0.1, 0.2])


@given(
    active=st.floats(min_value=1, max_value=5000),
    cores=st.integers(min_value=1, max_value=44),
)
@settings(max_examples=40, deadline=None)
def test_iteration_time_monotone_in_active_neurons(active, cores):
    """More active neurons can never make an iteration faster."""
    small = slide_iteration_work(64, 75, 128, active, 8, 50, output_dim=670_091)
    large = slide_iteration_work(64, 75, 128, active * 2, 8, 50, output_dim=670_091)
    t_small = SLIDE_CPU_PROFILE.iteration_seconds(small, cores=cores)
    t_large = SLIDE_CPU_PROFILE.iteration_seconds(large, cores=cores)
    assert t_large >= t_small
