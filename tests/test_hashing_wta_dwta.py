"""Tests for WTA and Densified WTA hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.dwta import DWTAHash
from repro.hashing.wta import WTAHash
from repro.types import SparseVector


class TestWTAHash:
    def test_shape_and_range(self, rng):
        family = WTAHash(input_dim=64, k=3, l=5, bin_size=8, seed=1)
        codes = family.hash_vector(rng.normal(size=64))
        assert codes.shape == (5, 3)
        assert codes.min() >= 0 and codes.max() < family.code_cardinality

    def test_deterministic(self, rng):
        family = WTAHash(input_dim=32, k=2, l=4, bin_size=4, seed=2)
        vector = rng.normal(size=32)
        np.testing.assert_array_equal(family.hash_vector(vector), family.hash_vector(vector))

    def test_rank_preserving_monotone_transform_invariance(self, rng):
        """WTA codes depend only on the ordering of coordinates."""
        family = WTAHash(input_dim=40, k=3, l=6, bin_size=5, seed=3)
        vector = rng.normal(size=40)
        transformed = np.exp(vector)  # strictly monotone
        np.testing.assert_array_equal(
            family.hash_vector(vector), family.hash_vector(transformed)
        )

    def test_bins_cover_requested_codes(self):
        family = WTAHash(input_dim=64, k=4, l=8, bin_size=8, seed=0)
        assert family.bins.shape == (4 * 8, 8)

    def test_bin_size_capped_by_input_dim(self):
        family = WTAHash(input_dim=4, k=2, l=2, bin_size=100, seed=0)
        assert family.bin_size == 4

    def test_invalid_bin_size_raises(self):
        with pytest.raises(ValueError):
            WTAHash(input_dim=16, k=2, l=2, bin_size=1)


class TestDWTAHash:
    def test_shape_and_determinism(self, rng):
        family = DWTAHash(input_dim=64, k=3, l=5, bin_size=8, seed=1)
        dense = np.zeros(64)
        idx = rng.choice(64, size=6, replace=False)
        dense[idx] = rng.random(size=6) + 0.1
        codes_a = family.hash_vector(dense)
        codes_b = family.hash_vector(dense)
        assert codes_a.shape == (5, 3)
        np.testing.assert_array_equal(codes_a, codes_b)

    def test_sparse_and_dense_inputs_agree(self, rng):
        family = DWTAHash(input_dim=48, k=2, l=6, bin_size=6, seed=4)
        dense = np.zeros(48)
        idx = rng.choice(48, size=5, replace=False)
        dense[idx] = rng.random(size=5) + 0.5
        sparse = SparseVector.from_dense(dense)
        np.testing.assert_array_equal(family.hash_vector(dense), family.hash_vector(sparse))

    def test_densification_fills_empty_bins(self, rng):
        """With very sparse input most bins are empty; densification must fill
        them with codes borrowed from non-empty bins (not the sentinel)."""
        family = DWTAHash(input_dim=256, k=4, l=8, bin_size=8, seed=5)
        dense = np.zeros(256)
        dense[3] = 1.0  # a single non-zero coordinate
        codes = family.hash_vector(dense).ravel()
        sentinel = family.bin_size
        assert np.all(codes != sentinel)

    def test_all_zero_input_uses_sentinel(self):
        family = DWTAHash(input_dim=32, k=2, l=3, bin_size=4, seed=6)
        codes = family.hash_vector(np.zeros(32)).ravel()
        assert np.all(codes == family.bin_size)

    def test_similar_sparse_vectors_collide_more(self, rng):
        """DWTA codes of overlapping sparse vectors agree more often than
        codes of disjoint ones (the rank-correlation LSH property)."""
        family = DWTAHash(input_dim=128, k=1, l=200, bin_size=8, seed=7)
        base = np.zeros(128)
        support = rng.choice(128, size=20, replace=False)
        base[support] = rng.random(size=20) + 0.5

        similar = base.copy()
        similar[support[:5]] += 0.05 * rng.random(size=5)

        disjoint = np.zeros(128)
        other_support = np.setdiff1d(np.arange(128), support)[:20]
        disjoint[other_support] = rng.random(size=20) + 0.5

        codes_base = family.hash_vector(base).ravel()
        codes_similar = family.hash_vector(similar).ravel()
        codes_disjoint = family.hash_vector(disjoint).ravel()
        sim_rate = np.mean(codes_base == codes_similar)
        dis_rate = np.mean(codes_base == codes_disjoint)
        assert sim_rate > dis_rate + 0.2

    def test_code_range_respects_cardinality(self, rng):
        family = DWTAHash(input_dim=64, k=3, l=4, bin_size=8, seed=8)
        dense = np.abs(rng.normal(size=64))
        codes = family.hash_vector(dense)
        assert codes.max() < family.code_cardinality


@given(nnz=st.integers(min_value=0, max_value=20), seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_dwta_codes_always_in_range(nnz, seed):
    rng = np.random.default_rng(seed)
    family = DWTAHash(input_dim=64, k=2, l=4, bin_size=8, seed=seed)
    dense = np.zeros(64)
    if nnz:
        idx = rng.choice(64, size=nnz, replace=False)
        dense[idx] = rng.random(size=nnz) + 0.01
    codes = family.hash_vector(dense)
    assert codes.shape == (4, 2)
    assert codes.min() >= 0
    assert codes.max() < family.code_cardinality
