"""Unit tests for the stdlib mini JSON-schema validator (repro.reports.schema).

The validator deliberately implements only the subset of JSON Schema the
registry's payload schemas use — and treats anything outside that subset as
an error, so a typo'd constraint can never silently validate nothing.
"""

from __future__ import annotations

import math

import pytest

from repro.reports.schema import SchemaError, check, validate


def test_type_match_and_mismatch():
    assert check(3, {"type": "integer"}) == []
    assert check(3.5, {"type": "number"}) == []
    assert check("x", {"type": "string"}) == []
    assert check(None, {"type": "null"}) == []
    problems = check("x", {"type": "integer"})
    assert problems and "expected integer" in problems[0]


def test_type_list_accepts_any_member():
    schema = {"type": ["number", "string"]}
    assert check(1.5, schema) == []
    assert check("NaN", schema) == []
    assert check([], schema) != []


def test_bool_is_not_a_number():
    # bool subclasses int in Python; schemas mean arithmetic numbers.
    assert check(True, {"type": "integer"}) != []
    assert check(True, {"type": "number"}) != []
    assert check(True, {"type": "boolean"}) == []


def test_non_finite_floats_are_not_numbers():
    for bad in (math.nan, math.inf, -math.inf):
        problems = check(bad, {"type": "number"})
        assert problems, f"{bad!r} should fail the number type"


def test_required_and_additional_properties():
    schema = {
        "type": "object",
        "required": ["a"],
        "additionalProperties": False,
        "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
    }
    assert check({"a": 1, "b": "ok"}, schema) == []
    assert any("missing required key 'a'" in p for p in check({"b": "x"}, schema))
    assert any("unexpected key 'c'" in p for p in check({"a": 1, "c": 2}, schema))


def test_additional_properties_schema_applies_to_unknown_keys():
    schema = {"type": "object", "additionalProperties": {"type": "number"}}
    assert check({"anything": 1.0}, schema) == []
    assert check({"anything": "nope"}, schema) != []


def test_pattern_properties():
    schema = {
        "type": "object",
        "additionalProperties": False,
        "patternProperties": {"^m=": {"type": "array", "items": {"type": "number"}}},
    }
    assert check({"m=2": [0.5, 0.25]}, schema) == []
    assert check({"m=2": ["x"]}, schema) != []
    # Keys matching no pattern fall through to additionalProperties=False.
    assert any("unexpected key" in p for p in check({"k=2": []}, schema))


def test_items_and_min_items():
    schema = {"type": "array", "minItems": 2, "items": {"type": "integer"}}
    assert check([1, 2, 3], schema) == []
    assert any("minItems" in p for p in check([1], schema))
    problems = check([1, "x"], schema)
    assert problems and "[1]" in problems[0]


def test_enum_const_and_bounds():
    assert check("smoke", {"enum": ["smoke", "full"]}) == []
    assert any("enum" in p for p in check("warm", {"enum": ["smoke", "full"]}))
    assert check(1, {"const": 1}) == []
    assert check(2, {"const": 1}) != []
    assert check(0.5, {"type": "number", "minimum": 0, "maximum": 1}) == []
    assert any("minimum" in p for p in check(-0.1, {"type": "number", "minimum": 0}))
    assert any("maximum" in p for p in check(1.5, {"type": "number", "maximum": 1}))
    assert any(
        "exclusiveMinimum" in p for p in check(0, {"type": "number", "exclusiveMinimum": 0})
    )


def test_unknown_schema_keyword_is_an_error_not_a_noop():
    problems = check({"a": 1}, {"type": "object", "propertys": {}})
    assert problems and "unsupported keyword" in problems[0]


def test_unknown_type_name_is_an_error():
    problems = check(1, {"type": "float"})
    assert problems and "unknown type" in problems[0]


def test_nested_paths_name_the_failing_location():
    schema = {
        "type": "object",
        "properties": {
            "rows": {"type": "array", "items": {"type": "object", "required": ["x"]}}
        },
    }
    problems = check({"rows": [{"x": 1}, {}]}, schema)
    assert problems == ["$.rows[1]: missing required key 'x'"]


def test_validate_raises_schema_error_listing_every_problem():
    schema = {
        "type": "object",
        "required": ["a", "b"],
        "additionalProperties": False,
        "properties": {"a": {"type": "integer"}, "b": {"type": "integer"}},
    }
    with pytest.raises(SchemaError) as excinfo:
        validate({"c": 1}, schema)
    assert len(excinfo.value.problems) == 3  # missing a, missing b, unexpected c
    validate({"a": 1, "b": 2}, schema)  # no-op when valid
