"""Tests for the sparse data containers in :mod:`repro.types`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import SparseBatch, SparseExample, SparseVector, as_index_array


class TestSparseVector:
    def test_basic_construction(self):
        vec = SparseVector(indices=[1, 3], values=[2.0, -1.0], dimension=5)
        assert vec.nnz == 2
        assert vec.dimension == 5

    def test_to_dense_roundtrip(self):
        vec = SparseVector(indices=[0, 4], values=[1.5, 2.5], dimension=6)
        dense = vec.to_dense()
        assert dense.shape == (6,)
        assert dense[0] == 1.5 and dense[4] == 2.5
        assert dense[1] == dense[2] == dense[3] == dense[5] == 0.0

    def test_from_dense_drops_zeros(self):
        dense = np.array([0.0, 1.0, 0.0, -2.0])
        vec = SparseVector.from_dense(dense)
        assert vec.nnz == 2
        np.testing.assert_array_equal(vec.indices, [1, 3])

    def test_dot_matches_dense_dot(self):
        vec = SparseVector(indices=[1, 2], values=[3.0, 4.0], dimension=4)
        other = np.array([1.0, 2.0, 3.0, 4.0])
        assert vec.dot(other) == pytest.approx(np.dot(vec.to_dense(), other))

    def test_dot_dimension_mismatch_raises(self):
        vec = SparseVector(indices=[0], values=[1.0], dimension=3)
        with pytest.raises(ValueError, match="dimension mismatch"):
            vec.dot(np.zeros(5))

    def test_l2_norm(self):
        vec = SparseVector(indices=[0, 1], values=[3.0, 4.0], dimension=2)
        assert vec.l2_norm() == pytest.approx(5.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="same length"):
            SparseVector(indices=[0, 1], values=[1.0], dimension=4)

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseVector(indices=[5], values=[1.0], dimension=4)

    def test_negative_index_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseVector(indices=[-1], values=[1.0], dimension=4)

    def test_non_positive_dimension_raises(self):
        with pytest.raises(ValueError, match="dimension must be positive"):
            SparseVector(indices=[], values=[], dimension=0)

    def test_multidimensional_input_raises(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SparseVector(indices=[[0, 1]], values=[[1.0, 2.0]], dimension=4)

    @given(
        dimension=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_from_dense_to_dense_roundtrip_property(self, dimension, data):
        dense = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=-10, max_value=10, allow_nan=False),
                    min_size=dimension,
                    max_size=dimension,
                )
            )
        )
        vec = SparseVector.from_dense(dense)
        np.testing.assert_allclose(vec.to_dense(), dense)


class TestSparseExample:
    def test_labels_are_deduplicated_and_sorted(self):
        features = SparseVector(indices=[0], values=[1.0], dimension=4)
        example = SparseExample(features=features, labels=[3, 1, 3, 2])
        np.testing.assert_array_equal(example.labels, [1, 2, 3])
        assert example.num_labels == 3

    def test_empty_labels_allowed(self):
        features = SparseVector(indices=[0], values=[1.0], dimension=4)
        example = SparseExample(features=features, labels=[])
        assert example.num_labels == 0


class TestSparseBatch:
    def _example(self, dim=8, labels=(1,)):
        features = SparseVector(indices=[0, 2], values=[1.0, 2.0], dimension=dim)
        return SparseExample(features=features, labels=np.array(labels))

    def test_dense_feature_matrix(self):
        batch = SparseBatch(examples=[self._example(), self._example()], label_dim=4)
        dense = batch.to_dense_features()
        assert dense.shape == (2, 8)
        assert dense[0, 0] == 1.0 and dense[0, 2] == 2.0

    def test_dense_label_matrix(self):
        batch = SparseBatch(examples=[self._example(labels=(1, 3))], label_dim=4)
        labels = batch.to_dense_labels()
        assert labels.shape == (1, 4)
        np.testing.assert_array_equal(labels[0], [0, 1, 0, 1])

    def test_mixed_feature_dims_raise(self):
        a = self._example(dim=8)
        b = self._example(dim=16)
        with pytest.raises(ValueError, match="share feature_dim"):
            SparseBatch(examples=[a, b], label_dim=4)

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError, match="label index out of range"):
            SparseBatch(examples=[self._example(labels=(9,))], label_dim=4)

    def test_average_feature_nnz(self):
        batch = SparseBatch(examples=[self._example(), self._example()], label_dim=4)
        assert batch.average_feature_nnz() == pytest.approx(2.0)

    def test_len_iter_getitem(self):
        examples = [self._example(), self._example()]
        batch = SparseBatch(examples=examples, label_dim=4)
        assert len(batch) == 2
        assert list(batch) == examples
        assert batch[0] is examples[0]

    def test_empty_batch_requires_explicit_feature_dim(self):
        with pytest.raises(ValueError, match="feature_dim must be positive"):
            SparseBatch(examples=[], label_dim=4)

    def test_from_examples_factory(self):
        batch = SparseBatch.from_examples([self._example()], feature_dim=8, label_dim=4)
        assert len(batch) == 1
        assert batch.feature_dim == 8


def test_as_index_array_sorts_and_dedups():
    result = as_index_array([5, 1, 5, 3])
    np.testing.assert_array_equal(result, [1, 3, 5])
    assert result.dtype == np.int64
