"""Tests for SimHash: determinism, LSH property, incremental updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.collision import simhash_collision_probability
from repro.hashing.simhash import SimHash
from repro.types import SparseVector


@pytest.fixture
def simhash() -> SimHash:
    return SimHash(input_dim=64, k=4, l=8, seed=3)


class TestSimHashBasics:
    def test_output_shape_and_values(self, simhash, rng):
        codes = simhash.hash_vector(rng.normal(size=64))
        assert codes.shape == (8, 4)
        assert set(np.unique(codes)).issubset({0, 1})

    def test_deterministic_for_same_input(self, simhash, rng):
        vector = rng.normal(size=64)
        np.testing.assert_array_equal(
            simhash.hash_vector(vector), simhash.hash_vector(vector)
        )

    def test_same_seed_same_family(self, rng):
        vector = rng.normal(size=32)
        a = SimHash(32, 3, 5, seed=9).hash_vector(vector)
        b = SimHash(32, 3, 5, seed=9).hash_vector(vector)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_usually_differs(self, rng):
        vector = rng.normal(size=32)
        a = SimHash(32, 6, 10, seed=1).hash_vector(vector)
        b = SimHash(32, 6, 10, seed=2).hash_vector(vector)
        assert not np.array_equal(a, b)

    def test_code_cardinality_is_two(self, simhash):
        assert simhash.code_cardinality == 2

    def test_scale_invariance(self, simhash, rng):
        vector = rng.normal(size=64)
        np.testing.assert_array_equal(
            simhash.hash_vector(vector), simhash.hash_vector(3.7 * vector)
        )

    def test_wrong_dimension_raises(self, simhash):
        with pytest.raises(ValueError, match="does not match"):
            simhash.hash_vector(np.zeros(10))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SimHash(0, 2, 2)
        with pytest.raises(ValueError):
            SimHash(8, 0, 2)
        with pytest.raises(ValueError):
            SimHash(8, 2, 2, sparsity=0.0)

    def test_projection_sparsity(self):
        family = SimHash(input_dim=90, k=2, l=2, sparsity=1.0 / 3.0)
        assert family.projection_nnz == 30


class TestSimHashSparseDenseEquivalence:
    def test_sparse_and_dense_inputs_agree(self, simhash, rng):
        dense = np.zeros(64)
        indices = rng.choice(64, size=7, replace=False)
        dense[indices] = rng.normal(size=7)
        sparse = SparseVector.from_dense(dense)
        np.testing.assert_array_equal(
            simhash.hash_vector(dense), simhash.hash_vector(sparse)
        )

    def test_hash_matrix_matches_per_row(self, simhash, rng):
        matrix = rng.normal(size=(5, 64))
        all_codes = simhash.hash_matrix(matrix)
        for row in range(5):
            np.testing.assert_array_equal(all_codes[row], simhash.hash_vector(matrix[row]))

    def test_hash_matrix_rejects_bad_shape(self, simhash, rng):
        with pytest.raises(ValueError):
            simhash.hash_matrix(rng.normal(size=(3, 10)))


class TestSimHashLSHProperty:
    def test_collision_rate_increases_with_similarity(self, rng):
        """The empirical bit-collision rate should track 1 - theta/pi."""
        family = SimHash(input_dim=48, k=1, l=600, sparsity=1.0, seed=5)
        base = rng.normal(size=48)
        base /= np.linalg.norm(base)

        def empirical_collision(other: np.ndarray) -> float:
            a = family.hash_vector(base).ravel()
            b = family.hash_vector(other).ravel()
            return float(np.mean(a == b))

        # Nearly identical vector vs nearly orthogonal vector.
        similar = base + 0.05 * rng.normal(size=48)
        orthogonal = rng.normal(size=48)
        orthogonal -= np.dot(orthogonal, base) * base

        assert empirical_collision(similar) > empirical_collision(orthogonal) + 0.2

    def test_empirical_matches_theoretical_probability(self, rng):
        family = SimHash(input_dim=32, k=1, l=2000, sparsity=1.0, seed=8)
        a = rng.normal(size=32)
        b = a + 0.8 * rng.normal(size=32)
        cosine = float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)))
        expected = simhash_collision_probability(cosine)
        observed = float(
            np.mean(family.hash_vector(a).ravel() == family.hash_vector(b).ravel())
        )
        assert observed == pytest.approx(expected, abs=0.06)


class TestSimHashIncrementalUpdate:
    def test_incremental_projection_update_matches_full(self, simhash, rng):
        vector = rng.normal(size=64)
        projections = simhash.project(vector)
        changed = rng.choice(64, size=5, replace=False)
        deltas = rng.normal(size=5)
        updated_vector = vector.copy()
        updated_vector[changed] += deltas
        incremental = simhash.update_projections(projections, changed, deltas)
        np.testing.assert_allclose(incremental, simhash.project(updated_vector), atol=1e-10)
        np.testing.assert_array_equal(
            simhash.codes_from_projections(incremental),
            simhash.hash_vector(updated_vector),
        )

    def test_empty_update_is_identity(self, simhash, rng):
        vector = rng.normal(size=64)
        projections = simhash.project(vector)
        result = simhash.update_projections(
            projections, np.array([], dtype=np.int64), np.array([])
        )
        np.testing.assert_allclose(result, projections)

    def test_misaligned_update_raises(self, simhash, rng):
        projections = simhash.project(rng.normal(size=64))
        with pytest.raises(ValueError, match="align"):
            simhash.update_projections(projections, np.array([1, 2]), np.array([1.0]))

    def test_codes_from_projections_validates_length(self, simhash):
        with pytest.raises(ValueError):
            simhash.codes_from_projections(np.zeros(3))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_simhash_codes_are_binary_for_any_seed(seed):
    rng = np.random.default_rng(seed)
    family = SimHash(input_dim=16, k=3, l=4, seed=seed)
    codes = family.hash_vector(rng.normal(size=16))
    assert codes.shape == (4, 3)
    assert set(np.unique(codes)).issubset({0, 1})
