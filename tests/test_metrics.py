"""Tests for precision@k and convergence-time metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.accuracy import precision_at_1, precision_at_k
from repro.metrics.convergence import accuracy_at_time, convergence_time, time_to_accuracy


class TestPrecision:
    def test_perfect_predictions(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        labels = [np.array([1]), np.array([0])]
        assert precision_at_1(scores, labels) == 1.0

    def test_all_wrong(self):
        scores = np.array([[0.9, 0.1], [0.9, 0.1]])
        labels = [np.array([1]), np.array([1])]
        assert precision_at_1(scores, labels) == 0.0

    def test_precision_at_k_partial_credit(self):
        scores = np.array([[0.5, 0.4, 0.3, 0.0]])
        labels = [np.array([0, 3])]
        # top-2 = {0, 1}; only 0 is correct -> 0.5
        assert precision_at_k(scores, labels, k=2) == pytest.approx(0.5)

    def test_examples_without_labels_are_skipped(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        labels = [np.array([], dtype=np.int64), np.array([1])]
        assert precision_at_1(scores, labels) == 1.0

    def test_all_empty_labels_returns_zero(self):
        scores = np.array([[0.9, 0.1]])
        assert precision_at_1(scores, [np.array([], dtype=np.int64)]) == 0.0

    def test_skip_unlabeled_flag_pins_both_behaviours(self):
        """Regression: unlabeled examples used to be silently dropped with no
        strict alternative, unlike evaluate_precision_at_k.  The default
        still skips them; ``skip_unlabeled=False`` raises instead."""
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        labels = [np.array([], dtype=np.int64), np.array([1])]
        assert precision_at_k(scores, labels, k=1, skip_unlabeled=True) == 1.0
        with pytest.raises(ValueError, match="1 of 2 examples have no labels"):
            precision_at_k(scores, labels, k=1, skip_unlabeled=False)
        # Fully labelled input is unaffected by the strict flag.
        labelled = [np.array([0]), np.array([1])]
        assert precision_at_k(scores, labelled, k=1, skip_unlabeled=False) == 1.0
        assert precision_at_k(scores, labelled, k=1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(np.zeros(3), [np.array([0])], k=1)
        with pytest.raises(ValueError):
            precision_at_k(np.zeros((2, 3)), [np.array([0])], k=1)
        with pytest.raises(ValueError):
            precision_at_k(np.zeros((1, 3)), [np.array([0])], k=0)


class TestConvergence:
    def test_time_to_accuracy(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        accs = np.array([0.1, 0.2, 0.4, 0.5])
        assert time_to_accuracy(times, accs, 0.3) == 3.0
        assert time_to_accuracy(times, accs, 0.9) is None

    def test_convergence_time_fraction_of_best(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        accs = np.array([0.1, 0.45, 0.49, 0.5])
        assert convergence_time(times, accs, fraction_of_best=0.9) == 2.0
        assert convergence_time(times, accs, fraction_of_best=1.0) == 4.0

    def test_accuracy_at_time(self):
        times = np.array([1.0, 2.0, 3.0])
        accs = np.array([0.1, 0.3, 0.2])
        assert accuracy_at_time(times, accs, 2.5) == pytest.approx(0.3)
        assert accuracy_at_time(times, accs, 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_accuracy(np.array([2.0, 1.0]), np.array([0.1, 0.2]), 0.1)
        with pytest.raises(ValueError):
            convergence_time(np.array([1.0]), np.array([0.1]), fraction_of_best=0.0)
        with pytest.raises(ValueError):
            time_to_accuracy(np.array([1.0]), np.array([0.1, 0.2]), 0.1)

    def test_empty_series(self):
        assert convergence_time(np.array([]), np.array([])) == 0.0
        assert accuracy_at_time(np.array([]), np.array([]), 1.0) == 0.0
