"""Tests for the streaming data pipeline (repro.data).

Covers the ingest → shard cache → ``ShardedDataset`` round trip against the
eager loader, edge-case lines, checksum verification, prefetcher semantics
(determinism, exception relay, early close) and the bit-for-bit training
parity between the eager and streamed paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.data import (
    ARRAY_NAMES,
    BatchPrefetcher,
    ShardManifest,
    ShardedDataset,
    gather_csr_rows,
    ingest_examples,
    ingest_xc_file,
)
from repro.datasets.loaders import load_xc_file, write_xc_file
from repro.datasets.synthetic import SyntheticXCConfig, generate_synthetic_xc


def _assert_examples_equal(a, b):
    np.testing.assert_array_equal(a.features.indices, b.features.indices)
    np.testing.assert_array_equal(a.features.values, b.features.values)
    np.testing.assert_array_equal(a.labels, b.labels)


@pytest.fixture(scope="module")
def pipeline_setup(tmp_path_factory):
    """A synthetic dataset written as an XC file and ingested into shards."""
    root = tmp_path_factory.mktemp("pipeline")
    config = SyntheticXCConfig(
        feature_dim=256,
        label_dim=48,
        num_train=210,
        num_test=32,
        avg_features_per_example=16,
        seed=13,
    )
    dataset = generate_synthetic_xc(config)
    xc_path = write_xc_file(
        root / "train.txt", dataset.train, config.feature_dim, config.label_dim
    )
    cache_dir = root / "shards"
    manifest = ingest_xc_file(xc_path, cache_dir, shard_size=64)
    eager, feature_dim, label_dim = load_xc_file(xc_path)
    return {
        "config": config,
        "xc_path": xc_path,
        "cache_dir": cache_dir,
        "manifest": manifest,
        "eager": eager,
        "feature_dim": feature_dim,
        "label_dim": label_dim,
    }


class TestIngest:
    def test_manifest_shape(self, pipeline_setup):
        manifest = pipeline_setup["manifest"]
        assert manifest.num_examples == 210
        assert manifest.num_shards == 4  # 64 + 64 + 64 + 18
        assert manifest.shards[-1].num_examples == 18
        assert manifest.feature_dim == 256
        assert manifest.label_dim == 48
        assert manifest.total_feature_nnz == sum(
            ex.features.nnz for ex in pipeline_setup["eager"]
        )

    def test_manifest_roundtrips_through_json(self, pipeline_setup):
        manifest = pipeline_setup["manifest"]
        assert ShardManifest.load(pipeline_setup["cache_dir"]) == manifest

    def test_shard_files_exist_and_checksummed(self, pipeline_setup):
        manifest = pipeline_setup["manifest"]
        for shard in manifest.shards:
            assert set(shard.checksums) == set(ARRAY_NAMES)
            for array in ARRAY_NAMES:
                assert (pipeline_setup["cache_dir"] / shard.filename(array)).exists()

    def test_header_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("5 4 3\n0 0:1\n")
        with pytest.raises(ValueError, match="promised"):
            ingest_xc_file(path, tmp_path / "cache")

    def test_label_out_of_range_raises(self, tmp_path):
        path = tmp_path / "bad_label.txt"
        path.write_text("1 4 2\n7 0:1\n")
        with pytest.raises(ValueError, match="label index"):
            ingest_xc_file(path, tmp_path / "cache")

    def test_max_examples_truncates(self, pipeline_setup, tmp_path):
        manifest = ingest_xc_file(
            pipeline_setup["xc_path"], tmp_path / "cache", shard_size=16, max_examples=40
        )
        assert manifest.num_examples == 40

    def test_edge_case_lines(self, tmp_path):
        """Blank lines, empty labels, duplicate features and labels-only
        lines all survive the ingest exactly as the eager parser sees them."""
        path = tmp_path / "edge.txt"
        path.write_text(
            "4 8 5\n"
            "0,2 1:0.5 3:1.0\n"
            "\n"
            "3:2.0 3:0.5 0:1.0\n"  # no labels + duplicate feature
            "4\n"  # labels only, no features
            "1 7:0.25\n"
            "\n"
        )
        eager, feature_dim, _ = load_xc_file(path)
        manifest = ingest_xc_file(path, tmp_path / "cache", shard_size=2)
        dataset = ShardedDataset(tmp_path / "cache")
        assert manifest.num_examples == len(eager) == 4
        for a, b in zip(eager, dataset):
            _assert_examples_equal(a, b)
        # The duplicate 3:2.0 3:0.5 tokens coalesced into one entry.
        np.testing.assert_array_equal(dataset[1].features.indices, [0, 3])
        np.testing.assert_allclose(dataset[1].features.values, [1.0, 2.5])
        assert dataset[2].features.nnz == 0
        np.testing.assert_array_equal(dataset[2].labels, [4])


class TestShardedDataset:
    def test_round_trip_matches_eager_loader(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"], verify_checksums=True)
        eager = pipeline_setup["eager"]
        assert len(dataset) == len(eager)
        for i in range(len(eager)):
            _assert_examples_equal(eager[i], dataset[i])

    def test_negative_and_slice_access(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"])
        eager = pipeline_setup["eager"]
        _assert_examples_equal(eager[-1], dataset[-1])
        window = dataset[10:13]
        assert len(window) == 3
        _assert_examples_equal(eager[11], window[1])
        with pytest.raises(IndexError):
            dataset[len(dataset)]

    def test_gather_preserves_order(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"])
        eager = pipeline_setup["eager"]
        order = [130, 2, 64, 7]
        for want, got in zip(order, dataset.gather(order)):
            _assert_examples_equal(eager[want], got)

    def test_streaming_epoch_covers_every_example_once(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"], seed=5)
        seen = []
        for batch in dataset.iter_batches(batch_size=32, epoch=0):
            seen.extend(float(ex.features.values.sum()) for ex in batch)
        eager_sums = sorted(
            float(ex.features.values.sum()) for ex in pipeline_setup["eager"]
        )
        assert sorted(seen) == eager_sums

    def test_streaming_is_deterministic_per_epoch_and_differs_across(
        self, pipeline_setup
    ):
        dataset = ShardedDataset(pipeline_setup["cache_dir"], seed=5)

        def signature(epoch):
            return [
                tuple(int(label) for ex in batch for label in ex.labels)
                for batch in dataset.iter_batches(batch_size=32, epoch=epoch)
            ]

        assert signature(0) == signature(0)
        assert signature(0) != signature(1)

    def test_streaming_releases_shards(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"])
        max_open = 0
        for _batch in dataset.iter_batches(batch_size=50, epoch=0):
            max_open = max(max_open, dataset.open_shard_count())
        assert max_open <= 2
        assert dataset.open_shard_count() == 0

    def test_batches_carry_a_features_csr_cache(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"])
        batch = next(dataset.iter_batches(batch_size=16, epoch=0))
        assert batch.features_csr is not None
        indptr, indices, values = batch.features_csr
        assert indptr[0] == 0 and int(indptr[-1]) == indices.shape[0] == values.shape[0]
        dense = batch.to_dense_features()
        for row, example in enumerate(batch):
            np.testing.assert_array_equal(
                dense[row, example.features.indices], example.features.values
            )

    def test_checksum_corruption_is_detected(self, pipeline_setup, tmp_path):
        cache = tmp_path / "cache"
        ingest_xc_file(pipeline_setup["xc_path"], cache, shard_size=64)
        victim = next(cache.glob("shard-00001.feat_values.npy"))
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="checksum mismatch"):
            ShardedDataset(cache, verify_checksums=True)
        # Lazy loading without verification still works for intact shards.
        dataset = ShardedDataset(cache)
        _assert_examples_equal(pipeline_setup["eager"][0], dataset[0])

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            ShardedDataset(tmp_path)

    def test_future_format_version_rejected(self, pipeline_setup, tmp_path):
        import json

        cache = tmp_path / "cache"
        ingest_xc_file(pipeline_setup["xc_path"], cache, shard_size=128)
        manifest_path = cache / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["format_version"] = 999
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format version"):
            ShardedDataset(cache)

    @given(
        num_examples=st.integers(1, 40),
        shard_size=st.integers(1, 16),
        batch_size=st.integers(1, 17),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_round_trip_and_epoch_cover(
        self, tmp_path_factory, num_examples, shard_size, batch_size, seed
    ):
        """Any (dataset size, shard size, batch size) combination round-trips
        exactly and streams every example exactly once per epoch."""
        root = tmp_path_factory.mktemp("prop")
        config = SyntheticXCConfig(
            feature_dim=64,
            label_dim=12,
            num_train=num_examples,
            num_test=1,
            avg_features_per_example=6,
            prototype_nnz=4,
            seed=seed,
        )
        examples = generate_synthetic_xc(config).train
        ingest_examples(examples, 64, 12, root, shard_size=shard_size)
        dataset = ShardedDataset(root, seed=seed)
        for a, b in zip(examples, dataset):
            _assert_examples_equal(a, b)
        streamed = sum(
            len(batch) for batch in dataset.iter_batches(batch_size, epoch=0)
        )
        assert streamed == num_examples

    def test_gather_csr_rows_matches_python_gather(self, rng):
        counts = rng.integers(0, 5, size=12)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        data = rng.normal(size=int(indptr[-1]))
        order = rng.permutation(12)
        out_indptr, (gathered,) = gather_csr_rows(indptr, order, data)
        expected = np.concatenate(
            [data[indptr[r] : indptr[r + 1]] for r in order]
        ) if int(indptr[-1]) else np.zeros(0)
        np.testing.assert_array_equal(np.diff(out_indptr), counts[order])
        np.testing.assert_array_equal(gathered, expected)


class TestBatchPrefetcher:
    def test_preserves_order_and_counts(self):
        items = list(range(57))
        with BatchPrefetcher(iter(items), depth=3) as prefetcher:
            assert list(prefetcher) == items
            assert prefetcher.produced == prefetcher.consumed == len(items)

    def test_deterministic_over_sharded_stream(self, pipeline_setup):
        dataset = ShardedDataset(pipeline_setup["cache_dir"], seed=2)

        def signature(batches):
            return [
                tuple(int(label) for ex in batch for label in ex.labels)
                for batch in batches
            ]

        plain = signature(dataset.iter_batches(batch_size=16, epoch=3))
        with BatchPrefetcher(dataset.iter_batches(batch_size=16, epoch=3)) as queue:
            prefetched = signature(queue)
        assert plain == prefetched

    def test_relays_producer_exceptions(self):
        def broken():
            yield 1
            raise RuntimeError("boom in the producer")

        prefetcher = BatchPrefetcher(broken(), depth=2)
        assert next(prefetcher) == 1
        with pytest.raises(RuntimeError, match="boom in the producer"):
            next(prefetcher)
        # The stream is finished after the error.
        with pytest.raises(StopIteration):
            next(prefetcher)

    def test_close_stops_a_blocked_producer(self):
        def endless():
            i = 0
            while True:
                yield i
                i += 1

        prefetcher = BatchPrefetcher(endless(), depth=2)
        assert next(prefetcher) == 0
        prefetcher.close()
        assert not prefetcher._thread.is_alive()
        with pytest.raises(StopIteration):
            next(prefetcher)

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError):
            BatchPrefetcher(iter([]), depth=0)

    def test_close_unblocks_a_waiting_consumer(self):
        """Regression: close() racing a consumer parked on an empty queue.

        The producer below never yields, so the consumer blocks inside
        ``__next__``.  ``close()`` stops the producer without a sentinel and
        drains the queue — with the old un-timed ``queue.get()`` the
        consumer slept forever; the stop-aware timed get must surface
        ``StopIteration`` promptly instead.
        """
        import threading
        import time

        release = threading.Event()

        def stalled():
            release.wait(5.0)
            yield 0  # pragma: no cover - close() wins the race

        prefetcher = BatchPrefetcher(stalled(), depth=2)
        outcome: list[object] = []

        def consume():
            try:
                outcome.append(next(prefetcher))
            except StopIteration:
                outcome.append("stopped")

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.05)  # let the consumer reach the blocking get
        prefetcher.close()
        consumer.join(timeout=2.0)
        release.set()
        assert not consumer.is_alive(), "consumer stayed blocked after close()"
        assert outcome == ["stopped"]

    def test_abandoned_iterations_leak_no_threads_or_shards(self, pipeline_setup):
        """Regression: a consumer abandoning the stream mid-epoch must not
        leave prefetcher threads alive or shard mmaps resident.

        Before the fix, ``BatchPrefetcher.close()`` stopped the producer
        thread but never closed the *source* generator, so the resident
        shard's mmap lingered until garbage collection — 100 abandoned
        epochs accumulated 100 open shards under refcounting pessimism.
        """
        import threading

        dataset = ShardedDataset(pipeline_setup["cache_dir"], seed=4)
        baseline_threads = threading.active_count()
        for round_index in range(100):
            batches = dataset.iter_batches(
                batch_size=16, epoch=round_index, release=True
            )
            if round_index % 2 == 0:
                # Raw generator, abandoned after one batch.
                next(batches)
                batches.close()
            else:
                # Through the prefetcher, abandoned after one batch.
                prefetcher = BatchPrefetcher(batches, depth=2)
                next(prefetcher)
                prefetcher.close()
                assert not prefetcher._thread.is_alive()
            assert dataset.open_shard_count() == 0, (
                f"round {round_index}: abandoned iteration left a shard open"
            )
        assert threading.active_count() == baseline_threads


class TestTrainingParity:
    def _network(self, feature_dim, label_dim):
        layers = (
            LayerConfig(size=16, activation="relu", lsh=None),
            LayerConfig(
                size=label_dim,
                activation="softmax",
                lsh=LSHConfig(hash_family="simhash", k=3, l=8, bucket_size=16),
                sampling=SamplingConfig(target_active=10, min_active=4),
            ),
        )
        return SlideNetwork(
            SlideNetworkConfig(input_dim=feature_dim, layers=layers, seed=21)
        )

    def _losses(self, source, feature_dim, label_dim, hogwild, prefetch_depth):
        training = TrainingConfig(
            batch_size=16,
            epochs=2,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=17,
        )
        trainer = SlideTrainer(
            self._network(feature_dim, label_dim),
            training,
            hogwild=hogwild,
            prefetch_depth=prefetch_depth,
        )
        return trainer.train(source).losses()

    @pytest.mark.parametrize("hogwild", [False, True])
    def test_shard_cache_training_matches_eager_bit_for_bit(
        self, pipeline_setup, hogwild
    ):
        feature_dim = pipeline_setup["feature_dim"]
        label_dim = pipeline_setup["label_dim"]
        eager_losses = self._losses(
            pipeline_setup["eager"], feature_dim, label_dim, hogwild, 0
        )
        sharded_losses = self._losses(
            ShardedDataset(pipeline_setup["cache_dir"]),
            feature_dim,
            label_dim,
            hogwild,
            0,
        )
        prefetched_losses = self._losses(
            ShardedDataset(pipeline_setup["cache_dir"]),
            feature_dim,
            label_dim,
            hogwild,
            3,
        )
        np.testing.assert_array_equal(eager_losses, sharded_losses)
        np.testing.assert_array_equal(eager_losses, prefetched_losses)

    def test_train_batches_consumes_a_prefetched_stream(self, pipeline_setup):
        feature_dim = pipeline_setup["feature_dim"]
        label_dim = pipeline_setup["label_dim"]
        dataset = ShardedDataset(pipeline_setup["cache_dir"], seed=3)
        training = TrainingConfig(
            batch_size=32,
            epochs=1,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=17,
        )
        trainer = SlideTrainer(
            self._network(feature_dim, label_dim), training, hogwild=False
        )
        with BatchPrefetcher(dataset.iter_batches(32, epoch=0)) as batches:
            history = trainer.train_batches(batches)
        assert sum(r.batch_size for r in history.records) == len(dataset)
        assert all(np.isfinite(r.loss) for r in history.records)
