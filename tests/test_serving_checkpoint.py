"""Checkpoint round-trips: weights, optimiser state, LSH index contents."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.serving.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
)
from repro.serving.engine import SparseInferenceEngine
from repro.types import SparseBatch


@pytest.fixture
def trained(tiny_dataset, tiny_network_config, tiny_training_config):
    """A briefly trained network plus its optimiser."""
    network = SlideNetwork(tiny_network_config)
    trainer = SlideTrainer(network, tiny_training_config)
    trainer.train(tiny_dataset.train[:96], tiny_dataset.test[:32])
    return network, trainer.optimizer


def test_round_trip_identical_dense_predictions(tmp_path, trained, tiny_dataset):
    network, optimizer = trained
    save_checkpoint(tmp_path / "ckpt", network, optimizer)
    loaded = load_checkpoint(tmp_path / "ckpt")

    examples = tiny_dataset.test[:32]
    np.testing.assert_allclose(
        network.predict_dense_batch(examples),
        loaded.network.predict_dense_batch(examples),
    )
    assert loaded.network.iteration == network.iteration
    assert loaded.config == network.config


def test_round_trip_identical_sparse_engine_predictions(
    tmp_path, trained, tiny_dataset
):
    network, _ = trained
    save_checkpoint(tmp_path / "ckpt", network)
    loaded = load_checkpoint(tmp_path / "ckpt", load_optimizer=False)

    live = SparseInferenceEngine(network, active_budget=16)
    reloaded = SparseInferenceEngine(loaded.network, active_budget=16)
    examples = tiny_dataset.test[:32]
    for a, b in zip(
        live.predict_batch(examples, k=3), reloaded.predict_batch(examples, k=3)
    ):
        np.testing.assert_array_equal(a.class_ids, b.class_ids)
        np.testing.assert_allclose(a.scores, b.scores)


def test_round_trip_lsh_index_contents(tmp_path, trained):
    network, _ = trained
    save_checkpoint(tmp_path / "ckpt", network)
    loaded = load_checkpoint(tmp_path / "ckpt", load_optimizer=False)

    live_index = network.output_layer.lsh_index
    loaded_index = loaded.network.output_layer.lsh_index
    assert loaded_index.num_items == live_index.num_items
    for live_table, loaded_table in zip(live_index.tables, loaded_index.tables):
        assert loaded_table.num_items == live_table.num_items
        assert loaded_table.num_buckets == live_table.num_buckets


def test_round_trip_optimizer_state_and_training_continues(
    tmp_path, trained, tiny_dataset
):
    network, optimizer = trained
    save_checkpoint(tmp_path / "ckpt", network, optimizer)
    loaded = load_checkpoint(tmp_path / "ckpt")

    assert loaded.optimizer is not None
    assert loaded.optimizer.step_count == optimizer.step_count
    for layer in network.layers:
        for suffix in ("weights", "biases"):
            name = f"{layer.name}.{suffix}"
            live_state = optimizer.state_of(name)
            loaded_state = loaded.optimizer.state_of(name)
            assert set(loaded_state) == set(live_state)
            for slot in live_state:
                np.testing.assert_allclose(loaded_state[slot], live_state[slot])

    # The reloaded (network, optimiser) pair must accept further training.
    batch = SparseBatch.from_examples(
        tiny_dataset.train[:8],
        feature_dim=tiny_dataset.feature_dim,
        label_dim=tiny_dataset.label_dim,
    )
    metrics = loaded.network.train_batch(batch, loaded.optimizer)
    assert np.isfinite(metrics["loss"])


def test_metadata_round_trip(tmp_path, trained):
    network, _ = trained
    save_checkpoint(tmp_path / "ckpt", network, metadata={"epoch": 3, "tag": "best"})
    loaded = load_checkpoint(tmp_path / "ckpt", load_optimizer=False)
    assert loaded.metadata == {"epoch": 3, "tag": "best"}


def test_corrupted_arrays_rejected(tmp_path, trained):
    network, _ = trained
    path = save_checkpoint(tmp_path / "ckpt", network)
    arrays = path / "arrays.npz"
    payload = bytearray(arrays.read_bytes())
    payload[len(payload) // 2] ^= 0xFF
    arrays.write_bytes(bytes(payload))
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint(path)


def test_truncated_arrays_rejected(tmp_path, trained):
    network, _ = trained
    path = save_checkpoint(tmp_path / "ckpt", network)
    arrays = path / "arrays.npz"
    arrays.write_bytes(arrays.read_bytes()[: 100])
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint(path)


def test_missing_payload_rejected(tmp_path, trained):
    network, _ = trained
    path = save_checkpoint(tmp_path / "ckpt", network)
    (path / "arrays.npz").unlink()
    with pytest.raises(CheckpointError, match="missing array payload"):
        load_checkpoint(path)


def test_missing_manifest_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="manifest"):
        load_checkpoint(tmp_path)


def test_unknown_format_version_rejected(tmp_path, trained):
    network, _ = trained
    path = save_checkpoint(tmp_path / "ckpt", network)
    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
    manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="format version"):
        load_checkpoint(path)


def test_lsh_snapshot_restore_round_trip(trained):
    network, _ = trained
    index = network.output_layer.lsh_index
    items, codes = index.snapshot_codes()
    assert items.shape[0] == index.num_items
    assert codes.shape == (items.shape[0], index.l, index.k)

    from repro.lsh.index import LSHIndex

    clone = LSHIndex(
        input_dim=index.input_dim, config=index.config, seed=index.seed
    )
    clone.restore_codes(items, codes)
    assert clone.num_items == index.num_items
    for live_table, clone_table in zip(index.tables, clone.tables):
        assert clone_table.num_items == live_table.num_items

    with pytest.raises(ValueError, match="shape"):
        clone.restore_codes(items[:1], codes)


def test_optimizer_to_config_round_trip():
    from repro.config import OptimizerConfig
    from repro.optim.factory import make_optimizer

    for config in (
        OptimizerConfig(name="adam", learning_rate=3e-4, beta1=0.8, beta2=0.95),
        OptimizerConfig(name="sgd", learning_rate=1e-2, momentum=0.5),
    ):
        optimizer = make_optimizer(config)
        recovered = optimizer.to_config()
        assert recovered.name == config.name
        assert recovered.learning_rate == config.learning_rate
        assert make_optimizer(recovered).to_config() == recovered


def test_store_versions_monotonically(tmp_path, trained):
    network, _ = trained
    store = CheckpointStore(tmp_path / "store")
    first = store.save(network, metadata={"step": 1})
    second = store.save(network, metadata={"step": 2}, tag="best")
    assert first.name == "v0001"
    # The tag lives in metadata, not the directory name, so the atomic
    # number claim stays tag-independent.
    assert second.name == "v0002"
    assert store.latest() == second
    assert store.load_latest(load_optimizer=False).metadata == {
        "step": 2,
        "tag": "best",
    }


def test_store_empty_raises(tmp_path):
    store = CheckpointStore(tmp_path / "empty")
    with pytest.raises(CheckpointError, match="no checkpoint versions"):
        store.latest()


def test_save_no_overwrite_preserves_existing(tmp_path, trained):
    from repro.serving.checkpoint import CheckpointExistsError

    network, _ = trained
    path = save_checkpoint(tmp_path / "ckpt", network, metadata={"first": True})
    with pytest.raises(CheckpointExistsError, match="already exists"):
        save_checkpoint(path, network, metadata={"second": True}, overwrite=False)
    # The original checkpoint survives untouched.
    assert load_checkpoint(path, load_optimizer=False).metadata == {"first": True}


def test_save_leaves_no_temp_dirs(tmp_path, trained):
    network, _ = trained
    store = CheckpointStore(tmp_path / "store")
    store.save(network)
    leftovers = [p.name for p in (tmp_path / "store").iterdir() if p.name.startswith(".")]
    assert leftovers == []


def test_concurrent_store_saves_all_get_distinct_versions(tmp_path, trained):
    import threading

    network, _ = trained
    store = CheckpointStore(tmp_path / "store")
    paths: list = []
    lock = threading.Lock()

    def save() -> None:
        path = store.save(network)
        with lock:
            paths.append(path)

    threads = [threading.Thread(target=save) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len({p.name for p in paths}) == 4
    # Every claimed version loads cleanly.
    for path in paths:
        load_checkpoint(path, load_optimizer=False)
