"""Shared-memory parameter store lifecycle and the process-HOGWILD trainer.

The store tests cover attach/detach/unlink in-process and from child
processes under both ``fork`` and ``spawn`` start methods; the trainer tests
pin the single-process fallback's bit-for-bit parity with the fused
synchronous path and exercise a real 2-process training run end to end.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.data.ingest import ingest_examples
from repro.data.shards import ShardedDataset
from repro.parallel.sharedmem import (
    ProcessHogwildTrainer,
    SharedParamStore,
    bind_network,
    network_state_arrays,
    unbind_network,
)

START_METHODS = [
    method for method in ("fork", "spawn") if method in mp.get_all_start_methods()
]


def _child_write_marker(manifest, value):
    """Child-process target: attach, write a marker, detach."""
    store = SharedParamStore.attach(manifest)
    try:
        array = store["w"]
        array[0, 0] = value
    finally:
        store.close()


def _child_read_cell(manifest, queue):
    """Child-process target: attach, report w[0, 0], detach."""
    store = SharedParamStore.attach(manifest)
    try:
        queue.put(float(store["w"][0, 0]))
    finally:
        store.close()


class TestSharedParamStore:
    def test_create_copies_and_roundtrips(self, rng):
        source = {"w": rng.normal(size=(4, 3)), "b": np.arange(5.0)}
        with SharedParamStore.create(source, prefix="test-store") as store:
            assert sorted(store.names()) == ["b", "w"]
            np.testing.assert_array_equal(store["w"], source["w"])
            np.testing.assert_array_equal(store["b"], source["b"])
            # The store holds a copy: mutating the source changes nothing.
            source["w"][0, 0] += 100.0
            assert store["w"][0, 0] != source["w"][0, 0]

    def test_attach_is_zero_copy(self, rng):
        with SharedParamStore.create({"w": rng.normal(size=(2, 2))}) as store:
            twin = SharedParamStore.attach(store.manifest())
            try:
                twin["w"][1, 1] = 42.0
                assert store["w"][1, 1] == 42.0
                store["w"][0, 0] = -7.0
                assert twin["w"][0, 0] == -7.0
            finally:
                twin.close()

    def test_manifest_is_json_safe(self, rng):
        import json

        with SharedParamStore.create({"w": rng.normal(size=(2, 2))}) as store:
            manifest = json.loads(json.dumps(store.manifest()))
            twin = SharedParamStore.attach(manifest)
            try:
                np.testing.assert_array_equal(twin["w"], store["w"])
            finally:
                twin.close()

    def test_close_invalidates_access_and_unlink_frees(self, rng):
        store = SharedParamStore.create({"w": rng.normal(size=(2, 2))})
        manifest = store.manifest()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store["w"]
        store.unlink()
        with pytest.raises(FileNotFoundError):
            SharedParamStore.attach(manifest)
        # unlink is idempotent.
        store.unlink()

    def test_create_rejects_empty(self):
        with pytest.raises(ValueError):
            SharedParamStore.create({})

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_child_process_sees_and_mutates(self, start_method, rng):
        context = mp.get_context(start_method)
        with SharedParamStore.create({"w": np.zeros((2, 2))}) as store:
            writer = context.Process(
                target=_child_write_marker, args=(store.manifest(), 5.5)
            )
            writer.start()
            writer.join(30.0)
            assert writer.exitcode == 0
            assert store["w"][0, 0] == 5.5

            store["w"][0, 0] = 9.25
            queue = context.Queue()
            reader = context.Process(
                target=_child_read_cell, args=(store.manifest(), queue)
            )
            reader.start()
            seen = queue.get(timeout=30.0)
            reader.join(30.0)
            assert reader.exitcode == 0
            assert seen == 9.25

    def test_network_bind_unbind_roundtrip(self, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        optimizer = network.build_optimizer(TrainingConfig())
        before = [layer.weights.copy() for layer in network.layers]
        store = SharedParamStore.create(network_state_arrays(network, optimizer))
        try:
            bind_network(network, optimizer, store)
            # Bound arrays are the store's views: writes land in shared memory.
            network.layers[0].weights[0, 0] = 123.0
            assert store["layer0.weights"][0, 0] == 123.0
            # Optimiser state is bound too.
            m = optimizer.state_of("layer0.weights")["m"]
            assert m is store["opt::layer0.weights::m"]

            unbind_network(network, optimizer, store)
        finally:
            store.close()
            store.unlink()
        # Values survived the round trip (including the mutation) and the
        # arrays are private again — usable after unlink.
        assert network.layers[0].weights[0, 0] == 123.0
        network.layers[0].weights[0, 1] = -1.0
        np.testing.assert_array_equal(network.layers[1].weights, before[1])


class TestProcessHogwildTrainer:
    def test_single_process_matches_fused_path_bitwise(
        self, tiny_dataset, tiny_network_config, tiny_training_config
    ):
        fused = SlideNetwork(tiny_network_config)
        SlideTrainer(fused, tiny_training_config, hogwild=False).train(
            tiny_dataset.train
        )
        inline = SlideNetwork(tiny_network_config)
        report = ProcessHogwildTrainer(
            inline, tiny_training_config, num_processes=1
        ).train(tiny_dataset.train)
        assert report.num_processes == 1
        assert report.start_method == "inline"
        for fused_layer, inline_layer in zip(fused.layers, inline.layers):
            np.testing.assert_array_equal(fused_layer.weights, inline_layer.weights)
            np.testing.assert_array_equal(fused_layer.biases, inline_layer.biases)

    def test_two_process_run_trains_and_restores_private_arrays(
        self, tiny_dataset, tiny_network_config, tiny_training_config
    ):
        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network, tiny_training_config, num_processes=2
        )
        report = trainer.train(tiny_dataset.train, tiny_dataset.test)

        assert report.num_processes == 2
        assert len(report.worker_stats) == 2
        # Every training example was consumed exactly once per epoch.
        expected = len(tiny_dataset.train) * tiny_training_config.epochs
        assert report.samples == expected
        assert sum(stats.batches for stats in report.worker_stats) == len(
            report.history.records
        )
        # The run actually learned something and was evaluated by the parent.
        assert report.history.epoch_accuracy
        assert report.final_accuracy() > 0.1
        # Conflict counters saw the output layer, and the shared per-worker
        # update counters agree with the workers' own batch counts.
        assert report.conflict is not None
        assert report.conflict.neurons_updated > 0
        assert 0.0 <= report.conflict.contested_fraction <= 1.0
        assert report.conflict.worker_update_counts == [
            stats.batches for stats in report.worker_stats
        ]
        # The adopted optimiser carries the *global* step count (the shared
        # moments saw one cycle per worker batch), so a checkpoint/resume
        # does not re-apply t=1 bias correction to mature moments.
        total_batches = sum(stats.batches for stats in report.worker_stats)
        assert trainer.optimizer is not None
        assert trainer.optimizer.step_count == total_batches
        # The shared segments are gone and the weights are private again.
        network.layers[0].weights[0, 0] += 1.0

    def test_sharded_dataset_workers_stream_disjoint_shards(
        self, tiny_dataset, tiny_network_config, tiny_training_config, tmp_path
    ):
        cache = tmp_path / "shards"
        ingest_examples(
            tiny_dataset.train,
            feature_dim=tiny_dataset.config.feature_dim,
            label_dim=tiny_dataset.config.label_dim,
            cache_dir=cache,
            shard_size=24,
        )
        dataset = ShardedDataset(cache, seed=5)
        assert dataset.num_shards >= 2

        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network, tiny_training_config, num_processes=2
        )
        report = trainer.train(dataset, tiny_dataset.test)
        assert report.samples == len(dataset) * tiny_training_config.epochs

    def test_worker_failure_surfaces(
        self, tiny_dataset, tiny_network_config, tiny_training_config, tmp_path
    ):
        import shutil

        cache = tmp_path / "shards"
        ingest_examples(
            tiny_dataset.train,
            feature_dim=tiny_dataset.config.feature_dim,
            label_dim=tiny_dataset.config.label_dim,
            cache_dir=cache,
            shard_size=24,
        )
        dataset = ShardedDataset(cache, seed=0)
        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network, tiny_training_config, num_processes=2
        )
        # Pull the cache out from under the workers: every worker fails to
        # open its shards, and the parent must relay the error, not hang or
        # leave shared segments behind.
        shutil.rmtree(cache)
        with pytest.raises(RuntimeError, match="worker"):
            trainer.train(dataset)
        # The network was restored to private arrays on the failure path.
        network.layers[0].weights[0, 0] += 1.0

    def test_validates_process_count(self, tiny_network_config, tiny_training_config):
        network = SlideNetwork(tiny_network_config)
        with pytest.raises(ValueError):
            ProcessHogwildTrainer(network, tiny_training_config, num_processes=0)
        with pytest.raises(ValueError):
            ProcessHogwildTrainer(network, tiny_training_config, num_processes=65)


class TestShardAssignment:
    def _cache(self, tiny_dataset, tmp_path, shard_size=20):
        cache = tmp_path / "shards"
        ingest_examples(
            tiny_dataset.train,
            feature_dim=tiny_dataset.config.feature_dim,
            label_dim=tiny_dataset.config.label_dim,
            cache_dir=cache,
            shard_size=shard_size,
        )
        return ShardedDataset(cache, seed=0)

    def test_assignment_is_disjoint_and_total(self, tiny_dataset, tmp_path):
        dataset = self._cache(tiny_dataset, tmp_path)
        groups = dataset.assign_shards(3)
        flat = [index for group in groups for index in group]
        assert sorted(flat) == list(range(dataset.num_shards))

    def test_assignment_is_balanced(self, tiny_dataset, tmp_path):
        dataset = self._cache(tiny_dataset, tmp_path)
        sizes = {
            index: dataset.manifest.shards[index].num_examples
            for index in range(dataset.num_shards)
        }
        groups = dataset.assign_shards(2)
        loads = [sum(sizes[i] for i in group) for group in groups]
        assert abs(loads[0] - loads[1]) <= max(sizes.values())

    def test_worker_view_covers_dataset(self, tiny_dataset, tmp_path):
        dataset = self._cache(tiny_dataset, tmp_path)
        views = [dataset.worker_view(w, 2) for w in range(2)]
        assert sum(len(view) for view in views) == len(dataset)
        seen: set[int] = set()
        for view in views:
            for index in view.shard_indices:
                assert index not in seen
                seen.add(index)

    def test_subset_validation(self, tiny_dataset, tmp_path):
        dataset = self._cache(tiny_dataset, tmp_path)
        with pytest.raises(ValueError, match="out of range"):
            ShardedDataset(dataset.cache_dir, shard_subset=[dataset.num_shards])
        with pytest.raises(ValueError, match="repeats"):
            ShardedDataset(dataset.cache_dir, shard_subset=[0, 0])
        with pytest.raises(ValueError):
            dataset.worker_view(2, 2)
