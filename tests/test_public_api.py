"""Tests of the top-level public API surface.

A downstream user should be able to drive the whole system from the names
exported by ``repro`` and its subpackage ``__init__`` modules; these tests
pin that surface (and its documentation) so refactors cannot silently break
it.
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    SlideNetwork,
    SlideNetworkConfig,
    SlideTrainer,
    SparseBatch,
    SparseExample,
    SparseVector,
    TrainingConfig,
)


class TestTopLevelExports:
    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_classes_are_exported(self):
        assert SlideNetwork is not None
        assert SlideTrainer is not None
        assert SparseVector is not None

    def test_public_classes_have_docstrings(self):
        for obj in (
            SlideNetwork,
            SlideTrainer,
            SparseVector,
            SparseExample,
            SparseBatch,
            LSHConfig,
            LayerConfig,
            SlideNetworkConfig,
        ):
            assert obj.__doc__ and obj.__doc__.strip(), obj


class TestSubpackageExports:
    def test_hashing_exports(self):
        from repro import hashing

        for name in hashing.__all__:
            assert hasattr(hashing, name), name

    def test_lsh_exports(self):
        from repro import lsh

        for name in lsh.__all__:
            assert hasattr(lsh, name), name

    def test_perf_exports(self):
        from repro import perf

        for name in perf.__all__:
            assert hasattr(perf, name), name

    def test_harness_exports(self):
        from repro import harness

        for name in harness.__all__:
            assert hasattr(harness, name), name

    def test_datasets_exports(self):
        from repro import datasets

        for name in datasets.__all__:
            assert hasattr(datasets, name), name


class TestConfigImmutability:
    """Configs are frozen dataclasses: shared configs cannot be mutated by
    one consumer under another consumer's feet."""

    @pytest.mark.parametrize(
        "config",
        [
            LSHConfig(),
            SamplingConfig(),
            OptimizerConfig(),
            TrainingConfig(),
            LayerConfig(size=8),
        ],
    )
    def test_configs_are_frozen(self, config):
        assert dataclasses.is_frozen(type(config)) if hasattr(dataclasses, "is_frozen") else True
        field_name = dataclasses.fields(config)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(config, field_name, 123)

    def test_network_config_is_frozen(self):
        config = SlideNetworkConfig(
            input_dim=8,
            layers=(LayerConfig(size=4, activation="softmax"),),
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.input_dim = 99


class TestMinimalWorkflow:
    def test_readme_style_workflow_runs(self):
        """The README quickstart snippet, miniaturised, must run end to end."""
        from repro.datasets import SyntheticXCConfig, generate_synthetic_xc

        dataset = generate_synthetic_xc(
            SyntheticXCConfig(
                feature_dim=128, label_dim=24, num_train=64, num_test=24, seed=0
            )
        )
        network = SlideNetwork(
            SlideNetworkConfig(
                input_dim=dataset.feature_dim,
                layers=(
                    LayerConfig(size=16, activation="relu"),
                    LayerConfig(
                        size=dataset.label_dim,
                        activation="softmax",
                        lsh=LSHConfig(hash_family="simhash", k=3, l=8, bucket_size=16),
                        sampling=SamplingConfig(strategy="vanilla", target_active=8),
                    ),
                ),
            )
        )
        trainer = SlideTrainer(network, TrainingConfig(batch_size=16, epochs=1))
        trainer.train(dataset.train, dataset.test)
        accuracy = trainer.evaluate(dataset.test)
        assert 0.0 <= accuracy <= 1.0
