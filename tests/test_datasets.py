"""Tests for the synthetic datasets, the XC-format loader and statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import (
    load_xc_file,
    parse_xc_line,
    parse_xc_tokens,
    write_xc_file,
)
from repro.datasets.stats import PAPER_DATASET_STATS, compute_statistics
from repro.datasets.synthetic import (
    SyntheticXCConfig,
    amazon_like_config,
    delicious_like_config,
    generate_synthetic_xc,
)


class TestSyntheticGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        config = SyntheticXCConfig(
            feature_dim=512,
            label_dim=96,
            num_train=256,
            num_test=64,
            avg_features_per_example=24,
            avg_labels_per_example=2.5,
            seed=3,
        )
        return generate_synthetic_xc(config)

    def test_sizes_match_config(self, dataset):
        assert len(dataset.train) == 256
        assert len(dataset.test) == 64

    def test_labels_within_range(self, dataset):
        for example in dataset.train:
            assert example.labels.size >= 1
            assert example.labels.max() < 96

    def test_features_within_range_and_sparse(self, dataset):
        nnz = [ex.features.nnz for ex in dataset.train]
        assert np.mean(nnz) < 96  # far sparser than the feature dimension
        for example in dataset.train[:32]:
            assert example.features.indices.max() < 512
            assert example.features.indices.min() >= 0

    def test_feature_sparsity_reported(self, dataset):
        sparsity = dataset.feature_sparsity()
        assert 0 < sparsity < 0.25

    def test_label_frequencies_are_skewed(self, dataset):
        """Power-law label sampling: the most common label must appear far
        more often than the median label."""
        counts = np.zeros(96)
        for example in dataset.train:
            counts[example.labels] += 1
        sorted_counts = np.sort(counts)[::-1]
        assert sorted_counts[0] >= 4 * max(np.median(sorted_counts), 1)

    def test_determinism_by_seed(self):
        config = SyntheticXCConfig(feature_dim=128, label_dim=32, num_train=64, num_test=16, seed=9)
        a = generate_synthetic_xc(config)
        b = generate_synthetic_xc(config)
        for ex_a, ex_b in zip(a.train, b.train):
            np.testing.assert_array_equal(ex_a.features.indices, ex_b.features.indices)
            np.testing.assert_array_equal(ex_a.labels, ex_b.labels)

    def test_different_seeds_differ(self):
        base = dict(feature_dim=128, label_dim=32, num_train=64, num_test=16)
        a = generate_synthetic_xc(SyntheticXCConfig(seed=1, **base))
        b = generate_synthetic_xc(SyntheticXCConfig(seed=2, **base))
        assert any(
            not np.array_equal(x.features.indices, y.features.indices)
            for x, y in zip(a.train, b.train)
        )

    def test_examples_are_learnable_signal(self, dataset):
        """Examples sharing a label should be more similar (cosine of dense
        features) than examples with disjoint labels — the structure both
        SLIDE and the baselines rely on to learn."""
        by_label: dict[int, list[int]] = {}
        for idx, ex in enumerate(dataset.train):
            for label in ex.labels:
                by_label.setdefault(int(label), []).append(idx)
        shared_pairs = []
        for label, members in by_label.items():
            if len(members) >= 2:
                shared_pairs.append((members[0], members[1]))
            if len(shared_pairs) >= 20:
                break
        assert shared_pairs, "dataset should contain labels with multiple examples"

        def cosine(i, j):
            a = dataset.train[i].features.to_dense()
            b = dataset.train[j].features.to_dense()
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        rng = np.random.default_rng(0)
        shared_sim = np.mean([cosine(i, j) for i, j in shared_pairs])
        random_sim = np.mean(
            [cosine(int(rng.integers(256)), int(rng.integers(256))) for _ in range(40)]
        )
        assert shared_sim > random_sim

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            SyntheticXCConfig(feature_dim=0)
        with pytest.raises(ValueError):
            SyntheticXCConfig(avg_labels_per_example=0.5)
        with pytest.raises(ValueError):
            SyntheticXCConfig(zipf_exponent=0.0)
        with pytest.raises(ValueError):
            SyntheticXCConfig(noise_scale=-1.0)


class TestPresetConfigs:
    def test_delicious_like_scales(self):
        config = delicious_like_config(scale=1 / 1024)
        assert config.feature_dim == int(782_585 / 1024)
        assert config.label_dim == int(205_443 / 1024)
        assert "delicious" in config.name

    def test_amazon_like_scales(self):
        config = amazon_like_config(scale=1 / 1024)
        assert config.label_dim == int(670_091 / 1024)
        assert "amazon" in config.name

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            delicious_like_config(scale=0.0)
        with pytest.raises(ValueError):
            amazon_like_config(scale=2.0)


class TestXCLoader:
    def test_parse_line_with_labels_and_features(self):
        example = parse_xc_line("3,7 0:0.5 9:1.25", feature_dim=16)
        np.testing.assert_array_equal(example.labels, [3, 7])
        np.testing.assert_array_equal(example.features.indices, [0, 9])
        np.testing.assert_allclose(example.features.values, [0.5, 1.25])

    def test_parse_line_without_labels(self):
        example = parse_xc_line("0:1.0 2:2.0", feature_dim=4)
        assert example.labels.size == 0
        assert example.features.nnz == 2

    def test_parse_line_coalesces_duplicate_features(self):
        """Duplicate ``feat:val`` tokens sum their values; indices stay
        sorted and unique as the downstream CSR/searchsorted paths assume."""
        example = parse_xc_line("1 3:1.0 0:0.5 3:2.5 0:0.25", feature_dim=8)
        np.testing.assert_array_equal(example.features.indices, [0, 3])
        np.testing.assert_allclose(example.features.values, [0.75, 3.5])

    def test_parse_tokens_unsorted_input_sorted_output(self):
        labels, indices, values = parse_xc_tokens("2 9:1.0 1:2.0 5:3.0", feature_dim=16)
        np.testing.assert_array_equal(labels, [2])
        np.testing.assert_array_equal(indices, [1, 5, 9])
        np.testing.assert_allclose(values, [2.0, 3.0, 1.0])

    def test_write_rejects_fully_empty_example(self, tmp_path):
        """A line with no labels and no features would be blank — the readers
        skip blank lines, so the writer must refuse it up front."""
        from repro.types import SparseExample, SparseVector

        empty = SparseExample(
            features=SparseVector(
                indices=np.zeros(0, dtype=np.int64),
                values=np.zeros(0),
                dimension=8,
            ),
            labels=np.zeros(0, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="fully empty"):
            write_xc_file(tmp_path / "empty.txt", [empty], 8, 5)

    def test_write_then_load_round_trip(self, tmp_path, tiny_dataset):
        path = tmp_path / "roundtrip.txt"
        write_xc_file(
            path,
            tiny_dataset.train[:16],
            tiny_dataset.config.feature_dim,
            tiny_dataset.config.label_dim,
        )
        examples, feature_dim, label_dim = load_xc_file(path)
        assert feature_dim == tiny_dataset.config.feature_dim
        assert label_dim == tiny_dataset.config.label_dim
        assert len(examples) == 16
        for original, loaded in zip(tiny_dataset.train, examples):
            np.testing.assert_array_equal(
                original.features.indices, loaded.features.indices
            )
            np.testing.assert_array_equal(
                original.features.values, loaded.features.values
            )
            np.testing.assert_array_equal(original.labels, loaded.labels)

    def test_parse_line_feature_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_xc_line("1 99:1.0", feature_dim=10)

    def test_parse_empty_line_raises(self):
        with pytest.raises(ValueError):
            parse_xc_line("   ", feature_dim=4)

    def test_load_file_roundtrip(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text(
            "3 8 5\n"
            "0,2 1:0.5 3:1.0\n"
            "4 0:2.0\n"
            "1 5:0.25 7:0.75\n"
        )
        examples, feature_dim, label_dim = load_xc_file(path)
        assert feature_dim == 8 and label_dim == 5
        assert len(examples) == 3
        np.testing.assert_array_equal(examples[0].labels, [0, 2])

    def test_load_file_max_examples(self, tmp_path):
        path = tmp_path / "toy.txt"
        path.write_text("3 4 3\n0 0:1\n1 1:1\n2 2:1\n")
        examples, _, _ = load_xc_file(path, max_examples=2)
        assert len(examples) == 2

    def test_load_file_header_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("5 4 3\n0 0:1\n")
        with pytest.raises(ValueError, match="promised"):
            load_xc_file(path)

    def test_load_file_label_out_of_range_raises(self, tmp_path):
        path = tmp_path / "bad_label.txt"
        path.write_text("1 4 2\n7 0:1\n")
        with pytest.raises(ValueError, match="label index"):
            load_xc_file(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_xc_file(tmp_path / "nope.txt")

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "header.txt"
        path.write_text("1 2\n")
        with pytest.raises(ValueError, match="header"):
            load_xc_file(path)


class TestStatistics:
    def test_paper_stats_table(self):
        delicious = PAPER_DATASET_STATS["Delicious-200K"]
        assert delicious.feature_dim == 782_585
        assert delicious.label_dim == 205_443
        row = delicious.as_row()
        assert row["feature_sparsity_%"] == pytest.approx(0.038, abs=1e-3)

    def test_compute_statistics(self, tiny_dataset):
        stats = compute_statistics(
            "tiny",
            tiny_dataset.train,
            tiny_dataset.test,
            feature_dim=tiny_dataset.config.feature_dim,
            label_dim=tiny_dataset.config.label_dim,
        )
        assert stats.training_size == len(tiny_dataset.train)
        assert stats.testing_size == len(tiny_dataset.test)
        assert 0 < stats.feature_sparsity < 1

    def test_compute_statistics_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            compute_statistics("bad", [], [], feature_dim=0, label_dim=4)
