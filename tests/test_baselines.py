"""Tests for the dense full-softmax and sampled-softmax baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dense import DenseNetwork, DenseNetworkConfig
from repro.baselines.sampled_softmax import SampledSoftmaxConfig, SampledSoftmaxNetwork
from repro.config import OptimizerConfig
from repro.metrics.accuracy import precision_at_1
from repro.types import SparseBatch


def make_batch(dataset, size=16):
    return SparseBatch.from_examples(
        dataset.train[:size],
        feature_dim=dataset.config.feature_dim,
        label_dim=dataset.config.label_dim,
    )


class TestDenseNetwork:
    def _network(self, dataset, lr=2e-3, seed=0) -> DenseNetwork:
        return DenseNetwork(
            DenseNetworkConfig(
                input_dim=dataset.config.feature_dim,
                hidden_dim=24,
                output_dim=dataset.config.label_dim,
                optimizer=OptimizerConfig(learning_rate=lr),
                seed=seed,
            )
        )

    def test_forward_probabilities_normalised(self, tiny_dataset):
        network = self._network(tiny_dataset)
        batch = make_batch(tiny_dataset, size=4)
        _, _, probs = network.forward(batch.to_dense_features())
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_training_reduces_loss(self, tiny_dataset):
        network = self._network(tiny_dataset)
        batch = make_batch(tiny_dataset)
        losses = [network.train_batch(batch)["loss"] for _ in range(30)]
        assert losses[-1] < losses[0]

    def test_learns_tiny_task(self, tiny_dataset):
        network = self._network(tiny_dataset, lr=5e-3)
        for _ in range(3):
            for start in range(0, 128, 16):
                batch = SparseBatch.from_examples(
                    tiny_dataset.train[start : start + 16],
                    feature_dim=tiny_dataset.config.feature_dim,
                    label_dim=tiny_dataset.config.label_dim,
                )
                network.train_batch(batch)
        test = tiny_dataset.test[:48]
        scores = np.stack([network.predict_dense(ex) for ex in test])
        accuracy = precision_at_1(scores, [ex.labels for ex in test])
        assert accuracy > 0.2  # far above the ~2 % random baseline

    def test_predict_top_k(self, tiny_dataset):
        network = self._network(tiny_dataset)
        top2 = network.predict_top_k(tiny_dataset.test[0], k=2)
        assert top2.shape == (2,)

    def test_flops_per_sample_accounting(self, tiny_dataset):
        network = self._network(tiny_dataset)
        cfg = network.config
        full = network.flops_per_sample()
        sparse_aware = network.flops_per_sample(avg_input_nnz=10)
        assert full == pytest.approx(
            3 * (cfg.input_dim * cfg.hidden_dim + cfg.hidden_dim * cfg.output_dim)
        )
        assert sparse_aware < full

    def test_metrics_report_dense_work(self, tiny_dataset):
        network = self._network(tiny_dataset)
        batch = make_batch(tiny_dataset, size=8)
        metrics = network.train_batch(batch)
        assert metrics["active_neurons"] == 8 * (24 + tiny_dataset.config.label_dim)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            DenseNetworkConfig(input_dim=0, hidden_dim=4, output_dim=4)


class TestSampledSoftmaxNetwork:
    def _network(self, dataset, fraction=0.25, seed=0) -> SampledSoftmaxNetwork:
        return SampledSoftmaxNetwork(
            SampledSoftmaxConfig(
                input_dim=dataset.config.feature_dim,
                hidden_dim=24,
                output_dim=dataset.config.label_dim,
                sample_fraction=fraction,
                optimizer=OptimizerConfig(learning_rate=2e-3),
                seed=seed,
            )
        )

    def test_candidates_include_batch_labels(self, tiny_dataset):
        network = self._network(tiny_dataset)
        labels = np.array([1, 5, 9])
        candidates = network.sample_candidates(labels)
        assert set(labels.tolist()).issubset(set(candidates.tolist()))

    def test_candidate_count_tracks_fraction(self, tiny_dataset):
        network = self._network(tiny_dataset, fraction=0.5)
        candidates = network.sample_candidates(np.array([], dtype=np.int64))
        assert candidates.size == network.config.num_sampled

    def test_uniform_distribution_supported(self, tiny_dataset):
        config = SampledSoftmaxConfig(
            input_dim=tiny_dataset.config.feature_dim,
            hidden_dim=8,
            output_dim=tiny_dataset.config.label_dim,
            sample_fraction=0.3,
            distribution="uniform",
        )
        network = SampledSoftmaxNetwork(config)
        candidates = network.sample_candidates(np.array([0]))
        assert candidates.size >= network.config.num_sampled

    def test_training_reduces_loss(self, tiny_dataset):
        network = self._network(tiny_dataset)
        batch = make_batch(tiny_dataset)
        losses = [network.train_batch(batch)["loss"] for _ in range(30)]
        assert losses[-1] < losses[0]

    def test_metrics_report_candidate_count(self, tiny_dataset):
        network = self._network(tiny_dataset)
        batch = make_batch(tiny_dataset, size=8)
        metrics = network.train_batch(batch)
        assert metrics["num_candidates"] > 0
        assert metrics["num_candidates"] <= tiny_dataset.config.label_dim

    def test_full_softmax_prediction_normalised(self, tiny_dataset):
        network = self._network(tiny_dataset)
        scores = network.predict_dense(tiny_dataset.test[0])
        assert scores.sum() == pytest.approx(1.0)

    def test_flops_scale_with_sample_fraction(self, tiny_dataset):
        small = self._network(tiny_dataset, fraction=0.1)
        large = self._network(tiny_dataset, fraction=0.9)
        assert small.flops_per_sample(10) < large.flops_per_sample(10)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            SampledSoftmaxConfig(input_dim=4, hidden_dim=4, output_dim=4, sample_fraction=0.0)
