"""Tests for the training driver and inference helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import OptimizerConfig, TrainingConfig
from repro.core.inference import (
    evaluate_precision_at_1,
    evaluate_precision_at_k,
    predict_top_k,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer


class TestSlideTrainer:
    def _trainer(self, tiny_network_config, **overrides) -> SlideTrainer:
        defaults = dict(
            batch_size=16,
            epochs=1,
            optimizer=OptimizerConfig(learning_rate=2e-3),
            eval_every=3,
            eval_samples=32,
            seed=1,
        )
        defaults.update(overrides)
        network = SlideNetwork(tiny_network_config)
        return SlideTrainer(network, TrainingConfig(**defaults))

    def test_training_produces_history(self, tiny_dataset, tiny_network_config):
        trainer = self._trainer(tiny_network_config)
        history = trainer.train(tiny_dataset.train, tiny_dataset.test)
        expected_iterations = int(np.ceil(len(tiny_dataset.train) / 16))
        assert len(history.records) == expected_iterations
        assert all(r.batch_size > 0 for r in history.records)
        assert all(r.active_neurons > 0 for r in history.records)
        assert history.total_wall_time() > 0

    def test_eval_every_records_accuracy(self, tiny_dataset, tiny_network_config):
        trainer = self._trainer(tiny_network_config, eval_every=2)
        history = trainer.train(tiny_dataset.train, tiny_dataset.test)
        evaluated = history.accuracies()
        assert evaluated
        assert all(0.0 <= acc <= 1.0 for _, acc in evaluated)
        assert all(it % 2 == 0 for it, _ in evaluated)

    def test_epoch_accuracy_recorded(self, tiny_dataset, tiny_network_config):
        trainer = self._trainer(tiny_network_config, epochs=1)
        history = trainer.train(tiny_dataset.train, tiny_dataset.test)
        assert len(history.epoch_accuracy) == 1
        assert history.final_accuracy() is not None

    def test_training_improves_over_untrained(self, tiny_dataset, tiny_network_config):
        trainer = self._trainer(tiny_network_config, epochs=2, eval_every=0)
        untrained_accuracy = trainer.evaluate(tiny_dataset.test[:48])
        trainer.train(tiny_dataset.train, tiny_dataset.test)
        trained_accuracy = trainer.evaluate(tiny_dataset.test[:48])
        assert trained_accuracy > untrained_accuracy

    def test_empty_training_set_raises(self, tiny_network_config):
        trainer = self._trainer(tiny_network_config)
        with pytest.raises(ValueError):
            trainer.train([])

    def test_history_helpers(self, tiny_dataset, tiny_network_config):
        trainer = self._trainer(tiny_network_config)
        history = trainer.train(tiny_dataset.train, tiny_dataset.test)
        assert history.iterations().shape[0] == len(history.records)
        assert history.losses().shape[0] == len(history.records)
        assert history.total_active_neurons() > 0
        assert history.total_active_weights() > 0

    def test_no_shuffle_is_deterministic(self, tiny_dataset, tiny_network_config):
        histories = []
        for _ in range(2):
            trainer = self._trainer(tiny_network_config, shuffle=False, eval_every=0)
            history = trainer.train(tiny_dataset.train[:64])
            histories.append(history.losses())
        np.testing.assert_allclose(histories[0], histories[1])


class TestInference:
    def test_predict_top_k(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        example = tiny_dataset.test[0]
        top3 = predict_top_k(network, example, k=3)
        assert top3.shape == (3,)
        assert len(set(top3.tolist())) == 3
        scores = network.predict_dense(example)
        assert scores[top3[0]] >= scores[top3[1]] >= scores[top3[2]]

    def test_precision_at_1_bounds(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        accuracy = evaluate_precision_at_1(network, tiny_dataset.test[:32])
        assert 0.0 <= accuracy <= 1.0

    def test_precision_at_k_invalid_k(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        with pytest.raises(ValueError):
            evaluate_precision_at_k(network, tiny_dataset.test[:4], k=0)

    def test_precision_on_empty_examples_is_zero(self, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        assert evaluate_precision_at_1(network, []) == 0.0
