"""Golden-artifact contract tests.

Every ``BENCH_*.json`` committed at the repository root must parse, carry a
well-formed envelope that agrees with its registry entry, and validate
against the registered payload schema.  A hand-edited, truncated or
stale-format artifact fails tier-1 here — before the trend gate ever runs.
"""

from __future__ import annotations

import copy
import json
import math

import numpy as np
import pytest

from repro.reports.artifacts import (
    ArtifactError,
    ENVELOPE_SCHEMA,
    read_artifact,
    stamp_envelope,
    to_jsonable,
    validate_artifact,
    wrap_payload,
)
from repro.reports.registry import all_specs, get_spec
from repro.reports.schema import SchemaError, check

SPECS = all_specs()
SPEC_IDS = [spec.bench_id for spec in SPECS]


# ----------------------------------------------------------------------
# Golden contract: every committed artifact validates against its schema
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_committed_artifact_exists_and_validates(spec):
    path = spec.artifact_path()
    assert path.is_file(), f"committed baseline missing: {path.name}"
    document = read_artifact(spec)  # raises ArtifactError on any schema problem
    envelope = document["envelope"]
    assert envelope["bench_id"] == spec.bench_id
    assert envelope["measured"] is spec.measured
    # Committed baselines are generated in smoke mode so CI's --smoke sweep
    # compares like-for-like (the trend checker refuses cross-mode diffs).
    assert envelope["mode"] == "smoke"
    assert check(envelope, ENVELOPE_SCHEMA) == []


@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_committed_payload_survives_strict_revalidation(spec):
    document = json.loads(spec.artifact_path().read_text())
    assert validate_artifact(spec, document) == []


def _golden(bench_id: str):
    spec = get_spec(bench_id)
    return spec, json.loads(spec.artifact_path().read_text())


# ----------------------------------------------------------------------
# Tampering: edits that must not pass silently
# ----------------------------------------------------------------------
def test_truncated_payload_fails_validation():
    spec, document = _golden("train_throughput")
    broken = copy.deepcopy(document)
    del broken["payload"]["rows"]
    problems = validate_artifact(spec, broken)
    assert any("rows" in p for p in problems)


def test_dropped_row_field_fails_validation():
    spec, document = _golden("train_throughput")
    broken = copy.deepcopy(document)
    del broken["payload"]["rows"][0]["precision_at_1"]
    problems = validate_artifact(spec, broken)
    assert any("precision_at_1" in p for p in problems)


def test_wrong_bench_id_fails_validation():
    spec, document = _golden("fig4_sampling")
    broken = copy.deepcopy(document)
    broken["envelope"]["bench_id"] = "fig9_scalability"
    problems = validate_artifact(spec, broken)
    assert any("bench_id" in p for p in problems)


def test_measured_flag_contradicting_registry_fails_validation():
    # fig10 is a modelled artifact; claiming measured=true in the envelope
    # must fail (docs and gating key off this flag).
    spec, document = _golden("fig10_hugepages_simd")
    assert spec.measured is False
    broken = copy.deepcopy(document)
    broken["envelope"]["measured"] = True
    problems = validate_artifact(spec, broken)
    assert any("contradicts the registry" in p for p in problems)


def test_missing_envelope_key_fails_validation():
    spec, document = _golden("fig4_sampling")
    broken = copy.deepcopy(document)
    del broken["envelope"]["git_rev"]
    problems = validate_artifact(spec, broken)
    assert any("git_rev" in p for p in problems)


def test_strict_validation_raises():
    spec, document = _golden("fig4_sampling")
    broken = copy.deepcopy(document)
    broken["payload"] = {}
    with pytest.raises(SchemaError):
        validate_artifact(spec, broken, strict=True)


def test_read_artifact_rejects_truncated_json(tmp_path):
    spec, _ = _golden("fig4_sampling")
    target = tmp_path / spec.artifact
    target.write_text(spec.artifact_path().read_text()[:200])
    with pytest.raises(ArtifactError, match="not valid JSON"):
        read_artifact(spec, target)


def test_read_artifact_rejects_missing_file(tmp_path):
    spec, _ = _golden("fig4_sampling")
    with pytest.raises(ArtifactError, match="missing"):
        read_artifact(spec, tmp_path / spec.artifact)


# ----------------------------------------------------------------------
# Envelope stamping + JSON coercion
# ----------------------------------------------------------------------
def test_stamp_envelope_matches_its_own_schema():
    spec = get_spec("train_throughput")
    envelope = stamp_envelope(spec, "full")
    assert check(envelope, ENVELOPE_SCHEMA) == []
    assert envelope["mode"] == "full"
    with pytest.raises(ValueError):
        stamp_envelope(spec, "warm")


def test_wrap_payload_roundtrips_through_json():
    spec, document = _golden("fig4_sampling")
    wrapped = wrap_payload(spec, document["payload"], mode="smoke")
    json.loads(json.dumps(wrapped))  # strictly JSON-serialisable
    assert wrapped["payload"] == document["payload"]


def test_to_jsonable_coerces_numpy_and_tuples():
    value = {
        "i": np.int64(3),
        "f": np.float32(0.5),
        "b": np.bool_(True),
        "arr": np.arange(3),
        "tup": (1, 2),
        "nested": {"xs": [np.float64(1.5)]},
    }
    out = to_jsonable(value)
    assert out == {
        "i": 3,
        "f": 0.5,
        "b": True,
        "arr": [0, 1, 2],
        "tup": [1, 2],
        "nested": {"xs": [1.5]},
    }
    assert isinstance(out["i"], int) and isinstance(out["f"], float)
    assert isinstance(out["b"], bool)


def test_to_jsonable_stringifies_non_finite_floats():
    assert to_jsonable(math.nan) == "NaN"
    assert to_jsonable(math.inf) == "Infinity"
    assert to_jsonable(-math.inf) == "-Infinity"
    # ...so the result is always strict-JSON serialisable.
    json.dumps(to_jsonable({"x": math.nan}))
