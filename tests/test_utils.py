"""Tests for :mod:`repro.utils` (rng, sparse helpers, top-k, validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.sparse import (
    normalize_rows,
    random_sparse_matrix,
    sparse_dense_matvec,
    sparse_rows_dot,
)
from repro.utils.topk import threshold_indices, top_k_indices
from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_positive,
    check_probability,
)


class TestRng:
    def test_same_seed_same_stream_is_deterministic(self):
        a = derive_rng(42, stream=1).integers(0, 1000, size=10)
        b = derive_rng(42, stream=1).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = derive_rng(42, stream=1).integers(0, 1_000_000, size=20)
        b = derive_rng(42, stream=2).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_passing_generator_returns_it(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen

    def test_negative_seed_raises(self):
        with pytest.raises(ValueError):
            derive_rng(-1)

    def test_spawn_rngs_count(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [r.integers(0, 1_000_000) for r in rngs]
        assert len(set(draws)) > 1

    def test_spawn_rngs_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(7, 0)


class TestSparseHelpers:
    def test_sparse_dense_matvec_matches_dense(self, rng):
        weights = rng.normal(size=(10, 12))
        rows = np.array([1, 4, 7])
        cols = np.array([0, 3, 5, 9])
        values = rng.normal(size=4)
        result = sparse_dense_matvec(weights, rows, cols, values)
        dense_input = np.zeros(12)
        dense_input[cols] = values
        expected = weights[rows] @ dense_input
        np.testing.assert_allclose(result, expected)

    def test_sparse_dense_matvec_empty_rows(self, rng):
        weights = rng.normal(size=(5, 5))
        result = sparse_dense_matvec(
            weights, np.array([], dtype=np.int64), np.array([0]), np.array([1.0])
        )
        assert result.shape == (0,)

    def test_sparse_dense_matvec_empty_cols(self, rng):
        weights = rng.normal(size=(5, 5))
        result = sparse_dense_matvec(
            weights, np.array([0, 1]), np.array([], dtype=np.int64), np.array([])
        )
        np.testing.assert_array_equal(result, np.zeros(2))

    def test_sparse_rows_dot(self, rng):
        weights = rng.normal(size=(6, 4))
        vector = rng.normal(size=4)
        rows = np.array([0, 5])
        np.testing.assert_allclose(
            sparse_rows_dot(weights, rows, vector), weights[rows] @ vector
        )

    def test_normalize_rows_unit_norm(self, rng):
        matrix = rng.normal(size=(5, 7))
        normalized = normalize_rows(matrix)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_normalize_rows_handles_zero_row(self):
        matrix = np.zeros((2, 3))
        matrix[0] = [1.0, 0.0, 0.0]
        normalized = normalize_rows(matrix)
        assert np.all(np.isfinite(normalized))

    def test_random_sparse_matrix_density(self, rng):
        matrix = random_sparse_matrix(200, 50, density=0.1, rng=rng)
        observed = np.count_nonzero(matrix) / matrix.size
        assert 0.05 < observed < 0.15

    def test_random_sparse_matrix_invalid_density(self, rng):
        with pytest.raises(ValueError):
            random_sparse_matrix(5, 5, density=0.0, rng=rng)


class TestTopK:
    def test_top_k_returns_largest_descending(self):
        scores = np.array([1.0, 5.0, 3.0, 4.0, 2.0])
        np.testing.assert_array_equal(top_k_indices(scores, 3), [1, 3, 2])

    def test_top_k_larger_than_input_returns_all_sorted(self):
        scores = np.array([1.0, 3.0, 2.0])
        np.testing.assert_array_equal(top_k_indices(scores, 10), [1, 2, 0])

    def test_top_k_zero_returns_empty(self):
        assert top_k_indices(np.array([1.0, 2.0]), 0).size == 0

    def test_threshold_indices(self):
        scores = np.array([0.1, 0.5, 0.9, 0.5])
        np.testing.assert_array_equal(threshold_indices(scores, 0.5), [1, 2, 3])

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_k_property(self, values, k):
        scores = np.array(values)
        result = top_k_indices(scores, k)
        assert result.size == min(k, scores.size)
        # Every selected score is >= every non-selected score.
        if result.size < scores.size:
            selected = scores[result]
            not_selected = np.delete(scores, result)
            assert selected.min() >= not_selected.max() - 1e-12


class TestValidation:
    def test_check_positive(self):
        check_positive(1.0, "x")
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive(0.0, "x")

    def test_check_probability(self):
        check_probability(0.5, "p")
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_check_array_1d(self):
        out = check_array_1d([1, 2, 3], "a")
        assert out.ndim == 1
        with pytest.raises(ValueError):
            check_array_1d(np.zeros((2, 2)), "a")

    def test_check_in_range(self):
        check_in_range(0.5, 0.0, 1.0, "v")
        with pytest.raises(ValueError):
            check_in_range(2.0, 0.0, 1.0, "v")
