"""The online train-to-serve runtime: hot reload, admission control, autoscaling.

Covers the overload contract (typed 429 sheds with correct counters,
deadline drops *before* compute), hot-reload parity (post-swap engine ≡
cold-loaded checkpoint, bitwise top-k, incremental LSH patch — no full
rebuild), the elastic pool + hysteresis autoscaler, checkpoint retention
(prune / pin / auto-prune), the strict JSON config loader, and the full
reload-under-live-traffic integration scenario.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
    TrainingConfig,
    load_serving_config,
    serving_config_from_dict,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.serving import (
    AutoscaleController,
    CheckpointStore,
    CheckpointWatcher,
    DeadlineExceededError,
    DenseInferenceEngine,
    ElasticEnginePool,
    MicroBatchQueue,
    OnlineRuntime,
    RejectedError,
    ServingMetrics,
    ServingRuntime,
    SparseInferenceEngine,
    load_checkpoint,
    run_open_loop,
)
from repro.serving.__main__ import main as serve_main


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _make_network(tiny_dataset, seed: int = 3) -> SlideNetwork:
    # bucket_size=64 > label_dim=48 guarantees no FIFO bucket ever
    # overflows, which is the precondition for bitwise hot-swap parity
    # (overflow eviction order is the one thing a swap does not preserve).
    lsh = LSHConfig(hash_family="simhash", k=3, l=16, bucket_size=64)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    return SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=seed
        )
    )


def _make_trainer(network: SlideNetwork) -> SlideTrainer:
    return SlideTrainer(
        network,
        TrainingConfig(
            batch_size=16,
            epochs=1,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=11,
        ),
    )


class SlowDenseEngine(DenseInferenceEngine):
    """Dense engine with an artificial per-batch delay (overload tests)."""

    def __init__(self, network: SlideNetwork, delay_s: float) -> None:
        super().__init__(network)
        self.delay_s = delay_s
        self.batches_computed = 0

    def predict_batch(self, examples, k=1):
        time.sleep(self.delay_s)
        self.batches_computed += 1
        return super().predict_batch(examples, k=k)


# ----------------------------------------------------------------------
# Admission control: shed + deadline
# ----------------------------------------------------------------------
def test_full_queue_sheds_with_typed_429_and_counters(tiny_dataset):
    engine = SlowDenseEngine(_make_network(tiny_dataset), delay_s=0.05)
    config = ServingConfig(
        engine="dense",
        top_k=1,
        max_batch_size=1,
        max_wait_ms=0.0,
        num_workers=1,
        queue_capacity=1,
        admission_policy="shed",
    )
    rejections = []
    with ServingRuntime(engine, config) as runtime:
        futures = []
        for i in range(30):
            try:
                futures.append(runtime.submit(tiny_dataset.test[i % 8]))
            except RejectedError as exc:
                rejections.append(exc)
        assert rejections, "a 1-deep queue under a 50ms/batch engine must shed"
        exc = rejections[0]
        assert exc.cause == "queue_full"
        assert exc.http_status == 429
        assert 0.0 < exc.retry_after_s <= 5.0
        assert exc.pending >= 1
        # Admitted requests still complete.
        for future in futures:
            future.result(timeout=30.0)
    assert runtime.metrics.sheds["queue_full"] == len(rejections)
    snapshot = runtime.stats()
    assert snapshot["sheds"]["queue_full"] == float(len(rejections))
    assert snapshot["shed_total"] == float(len(rejections))
    # Sheds are not errors.
    assert snapshot["errors"] == 0.0


def test_deadline_expired_requests_drop_before_compute(tiny_dataset):
    engine = SlowDenseEngine(_make_network(tiny_dataset), delay_s=0.05)
    config = ServingConfig(
        engine="dense",
        top_k=1,
        max_batch_size=1,
        max_wait_ms=0.0,
        num_workers=1,
        queue_capacity=64,
        deadline_ms=5.0,
    )
    with ServingRuntime(engine, config) as runtime:
        futures = [runtime.submit(tiny_dataset.test[i]) for i in range(4)]
        # First request reaches the worker within its budget; the rest sit
        # behind a 50ms batch and expire in queue.
        futures[0].result(timeout=10.0)
        for future in futures[1:]:
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=10.0)
            assert excinfo.value.http_status == 504
            assert excinfo.value.waited_s > excinfo.value.deadline_s
    # Dropped before compute: only the one live batch hit the engine.
    assert engine.batches_computed == 1
    assert runtime.metrics.sheds["deadline"] == 3


def test_block_policy_still_blocks(tiny_dataset):
    queue = MicroBatchQueue(max_batch_size=4, capacity=1, policy="block")
    queue.submit(tiny_dataset.test[0])
    blocked = threading.Event()

    def second_submit():
        blocked.set()
        queue.submit(tiny_dataset.test[1])

    thread = threading.Thread(target=second_submit, daemon=True)
    thread.start()
    blocked.wait(timeout=1.0)
    time.sleep(0.05)
    assert thread.is_alive(), "block policy must wait, not shed"
    queue.next_batch(timeout=0.1)  # free capacity
    thread.join(timeout=2.0)
    assert not thread.is_alive()


# ----------------------------------------------------------------------
# Hot reload
# ----------------------------------------------------------------------
@pytest.fixture()
def trained_store(tmp_path, tiny_dataset):
    """A store with two versions: v1 after one epoch, v2 after two."""
    network = _make_network(tiny_dataset)
    trainer = _make_trainer(network)
    store = CheckpointStore(tmp_path / "store")
    trainer.train(tiny_dataset.train)
    store.save(network, trainer.optimizer)
    trainer.train(tiny_dataset.train)
    store.save(network, trainer.optimizer)
    return store


def test_hot_swap_is_incremental_and_bitwise_equal_to_cold_load(
    trained_store, tiny_dataset
):
    v1, v2 = trained_store.versions()
    resident = load_checkpoint(v1, load_optimizer=False).network
    engine = SparseInferenceEngine(resident, active_budget=32)
    incoming = load_checkpoint(v2, load_optimizer=False).network

    report = engine.hot_swap(incoming, version=v2.name)
    assert not report.full_rebuild
    assert report.changed_rows > 0
    assert report.update_items > 0
    assert report.version == v2.name
    assert engine.generation == 2  # settled (even) after one swap

    cold = SparseInferenceEngine(
        load_checkpoint(v2, load_optimizer=False).network, active_budget=32
    )
    examples = [tiny_dataset.test[i] for i in range(len(tiny_dataset.test))]
    swapped_preds = engine.predict_batch(examples, k=5)
    cold_preds = cold.predict_batch(examples, k=5)
    for swapped, fresh in zip(swapped_preds, cold_preds):
        assert np.array_equal(swapped.class_ids, fresh.class_ids)
        # Bitwise: identical weights + identical candidate sets must give
        # identical float scores, not merely close ones.
        assert np.array_equal(swapped.scores, fresh.scores)
        assert swapped.mode == fresh.mode


def test_hot_swap_rejects_shape_mismatch(trained_store, tiny_dataset):
    resident = load_checkpoint(trained_store.versions()[0], load_optimizer=False)
    engine = SparseInferenceEngine(resident.network, active_budget=32)
    other = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim,
            layers=(
                LayerConfig(size=16, activation="relu", lsh=None),
                LayerConfig(
                    size=tiny_dataset.config.label_dim,
                    activation="softmax",
                    lsh=None,
                ),
            ),
            seed=1,
        )
    )
    with pytest.raises(ValueError, match="shape mismatch"):
        engine.hot_swap(other)


def test_watcher_poll_once_swaps_and_records(trained_store):
    v1, v2 = trained_store.versions()
    engine = SparseInferenceEngine(
        load_checkpoint(v1, load_optimizer=False).network, active_budget=32
    )
    metrics = ServingMetrics()
    watcher = CheckpointWatcher(
        trained_store, engine, metrics=metrics, current_version=v1.name
    )
    report = watcher.poll_once()
    assert report is not None and report.version == v2.name
    assert watcher.current_version == v2.name
    # Idempotent: already current → no swap.
    assert watcher.poll_once() is None
    assert metrics.reloads == 1
    assert metrics.incremental_reloads() == 1
    records = metrics.reload_records()
    assert records[-1]["version"] == v2.name
    assert records[-1]["full_rebuild"] is False


def test_watcher_quarantines_persistently_bad_version(trained_store, tiny_dataset):
    from repro.faults import tear_checkpoint

    v1, v2 = trained_store.versions()
    network = load_checkpoint(v1, load_optimizer=False).network
    engine = SparseInferenceEngine(network, active_budget=32)
    metrics = ServingMetrics()
    tear_checkpoint(v2)
    watcher = CheckpointWatcher(
        trained_store,
        engine,
        metrics=metrics,
        current_version=v1.name,
        max_load_attempts=2,
        retry_backoff_s=0.0,
    )
    # Two failed attempts (counted by cause), then the version is
    # quarantined: further polls stop retrying it entirely.
    assert watcher.poll_once() is None
    assert watcher.poll_once() is None
    assert watcher.poll_once() is None
    assert metrics.reload_failures == 2
    assert metrics.reload_failures_by_cause == {"corrupt": 2}
    assert v2.name in watcher.quarantined_versions
    assert watcher.current_version == v1.name
    assert metrics.snapshot()["reload_failures_by_cause"] == {"corrupt": 2.0}

    # A bad publish never wedges the watcher: the next good version still
    # swaps in even though the previous one is quarantined.
    v3 = trained_store.save(load_checkpoint(v1, load_optimizer=False).network)
    report = watcher.poll_once()
    assert report is not None and report.version == v3.name
    assert watcher.current_version == v3.name
    assert metrics.reloads == 1


def test_watcher_backoff_spaces_out_retries(trained_store):
    from repro.faults import tear_checkpoint

    v1, v2 = trained_store.versions()
    engine = SparseInferenceEngine(
        load_checkpoint(v1, load_optimizer=False).network, active_budget=32
    )
    metrics = ServingMetrics()
    tear_checkpoint(v2)
    watcher = CheckpointWatcher(
        trained_store,
        engine,
        metrics=metrics,
        current_version=v1.name,
        max_load_attempts=3,
        retry_backoff_s=30.0,
    )
    assert watcher.poll_once() is None
    # The immediate re-poll lands inside the backoff window: the torn
    # payload is NOT re-read (and re-hashed) on every poll.
    assert watcher.poll_once() is None
    assert metrics.reload_failures == 1
    assert v2.name not in watcher.quarantined_versions


def test_watcher_counts_shape_mismatch_by_cause(trained_store, tiny_dataset):
    v1, _ = trained_store.versions()
    engine = SparseInferenceEngine(
        load_checkpoint(v1, load_optimizer=False).network, active_budget=32
    )
    metrics = ServingMetrics()
    other = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim,
            layers=(
                LayerConfig(size=16, activation="relu", lsh=None),
                LayerConfig(
                    size=tiny_dataset.config.label_dim,
                    activation="softmax",
                    lsh=None,
                ),
            ),
            seed=1,
        )
    )
    bad = trained_store.save(other)  # intact checkpoint, wrong architecture
    watcher = CheckpointWatcher(
        trained_store,
        engine,
        metrics=metrics,
        current_version=v1.name,
        max_load_attempts=1,
        retry_backoff_s=0.0,
    )
    assert watcher.poll_once() is None
    assert metrics.reload_failures_by_cause == {"shape_mismatch": 1}
    assert bad.name in watcher.quarantined_versions


# ----------------------------------------------------------------------
# Checkpoint retention
# ----------------------------------------------------------------------
def test_store_prune_keeps_newest_and_respects_pins(tmp_path, tiny_dataset):
    network = _make_network(tiny_dataset)
    store = CheckpointStore(tmp_path / "store")
    for _ in range(5):
        store.save(network)
    versions = store.versions()
    assert len(versions) == 5
    pinned = versions[0]
    with store.pin(pinned):
        removed = store.prune(keep_last=2)
        kept = {v.name for v in store.versions()}
        # Oldest is pinned → survives; the next two oldest go.
        assert pinned.name in kept
        assert len(removed) == 2
        assert {v.name for v in versions[-2:]} <= kept
    # Pin released → next prune collects it.
    removed = store.prune(keep_last=2)
    assert pinned in removed
    assert len(store.versions()) == 2


def test_store_save_auto_prunes(tmp_path, tiny_dataset):
    network = _make_network(tiny_dataset)
    store = CheckpointStore(tmp_path / "store")
    for _ in range(4):
        store.save(network, keep_last=2)
    names = [v.name for v in store.versions()]
    assert names == ["v0003", "v0004"]
    with pytest.raises(ValueError):
        store.prune(keep_last=0)
    with pytest.raises(ValueError):
        store.save(network, keep_last=0)


# ----------------------------------------------------------------------
# Elastic pool + autoscaler
# ----------------------------------------------------------------------
def test_elastic_pool_resizes_while_serving(tiny_dataset):
    engine = DenseInferenceEngine(_make_network(tiny_dataset))
    metrics = ServingMetrics()
    queue = MicroBatchQueue(max_batch_size=8, max_wait_ms=1.0, capacity=256)
    pool = ElasticEnginePool(engine, queue, metrics, num_workers=1)
    pool.start()
    try:
        assert pool.num_workers == 1
        assert pool.resize(3) == 3
        deadline = time.monotonic() + 2.0
        while pool.alive_workers() < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.alive_workers() == 3
        futures = [queue.submit(tiny_dataset.test[i % 8], k=1) for i in range(40)]
        for future in futures:
            assert future.result(timeout=30.0).class_ids.shape == (1,)
        assert pool.resize(1) == 1
        deadline = time.monotonic() + 2.0
        while pool.alive_workers() > 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.num_workers == 1
        # The survivor still serves.
        assert queue.submit(tiny_dataset.test[0], k=1).result(timeout=10.0)
    finally:
        pool.stop()


def test_autoscaler_hysteresis_and_cooldown():
    config = ServingConfig(
        autoscale=True,
        num_workers=1,
        min_workers=1,
        max_workers=4,
        autoscale_up_patience=2,
        autoscale_down_patience=3,
        autoscale_cooldown_s=10.0,
        target_p99_ms=50.0,
        autoscale_queue_per_worker=4.0,
    )
    controller = AutoscaleController(None, None, None, config)  # type: ignore[arg-type]
    # One overloaded sample is not enough (patience=2).
    assert controller.evaluate(100.0, 0, workers=1, now=0.0) == 1
    assert controller.evaluate(100.0, 0, workers=1, now=1.0) == 2
    # Cooldown: still overloaded, but the last action was at t=1.
    assert controller.evaluate(100.0, 0, workers=2, now=2.0) == 2
    assert controller.evaluate(100.0, 0, workers=2, now=3.0) == 2
    # Cooldown expired → the accumulated votes act.
    assert controller.evaluate(100.0, 0, workers=2, now=12.0) == 3
    # Queue depth alone also counts as overload (> 4 × workers).
    controller2 = AutoscaleController(None, None, None, config)  # type: ignore[arg-type]
    assert controller2.evaluate(1.0, 50, workers=3, now=0.0) == 3
    assert controller2.evaluate(1.0, 50, workers=3, now=1.0) == 4
    # Scale down needs 3 consecutive idle samples and never goes below min.
    controller3 = AutoscaleController(None, None, None, config)  # type: ignore[arg-type]
    assert controller3.evaluate(1.0, 0, workers=2, now=0.0) == 2
    assert controller3.evaluate(1.0, 0, workers=2, now=1.0) == 2
    # A busy blip resets the idle streak.
    assert controller3.evaluate(100.0, 0, workers=2, now=2.0) == 2
    assert controller3.evaluate(1.0, 0, workers=2, now=3.0) == 2
    assert controller3.evaluate(1.0, 0, workers=2, now=4.0) == 2
    assert controller3.evaluate(1.0, 0, workers=2, now=5.0) == 1
    assert controller3.evaluate(1.0, 0, workers=1, now=100.0) == 1
    assert controller3.evaluate(1.0, 0, workers=1, now=101.0) == 1
    assert controller3.evaluate(1.0, 0, workers=1, now=102.0) == 1  # min floor


def test_autoscaler_step_resizes_elastic_pool(tiny_dataset):
    engine = DenseInferenceEngine(_make_network(tiny_dataset))
    metrics = ServingMetrics()
    queue = MicroBatchQueue(max_batch_size=8, capacity=256)
    pool = ElasticEnginePool(engine, queue, metrics, num_workers=1)
    config = ServingConfig(
        autoscale=True,
        num_workers=1,
        min_workers=1,
        max_workers=4,
        autoscale_up_patience=1,
        autoscale_down_patience=1,
        autoscale_cooldown_s=0.0,
        target_p99_ms=10.0,
    )
    controller = AutoscaleController(pool, queue, metrics, config)
    pool.start()
    try:
        # Saturate the latency window well past target p99.
        for _ in range(50):
            metrics.record_request(0.5, mode="dense")
        record = controller.step()
        assert record["workers_after"] == 2.0
        assert pool.num_workers == 2
        # Window was drained by step(); an idle window scales back down.
        record = controller.step()
        assert record["workers_after"] == 1.0
        assert controller.history[-1] == record
    finally:
        pool.stop()


# ----------------------------------------------------------------------
# Strict config loading
# ----------------------------------------------------------------------
def test_serving_config_from_dict_names_bad_fields():
    with pytest.raises(ValueError, match="'workerz'"):
        serving_config_from_dict({"workerz": 3})
    with pytest.raises(ValueError, match="'top_k'"):
        serving_config_from_dict({"top_k": "five"})
    with pytest.raises(ValueError, match="'autoscale'"):
        serving_config_from_dict({"autoscale": "yes"})
    with pytest.raises(ValueError, match="num_workers"):
        serving_config_from_dict({"num_workers": -1})
    config = serving_config_from_dict(
        {"deadline_ms": 25, "admission_policy": "shed", "autoscale": True}
    )
    assert config.deadline_ms == 25.0
    assert config.autoscale is True


def test_load_serving_config_file(tmp_path):
    path = tmp_path / "serving.json"
    path.write_text(json.dumps({"num_workers": 3, "deadline_ms": 40}))
    config = load_serving_config(path)
    assert config.num_workers == 3 and config.deadline_ms == 40.0
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        load_serving_config(path)
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_serving_config(path)


def test_cli_rejects_bad_config_naming_field(tmp_path, tiny_dataset, capsys):
    network = _make_network(tiny_dataset)
    store = CheckpointStore(tmp_path / "store")
    store.save(network)
    bad = tmp_path / "serving.json"
    bad.write_text(json.dumps({"workerz": 3}))
    code = serve_main([str(tmp_path / "store"), "--config", str(bad)])
    assert code == 2
    assert "workerz" in capsys.readouterr().err


def test_cli_watch_requires_store_root(tmp_path, tiny_dataset, capsys):
    from repro.serving import save_checkpoint

    network = _make_network(tiny_dataset)
    ckpt = tmp_path / "ckpt"
    save_checkpoint(ckpt, network)
    code = serve_main([str(ckpt), "--watch"])
    assert code == 2
    assert "CheckpointStore root" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Integration: hot reload under live traffic
# ----------------------------------------------------------------------
def test_online_runtime_reload_under_live_traffic(tmp_path, tiny_dataset):
    """The acceptance scenario: ≥2 swaps under load, zero failed non-shed
    requests, every swap through the incremental LSH path."""
    network = _make_network(tiny_dataset)
    trainer = _make_trainer(network)
    store = CheckpointStore(tmp_path / "store")
    trainer.train(tiny_dataset.train)
    store.save(network, trainer.optimizer, keep_last=3)

    config = ServingConfig(
        engine="sparse",
        active_budget=32,
        top_k=1,
        num_workers=2,
        queue_capacity=512,
        admission_policy="shed",
        reload_poll_s=60.0,  # polled synchronously below — no thread races
    )
    runtime = OnlineRuntime(store, config)
    assert isinstance(runtime.pool, ElasticEnginePool)
    runtime.start()
    try:
        examples = [tiny_dataset.test[i] for i in range(len(tiny_dataset.test))]
        reports = []

        def client():
            reports.append(
                run_open_loop(runtime, examples, qps=120.0, duration_s=1.5, k=1)
            )

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        for _ in range(2):  # publish two new checkpoints mid-traffic
            time.sleep(0.35)
            trainer.train(tiny_dataset.train)
            store.save(network, trainer.optimizer, keep_last=3)
            swap = runtime.watcher.poll_once()
            assert swap is not None and not swap.full_rebuild
        thread.join(timeout=60.0)
        assert not thread.is_alive()
    finally:
        runtime.stop()

    report = reports[0]
    assert report.errors == 0, "hot reload must not fail live requests"
    assert report.completed == report.sent
    assert report.completed > 0
    # Both swaps recorded, both incremental.
    assert runtime.metrics.reloads == 2
    assert runtime.metrics.incremental_reloads() == 2
    # Traffic spanned at least two weight generations.
    assert len(report.generations) >= 2
    assert runtime.stats()["checkpoint_version"] == store.latest().name
