"""Tests for the single hash table and the multi-table LSH index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LSHConfig
from repro.lsh.index import LSHIndex, QueryResult
from repro.lsh.policies import FIFOPolicy
from repro.lsh.table import HashTable


def make_table(k=3, cardinality=4, bucket_size=8):
    return HashTable(k=k, code_cardinality=cardinality, bucket_size=bucket_size, policy=FIFOPolicy())


class TestHashTable:
    def test_fingerprint_is_injective_over_code_tuples(self):
        table = make_table(k=3, cardinality=4)
        seen = set()
        for a in range(4):
            for b in range(4):
                for c in range(4):
                    fp = table.fingerprint(np.array([a, b, c]))
                    assert fp not in seen
                    seen.add(fp)

    def test_fingerprint_validates_input(self):
        table = make_table(k=2, cardinality=2)
        with pytest.raises(ValueError):
            table.fingerprint(np.array([0, 1, 1]))
        with pytest.raises(ValueError):
            table.fingerprint(np.array([0, 5]))

    def test_insert_and_query(self):
        table = make_table()
        codes = np.array([1, 2, 3])
        table.insert(codes, 42)
        np.testing.assert_array_equal(table.query(codes), [42])
        assert table.query(np.array([0, 0, 0])).size == 0

    def test_remove(self):
        table = make_table()
        codes = np.array([1, 1, 1])
        table.insert(codes, 5)
        assert table.remove(codes, 5)
        assert not table.remove(codes, 5)
        assert table.num_buckets == 0

    def test_counters_and_load_factor(self):
        table = make_table(bucket_size=4)
        for item in range(3):
            table.insert(np.array([0, 0, 0]), item)
        assert table.num_buckets == 1
        assert table.num_items == 3
        assert table.load_factor() == pytest.approx(0.75)
        assert table.bucket_sizes().tolist() == [3]

    def test_clear(self):
        table = make_table()
        table.insert(np.array([1, 0, 2]), 1)
        table.clear()
        assert table.num_buckets == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HashTable(k=0, code_cardinality=2, bucket_size=4, policy=FIFOPolicy())
        with pytest.raises(ValueError):
            HashTable(k=2, code_cardinality=1, bucket_size=4, policy=FIFOPolicy())
        with pytest.raises(ValueError):
            HashTable(k=2, code_cardinality=2, bucket_size=0, policy=FIFOPolicy())


class TestQueryResult:
    def test_union_and_frequencies(self):
        result = QueryResult(buckets=[np.array([1, 2]), np.array([2, 3]), np.array([], dtype=np.int64)])
        np.testing.assert_array_equal(result.union(), [1, 2, 3])
        ids, counts = result.frequencies()
        np.testing.assert_array_equal(ids, [1, 2, 3])
        np.testing.assert_array_equal(counts, [1, 2, 1])
        assert result.total_candidates == 4

    def test_empty_result(self):
        result = QueryResult()
        assert result.union().size == 0
        ids, counts = result.frequencies()
        assert ids.size == 0 and counts.size == 0


class TestLSHIndex:
    @pytest.fixture
    def index(self) -> LSHIndex:
        config = LSHConfig(hash_family="simhash", k=4, l=12, bucket_size=16)
        return LSHIndex(input_dim=32, config=config, seed=0)

    def test_build_and_stats(self, index, rng):
        weights = rng.normal(size=(50, 32))
        index.build(weights)
        stats = index.stats()
        assert stats["indexed_items"] == 50
        assert stats["tables"] == 12
        assert index.num_items == 50

    def test_query_retrieves_similar_item(self, index, rng):
        weights = rng.normal(size=(100, 32))
        index.build(weights)
        # Querying with (a noisy copy of) an indexed vector should retrieve it
        # from at least one bucket.
        target = 17
        query = weights[target] + 0.01 * rng.normal(size=32)
        result = index.query(query)
        assert target in result.union()

    def test_query_with_codes_matches_query(self, index, rng):
        weights = rng.normal(size=(30, 32))
        index.build(weights)
        query = rng.normal(size=32)
        codes = index.hash_family.hash_vector(query)
        a = index.query(query).union()
        b = index.query_with_codes(codes).union()
        np.testing.assert_array_equal(a, b)

    def test_query_with_codes_validates_shape(self, index):
        with pytest.raises(ValueError):
            index.query_with_codes(np.zeros((2, 2), dtype=np.int64))

    def test_max_tables_limits_probes(self, index, rng):
        weights = rng.normal(size=(40, 32))
        index.build(weights)
        result = index.query(rng.normal(size=32), max_tables=3)
        assert len(result.buckets) == 3

    def test_update_rehashes_items(self, index, rng):
        weights = rng.normal(size=(20, 32))
        index.build(weights)
        # Move item 0 to a completely different weight vector and update.
        new_weights = weights.copy()
        new_weights[0] = -weights[0] + rng.normal(size=32)
        index.update(np.array([0]), new_weights[:1])
        assert index.num_items == 20
        # The item should now be retrievable by its new vector.
        result = index.query(new_weights[0])
        assert 0 in result.union()

    def test_remove(self, index, rng):
        weights = rng.normal(size=(10, 32))
        index.build(weights)
        assert index.remove(3)
        assert not index.remove(3)
        assert index.num_items == 9

    def test_insert_same_item_twice_keeps_single_entry_per_table(self, index, rng):
        vector = rng.normal(size=32)
        index.insert(7, vector)
        index.insert(7, vector + 0.001)
        assert index.num_items == 1
        # Each table should hold item 7 exactly once, under its latest codes.
        codes = index.item_codes(7)
        for table_idx, table in enumerate(index.tables):
            assert int((table.query(codes[table_idx]) == 7).sum()) == 1
            assert table.num_items == 1

    def test_build_validates_shapes(self, index, rng):
        with pytest.raises(ValueError):
            index.build(rng.normal(size=(5, 16)))
        with pytest.raises(ValueError):
            index.build(rng.normal(size=(5, 32)), item_ids=np.arange(4))

    def test_clear(self, index, rng):
        index.build(rng.normal(size=(10, 32)))
        index.clear()
        assert index.num_items == 0
        assert all(t.num_items == 0 for t in index.tables)

    def test_recall_beats_random_guessing(self, rng):
        """Nearest-neighbour recall of the LSH index must far exceed the
        fraction of the dataset a random bucket of the same size would give."""
        config = LSHConfig(hash_family="simhash", k=6, l=30, bucket_size=32)
        index = LSHIndex(input_dim=24, config=config, seed=1)
        n = 400
        weights = rng.normal(size=(n, 24))
        index.build(weights)
        hits = 0
        probes = 40
        total_candidates = 0
        for trial in range(probes):
            target = int(rng.integers(0, n))
            query = weights[target] + 0.05 * rng.normal(size=24)
            union = index.query(query).union()
            total_candidates += union.size
            hits += int(target in union)
        recall = hits / probes
        candidate_fraction = total_candidates / (probes * n)
        assert recall > 0.8
        assert recall > candidate_fraction * 2


@given(seed=st.integers(0, 200), n_items=st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_index_build_indexes_every_item(seed, n_items):
    rng = np.random.default_rng(seed)
    config = LSHConfig(hash_family="simhash", k=3, l=5, bucket_size=64)
    index = LSHIndex(input_dim=16, config=config, seed=seed)
    index.build(rng.normal(size=(n_items, 16)))
    assert index.num_items == n_items
    # Every item must be present in every table (buckets are large enough).
    for table in index.tables:
        assert table.num_items == n_items
