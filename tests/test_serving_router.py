"""Multi-replica router: breakers, health, failover, retries, degradation."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    RouterConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
)
from repro.core.network import SlideNetwork
from repro.faults import (
    InjectedFault,
    ServingFaultPlan,
    ServingFaultSpec,
)
from repro.serving import (
    CheckpointStore,
    OnlineRuntime,
    RejectedError,
    ReplicaRouter,
    ReplicaUnavailableError,
    RetriesExhaustedError,
    SparseInferenceEngine,
)
from repro.serving.router import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.types import SparseExample, SparseVector


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _make_network(tiny_dataset, seed: int = 3) -> SlideNetwork:
    lsh = LSHConfig(hash_family="simhash", k=3, l=16, bucket_size=64)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    return SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=seed
        )
    )


def _example(tiny_dataset) -> SparseExample:
    return tiny_dataset.test[0]


@pytest.fixture
def store(tiny_dataset, tmp_path) -> CheckpointStore:
    store = CheckpointStore(tmp_path / "store")
    store.save(_make_network(tiny_dataset))
    return store


def _fast_router_config(**overrides) -> RouterConfig:
    defaults = dict(
        num_replicas=2,
        health_interval_s=0.05,
        probe_timeout_s=0.5,
        retry_backoff_base_s=0.001,
        retry_backoff_max_s=0.01,
        attempt_timeout_s=0.5,
        request_deadline_s=2.0,
    )
    defaults.update(overrides)
    return RouterConfig(**defaults)


def _router(store, **overrides) -> ReplicaRouter:
    return ReplicaRouter(
        store,
        serving_config=ServingConfig(num_workers=1, max_wait_ms=0.5),
        router_config=_fast_router_config(**overrides),
    )


# ----------------------------------------------------------------------
# Circuit breaker state machine (fake clock — no sleeping)
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def _breaker(clock, **overrides) -> CircuitBreaker:
    config = RouterConfig(
        breaker_failure_threshold=3,
        breaker_recovery_s=1.0,
        breaker_half_open_probes=2,
        **overrides,
    )
    return CircuitBreaker(config, now=clock)


def test_breaker_opens_after_consecutive_failures():
    clock = _Clock()
    breaker = _breaker(clock)
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()
    breaker.record_failure()
    # A success resets the streak.
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()


def test_breaker_half_open_probes_close_or_reopen():
    clock = _Clock()
    breaker = _breaker(clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    # Recovery elapses: half-open admits exactly the probe quota.
    clock.t = 1.5
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED

    # Same trip, but a failed probe goes straight back to open and the
    # recovery clock restarts.
    for _ in range(3):
        breaker.record_failure()
    clock.t = 3.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    clock.t = 3.5
    assert not breaker.allow()
    clock.t = 4.1
    assert breaker.allow()


def test_breaker_p99_trip():
    clock = _Clock()
    breaker = _breaker(clock, breaker_p99_ms=10.0, breaker_window=8)
    for _ in range(7):
        breaker.record_success(latency_s=0.001)
    assert breaker.state == BREAKER_CLOSED
    # Window fills with one giant sample: p99 of 8 samples is the max.
    breaker.record_success(latency_s=0.5)
    assert breaker.state == BREAKER_OPEN


def test_breaker_records_transitions():
    clock = _Clock()
    seen: list[tuple[str, str, float]] = []
    config = RouterConfig(breaker_failure_threshold=1, breaker_recovery_s=1.0)
    breaker = CircuitBreaker(
        config, now=clock, on_transition=lambda o, n, t: seen.append((o, n, t))
    )
    breaker.record_failure()
    clock.t = 2.0
    breaker.allow()
    breaker.record_success()
    breaker.record_success()
    assert [(o, n) for o, n, _ in seen] == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
    ]


# ----------------------------------------------------------------------
# Routing, health, failover
# ----------------------------------------------------------------------
def test_predict_stamped_with_replica_and_degradation(store, tiny_dataset):
    with _router(store) as router:
        prediction = router.predict(_example(tiny_dataset), k=5)
        assert prediction.replica in ("r0", "r1")
        assert prediction.degradation == 0
        assert prediction.generation >= 0
        assert router.readiness() == (True, "ok")


def test_kill_one_replica_traffic_fails_over(store, tiny_dataset):
    with _router(store) as router:
        example = _example(tiny_dataset)
        router.predict(example, k=5)
        killed_at = time.monotonic()
        router.kill_replica("r0")
        # Every request after the kill must succeed on the survivor.
        for _ in range(25):
            prediction = router.predict(example, k=5)
            assert prediction.replica == "r1"
        # The health loop notices within ~2 check intervals.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            flips = router.metrics.transitions(kind="live", replica="r0")
            if any(f["new"] is False for f in flips):
                break
            time.sleep(0.02)
        down = [f for f in router.metrics.transitions(kind="live", replica="r0")
                if f["new"] is False]
        assert down, "health checks never marked the killed replica down"
        assert down[0]["at"] - killed_at < 1.0
        assert router.readiness() == (True, "ok")
        assert router.stats()["replicas"]["r0"]["killed"] is True


def test_all_replicas_killed_raises_unavailable(store, tiny_dataset):
    with _router(store) as router:
        router.kill_replica("r0")
        router.kill_replica("r1")
        with pytest.raises(ReplicaUnavailableError):
            router.predict(_example(tiny_dataset), k=5)
        ready, detail = router.readiness()
        assert not ready
        assert "r0" in detail and "r1" in detail


def test_injected_crash_is_retried_on_other_replica(store, tiny_dataset):
    # r0 crashes every predict; retries must land the answer on r1.
    plan = ServingFaultPlan.of(
        ServingFaultSpec("predict_crash", "r0", at_request=0, count=10_000)
    )
    router = ReplicaRouter(
        store,
        serving_config=ServingConfig(num_workers=1, max_wait_ms=0.5),
        router_config=_fast_router_config(breaker_failure_threshold=3),
        fault_plan=plan,
    )
    with router:
        example = _example(tiny_dataset)
        for _ in range(12):
            prediction = router.predict(example, k=5)
            assert prediction.replica == "r1"
        # Enough consecutive crashes tripped r0's breaker open.
        assert router.replica("r0").breaker.state == BREAKER_OPEN
        snapshot = router.metrics.snapshot()
        assert snapshot["attempt_failures"]["r0"]["InjectedFault"] >= 3
        assert router.metrics.failovers >= 1


def test_retries_exhausted_when_every_attempt_fails(store, tiny_dataset):
    plan = ServingFaultPlan.of(
        ServingFaultSpec("predict_crash", "r0", at_request=0, count=10_000),
        ServingFaultSpec("predict_crash", "r1", at_request=0, count=10_000),
    )
    router = ReplicaRouter(
        store,
        serving_config=ServingConfig(num_workers=1, max_wait_ms=0.5),
        router_config=_fast_router_config(
            retry_max_attempts=2, breaker_failure_threshold=50
        ),
        fault_plan=plan,
    )
    with router:
        with pytest.raises(RetriesExhaustedError) as info:
            router.predict(_example(tiny_dataset), k=5)
        assert info.value.attempts == 2
        assert isinstance(info.value.last_error, InjectedFault)


def test_hang_fault_times_out_and_fails_over(store, tiny_dataset):
    # r0's worker sleeps 10s mid-request; the attempt timeout must cut the
    # wait short and the retry must land on r1 well inside the hang.
    plan = ServingFaultPlan.of(
        ServingFaultSpec("predict_hang", "r0", at_request=0, count=10_000,
                         duration_s=10.0)
    )
    router = ReplicaRouter(
        store,
        serving_config=ServingConfig(num_workers=1, max_wait_ms=0.5),
        router_config=_fast_router_config(attempt_timeout_s=0.2),
        fault_plan=plan,
    )
    with router:
        start = time.monotonic()
        prediction = router.predict(_example(tiny_dataset), k=5)
        elapsed = time.monotonic() - start
        assert prediction.replica == "r1"
        assert elapsed < 2.0
        # The hang must have been *detected*, by whichever mechanism fired
        # first: the startup health probe timing out (r0 never becomes
        # live, so no client attempt is wasted on it) or a client attempt
        # hitting its per-attempt timeout.
        failures = router.metrics.snapshot()["attempt_failures"].get("r0", {})
        health = router.replica("r0").health
        assert failures.get("timeout", 0) >= 1 or (
            not health.live and "timed out" in health.detail
        )
    # Teardown note: r0's worker thread is daemon and still sleeping; the
    # non-draining stop in ReplicaRouter.stop() must not wait for it.


def test_checkpoint_load_fault_counts_injected_and_keeps_serving(
    store, tiny_dataset
):
    plan = ServingFaultPlan.of(
        ServingFaultSpec("checkpoint_load_fail", "r0", at_request=0, count=1)
    )
    router = ReplicaRouter(
        store,
        serving_config=ServingConfig(num_workers=1, max_wait_ms=0.5),
        router_config=_fast_router_config(num_replicas=1),
        fault_plan=plan,
    )
    with router:
        runtime = router.replica("r0").runtime
        booted = runtime.watcher.current_version
        # Publish a perfectly good new version; the injector fails the
        # first load attempt, the watcher must count it and keep serving.
        store.save(_make_network(tiny_dataset, seed=9))
        assert runtime.watcher.poll_once() is None
        assert runtime.metrics.reload_failures_by_cause.get("injected") == 1
        assert runtime.watcher.current_version == booted
        router.predict(_example(tiny_dataset), k=5)
        # The fault window is spent; the retry (backoff skipped) succeeds.
        runtime.watcher._retry_at.clear()
        report = runtime.watcher.poll_once()
        assert report is not None
        assert runtime.watcher.current_version != booted


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def test_degradation_ladder_actuates_engines(store, tiny_dataset):
    with _router(store) as router:
        engines = [r.runtime.engine for r in router.replicas]
        assert all(isinstance(e, SparseInferenceEngine) for e in engines)
        base = engines[0].output_dim  # configured budget is None -> full dim
        ladder = router.degradation
        assert ladder.max_level == 4  # two budget steps + norerank + shed

        ladder.set_level(1)
        assert all(e.active_budget == int(base * 0.5) for e in engines)
        assert all(e.rerank for e in engines)
        ladder.set_level(2)
        assert all(e.active_budget == int(base * 0.25) for e in engines)
        ladder.set_level(3)
        assert all(not e.rerank for e in engines)
        prediction = router.predict(_example(tiny_dataset), k=5)
        assert prediction.mode in ("sparse_norerank", "dense_fallback")
        assert prediction.degradation == 3

        ladder.set_level(0)
        assert all(e.active_budget is None for e in engines)
        assert all(e.rerank for e in engines)
        prediction = router.predict(_example(tiny_dataset), k=5)
        assert prediction.degradation == 0
        levels = [
            (t["old"], t["new"])
            for t in router.metrics.transitions(kind="degradation")
        ]
        assert levels == [(0, 1), (1, 2), (2, 3), (3, 0)]


def test_degradation_shed_level_rejects_when_queues_deep(store, tiny_dataset):
    with _router(store) as router:
        router.degradation.set_level(router.degradation.max_level)
        for replica in router.replicas:
            replica.queue_depth = lambda: 50  # type: ignore[method-assign]
        with pytest.raises(RejectedError):
            router.predict(_example(tiny_dataset), k=5)
        assert router.metrics.outcomes.get("shed", 0) == 1


def test_degradation_step_hysteresis(store):
    with _router(
        store, degradation_up_patience=2, degradation_down_patience=3
    ) as router:
        ladder = router.degradation
        overloaded = True
        ladder.overloaded = lambda: overloaded  # type: ignore[method-assign]
        assert ladder.step() == 0  # one vote is not enough
        assert ladder.step() == 1  # up-patience reached, votes reset
        assert ladder.step() == 1
        assert ladder.step() == 2
        overloaded = False
        assert ladder.step() == 2  # down-patience (3) not reached yet
        assert ladder.step() == 2
        assert ladder.step() == 1
        for _ in range(3):
            ladder.step()
        assert ladder.level == 0


# ----------------------------------------------------------------------
# Readiness: staleness and quarantine
# ----------------------------------------------------------------------
def test_readiness_fails_when_checkpoint_stale(store, tiny_dataset, tmp_path):
    runtime = OnlineRuntime(store, ServingConfig(num_workers=1)).start()
    try:
        assert runtime.readiness(max_staleness=0) == (True, "ok")
        # Publish versions the (unstarted-poll) watcher has not loaded.
        store.save(_make_network(tiny_dataset, seed=21))
        assert runtime.checkpoint_lag() >= 1
        ready, detail = runtime.readiness(max_staleness=0)
        assert not ready and "stale" in detail
        # Default readiness (no bound) tolerates lag.
        assert runtime.readiness()[0]
    finally:
        runtime.stop()


def test_readiness_fails_when_only_checkpoints_quarantined(
    store, tiny_dataset
):
    from repro.faults import tear_checkpoint

    runtime = OnlineRuntime(store, ServingConfig(num_workers=1)).start()
    try:
        bad = store.save(_make_network(tiny_dataset, seed=33))
        tear_checkpoint(bad)
        runtime.watcher.max_load_attempts = 1  # quarantine on first failure
        assert runtime.watcher.poll_once() is None
        assert bad.name in runtime.watcher.quarantined_versions
        assert runtime.readiness()[0]  # good v1 still in the store
        store.prune(keep_last=1)  # drops v1, keeps only the torn v2
        ready, detail = runtime.readiness()
        assert not ready
        assert "quarantined" in detail
    finally:
        runtime.stop()


def test_elastic_pool_resize_to_zero_and_back(store, tiny_dataset):
    runtime = OnlineRuntime(store, ServingConfig(num_workers=2)).start()
    try:
        assert runtime.pool.resize(0) == 0
        deadline = time.monotonic() + 5.0
        while runtime.alive_workers() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert runtime.alive_workers() == 0
        assert runtime.readiness() == (False, "no alive workers")
        assert runtime.pool.resize(2) == 2
        assert runtime.readiness() == (True, "ok")
        runtime.predict(_example(tiny_dataset), k=3)
    finally:
        runtime.stop()


# ----------------------------------------------------------------------
# Open-loop load through the router (loadgen attribution)
# ----------------------------------------------------------------------
def test_open_loop_attributes_replicas_and_causes(store, tiny_dataset):
    from repro.serving import run_open_loop

    with _router(store) as router:
        report = run_open_loop(
            router, list(tiny_dataset.test[:16]), qps=80.0, duration_s=0.5, k=3
        )
        assert report.completed > 0
        assert set(report.replicas) <= {"r0", "r1"}
        assert sum(report.replicas.values()) == report.completed
        assert sum(report.degradations.values()) == report.completed
        assert report.errors == 0
        data = report.to_dict()
        assert "failure_causes" in data and "replicas" in data


def test_classify_failure_taxonomy():
    from concurrent.futures import CancelledError as FutureCancelled

    from repro.serving.errors import DeadlineExceededError
    from repro.serving.loadgen import classify_failure

    assert classify_failure(RejectedError(0.1, 5)) == "rejected"
    assert classify_failure(DeadlineExceededError(0.2, 0.1)) == "deadline"
    assert classify_failure(ReplicaUnavailableError()) == "transport"
    assert classify_failure(RetriesExhaustedError(3, None)) == "transport"
    assert classify_failure(FutureCancelled()) == "transport"
    assert classify_failure(RuntimeError("stopped")) == "transport"
    assert classify_failure(ArithmeticError("nan")) == "other"
