"""Micro-batching queue, engine pool, and the checkpoint→serve end-to-end path."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.serving import (
    MicroBatchQueue,
    ServingRuntime,
    SparseInferenceEngine,
    load_checkpoint,
    save_checkpoint,
)


# ----------------------------------------------------------------------
# MicroBatchQueue
# ----------------------------------------------------------------------
def test_queue_batches_up_to_max_size(tiny_dataset):
    queue = MicroBatchQueue(max_batch_size=4, max_wait_ms=50.0)
    futures = [queue.submit(tiny_dataset.test[i]) for i in range(10)]
    assert len(queue.next_batch()) == 4
    assert len(queue.next_batch()) == 4
    assert len(queue.next_batch()) == 2
    assert queue.next_batch(timeout=0.01) == []
    assert all(not f.done() for f in futures)


def test_queue_dispatches_partial_batch_after_deadline(tiny_dataset):
    queue = MicroBatchQueue(max_batch_size=64, max_wait_ms=10.0)
    queue.submit(tiny_dataset.test[0])
    started = time.monotonic()
    batch = queue.next_batch(timeout=1.0)
    waited = time.monotonic() - started
    assert len(batch) == 1
    # Must have given later arrivals the max_wait window, but not blocked
    # unboundedly for a full batch.
    assert waited < 1.0


def test_queue_rejects_submissions_after_close(tiny_dataset):
    queue = MicroBatchQueue()
    queue.close()
    with pytest.raises(RuntimeError, match="closed"):
        queue.submit(tiny_dataset.test[0])


def test_queue_validates_parameters():
    with pytest.raises(ValueError):
        MicroBatchQueue(max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatchQueue(max_wait_ms=-1.0)
    with pytest.raises(ValueError):
        MicroBatchQueue(capacity=0)


# ----------------------------------------------------------------------
# End-to-end: train → checkpoint → load → serve
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_checkpoint(tmp_path_factory, tiny_dataset):
    """Train a small SLIDE network and checkpoint it."""
    lsh = LSHConfig(hash_family="simhash", k=3, l=16, bucket_size=64)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=3
        )
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=16,
            epochs=2,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=11,
        ),
    )
    trainer.train(tiny_dataset.train, tiny_dataset.test)
    path = tmp_path_factory.mktemp("serving") / "ckpt"
    save_checkpoint(path, network, trainer.optimizer, metadata={"purpose": "e2e"})
    return path


def test_end_to_end_checkpoint_microbatch_multiworker(served_checkpoint, tiny_dataset):
    """The acceptance scenario: ≥500 requests, ≥2 workers, sparse ≈ dense."""
    loaded = load_checkpoint(served_checkpoint, load_optimizer=False)
    network = loaded.network
    dense_precision = evaluate_precision_at_1(network, tiny_dataset.test)

    config = ServingConfig(
        engine="sparse",
        active_budget=32,
        top_k=1,
        max_batch_size=16,
        max_wait_ms=2.0,
        num_workers=2,
    )
    num_requests = 520
    examples = [
        tiny_dataset.test[i % len(tiny_dataset.test)] for i in range(num_requests)
    ]
    with ServingRuntime.from_network(network, config) as runtime:
        assert isinstance(runtime.engine, SparseInferenceEngine)
        assert runtime.pool.alive_workers() == 2
        predictions = runtime.predict_many(examples, timeout=120.0)
        stats = runtime.stats()

    assert len(predictions) == num_requests

    # (a) sparse precision@1 within 2 points of the dense forward pass.
    hits = judged = 0
    for example, prediction in zip(examples, predictions):
        if example.labels.size == 0:
            continue
        judged += 1
        hits += int(np.isin(prediction.class_ids[:1], example.labels).any())
    sparse_precision = hits / judged
    assert dense_precision - sparse_precision <= 0.02, (
        f"sparse {sparse_precision:.4f} vs dense {dense_precision:.4f}"
    )

    # (b) latency and throughput metrics are populated.
    assert stats["requests"] == float(num_requests)
    latency = stats["latency_ms"]
    assert latency["p50"] > 0.0
    assert latency["p95"] >= latency["p50"]
    assert stats["latency"]["p99_s"] >= stats["latency"]["p95_s"]
    assert stats["throughput_rps"] > 0.0
    assert stats["batches"] >= num_requests / config.max_batch_size
    assert stats["mean_batch_size"] > 1.0  # micro-batching actually batched
    assert stats["modes"].get("sparse", 0) > 0


def test_runtime_serves_concurrent_submitters(served_checkpoint, tiny_dataset):
    """Many client threads sharing one runtime all get answers."""
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    config = ServingConfig(num_workers=3, max_batch_size=8, max_wait_ms=1.0, top_k=2)
    results: list[int] = []
    lock = threading.Lock()

    with ServingRuntime.from_network(network, config) as runtime:

        def client(offset: int) -> None:
            for i in range(25):
                example = tiny_dataset.test[(offset + i) % len(tiny_dataset.test)]
                prediction = runtime.predict(example, timeout=30.0)
                with lock:
                    results.append(prediction.class_ids.shape[0])

        threads = [threading.Thread(target=client, args=(i * 7,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert len(results) == 100
    assert all(size == 2 for size in results)


def test_runtime_mixed_k_requests(served_checkpoint, tiny_dataset):
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    config = ServingConfig(num_workers=2, max_batch_size=8, max_wait_ms=5.0)
    with ServingRuntime.from_network(network, config) as runtime:
        futures = [
            runtime.submit(tiny_dataset.test[i % len(tiny_dataset.test)], k=(i % 3) + 1)
            for i in range(30)
        ]
        for i, future in enumerate(futures):
            prediction = future.result(timeout=30.0)
            assert prediction.class_ids.shape == ((i % 3) + 1,)


def test_runtime_rejects_non_positive_k(served_checkpoint, tiny_dataset):
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    with ServingRuntime.from_network(network, ServingConfig(num_workers=1)) as runtime:
        # An explicit k=0 must fail fast, not silently become top_k.
        with pytest.raises(ValueError, match="k must be positive"):
            runtime.submit(tiny_dataset.test[0], k=0)
        with pytest.raises(ValueError, match="k must be positive"):
            runtime.submit(tiny_dataset.test[0], k=-1)


def test_runtime_stop_drains_queue(served_checkpoint, tiny_dataset):
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    config = ServingConfig(num_workers=2, max_batch_size=4, max_wait_ms=1.0, top_k=1)
    runtime = ServingRuntime.from_network(network, config).start()
    futures = [runtime.submit(tiny_dataset.test[i % 16]) for i in range(64)]
    runtime.stop(drain=True)
    assert all(future.done() for future in futures)
    assert runtime.metrics.requests == 64


def test_runtime_submit_before_start_fails_fast(served_checkpoint, tiny_dataset):
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    runtime = ServingRuntime.from_network(network, ServingConfig(num_workers=1))
    with pytest.raises(RuntimeError, match="not started"):
        runtime.submit(tiny_dataset.test[0])


def test_runtime_stop_without_drain_cancels_pending(served_checkpoint, tiny_dataset):
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    # One worker with a long batching window: requests pile up in the queue.
    config = ServingConfig(num_workers=1, max_batch_size=64, max_wait_ms=500.0)
    runtime = ServingRuntime.from_network(network, config).start()
    futures = [runtime.submit(tiny_dataset.test[i % 16]) for i in range(32)]
    runtime.stop(drain=False)
    # Every future is settled — served, or cancelled — never left hanging.
    assert all(future.done() or future.cancelled() for future in futures)


def test_runtime_cannot_restart_after_stop(served_checkpoint):
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    runtime = ServingRuntime.from_network(network, ServingConfig(num_workers=1))
    runtime.start()
    runtime.stop()
    with pytest.raises(RuntimeError, match="cannot be restarted"):
        runtime.start()


def test_runtime_stop_transitions_even_when_pool_stop_raises(
    served_checkpoint, tiny_dataset, monkeypatch
):
    """Regression: WorkerPool.join re-raises crashed-worker exceptions, so
    pool.stop() can raise — the runtime must still reach the stopped state
    instead of keeping submit() open with no workers behind it."""
    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    runtime = ServingRuntime.from_network(network, ServingConfig(num_workers=1))
    runtime.start()

    real_stop = runtime.pool.stop

    def crashing_stop(drain=True):
        real_stop(drain=drain)
        raise RuntimeError("worker loop crashed")

    monkeypatch.setattr(runtime.pool, "stop", crashing_stop)
    with pytest.raises(RuntimeError, match="worker loop crashed"):
        runtime.stop()
    # The crash surfaced AND the runtime transitioned: no new submissions.
    with pytest.raises(RuntimeError, match="not started"):
        runtime.submit(tiny_dataset.test[0])
    with pytest.raises(RuntimeError, match="cannot be restarted"):
        runtime.start()


def test_runtime_rejects_wrong_dimension_example(served_checkpoint):
    import numpy as np

    from repro.types import SparseExample, SparseVector

    network = load_checkpoint(served_checkpoint, load_optimizer=False).network
    wrong = SparseExample(
        features=SparseVector(
            indices=np.array([0]), values=np.array([1.0]), dimension=3
        ),
        labels=np.zeros(0, dtype=np.int64),
    )
    with ServingRuntime.from_network(network, ServingConfig(num_workers=1)) as runtime:
        with pytest.raises(ValueError, match="input_dim"):
            runtime.submit(wrong)


def test_runtime_dense_engine_fallback_for_non_lsh_network(tiny_dataset):
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim,
            layers=(
                LayerConfig(size=16, activation="relu"),
                LayerConfig(size=tiny_dataset.config.label_dim, activation="softmax"),
            ),
            seed=0,
        )
    )
    config = ServingConfig(engine="sparse", num_workers=1)
    with ServingRuntime.from_network(network, config) as runtime:
        assert runtime.engine.name == "dense"
        prediction = runtime.predict(tiny_dataset.test[0], k=3)
    assert prediction.mode == "dense"
