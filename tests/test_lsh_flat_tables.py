"""Equivalence and regression tests for the flat array-backed LSH tables.

Pins four contracts of the PR-3 storage refactor:

1. **Batched ≡ per-item** — building tables through the batched
   ``insert_many`` path produces the same buckets as the sequential
   per-item scalar path (exactly for FIFO, and for reservoir wherever no
   bucket overflows), across SimHash / DWTA / DOPH and both policies.
2. **Code-diff ``update`` ≡ full ``build``** — after an incremental update
   the index answers queries exactly like an index built from scratch over
   the new weights, stale entries are gone, and untouched rows never move.
3. **Snapshot round-trip** — ``snapshot_codes``/``restore_codes`` reproduce
   bucket membership on the flat layout.
4. **Batched fingerprints** — ``fingerprint_many`` returns int64 arrays,
   agrees with the scalar path, and stays batched (chunked pack-and-mix)
   for over-wide radixes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LSHConfig
from repro.lsh.bucket import FlatBuckets
from repro.lsh.index import LSHIndex
from repro.lsh.policies import FIFOPolicy, ReservoirPolicy
from repro.lsh.table import HashTable

FAMILIES = ["simhash", "dwta", "doph"]
POLICIES = ["fifo", "reservoir"]


def make_index(family: str, policy: str, dim: int = 24, **overrides) -> LSHIndex:
    params = dict(hash_family=family, k=3, l=6, bucket_size=256, insertion_policy=policy)
    params.update(overrides)
    return LSHIndex(input_dim=dim, config=LSHConfig(**params), seed=3)


def table_contents(table: HashTable) -> dict[int, np.ndarray]:
    """Bucket contents keyed by fingerprint (sorted ids per bucket)."""
    contents = {}
    for key, row in zip(table._keys, table._key_rows):
        bucket = table._flat.contents(int(row))
        if bucket.size:
            contents[int(key)] = np.sort(bucket)
    return contents


def assert_same_tables(index_a: LSHIndex, index_b: LSHIndex) -> None:
    for table_a, table_b in zip(index_a.tables, index_b.tables):
        contents_a = table_contents(table_a)
        contents_b = table_contents(table_b)
        assert contents_a.keys() == contents_b.keys()
        for key in contents_a:
            np.testing.assert_array_equal(contents_a[key], contents_b[key])


# ----------------------------------------------------------------------
# 1. Batched vs per-item equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("policy", POLICIES)
def test_batched_build_matches_per_item_inserts(rng, family, policy):
    """With buckets large enough to never overflow, the batched ``build``
    stores exactly what the sequential scalar inserts store — for every hash
    family and both replacement policies (reservoir appends
    deterministically below capacity)."""
    dim, n = 24, 80
    weights = rng.normal(size=(n, dim))
    weights[rng.random(size=weights.shape) < 0.5] = 0.0  # sparse-ish rows

    batched = make_index(family, policy, dim=dim)
    batched.build(weights)

    per_item = make_index(family, policy, dim=dim)
    for item in range(n):
        per_item.insert(item, weights[item])

    assert batched.num_items == per_item.num_items == n
    assert_same_tables(batched, per_item)
    # Query parity on top of storage parity.
    for query in rng.normal(size=(10, dim)):
        np.testing.assert_array_equal(
            batched.query(query).union(), per_item.query(query).union()
        )


@pytest.mark.parametrize("policy", POLICIES)
def test_query_batch_flat_matches_scalar_queries(rng, policy):
    index = make_index("simhash", policy)
    index.build(rng.normal(size=(70, 24)))
    queries = rng.normal(size=(9, 24))
    flat = index.query_batch_flat(queries)
    assert flat.candidates.shape == (9, index.l, index.config.bucket_size)
    for row in range(queries.shape[0]):
        single = index.query(queries[row])
        view = flat.result(row)
        for got, expected in zip(view.buckets, single.buckets):
            np.testing.assert_array_equal(got, expected)
        ids, counts = flat.frequencies(row)
        ids_expected, counts_expected = single.frequencies()
        np.testing.assert_array_equal(ids, ids_expected)
        np.testing.assert_array_equal(counts, counts_expected)
        np.testing.assert_array_equal(flat.union(row), single.union())


def test_fifo_overflow_batched_matches_sequential_exactly(rng):
    """FIFO keeps the newest ``capacity`` arrivals; the batched kernel must
    reproduce the sequential result slot-for-slot, including order."""
    for trial in range(5):
        keys = rng.integers(0, 5, size=60).astype(np.int64)
        items = np.arange(60, dtype=np.int64)

        scalar = HashTable(k=1, code_cardinality=5, bucket_size=4, policy=FIFOPolicy())
        for key, item in zip(keys, items):
            scalar.insert_fingerprint(int(key), int(item))

        batched = HashTable(k=1, code_cardinality=5, bucket_size=4, policy=FIFOPolicy())
        stored = batched.insert_many(keys, items)
        assert stored == 60

        for key in np.unique(keys):
            np.testing.assert_array_equal(
                batched.query_fingerprint(int(key)),
                scalar.query_fingerprint(int(key)),
            )
        assert batched.num_items == scalar.num_items
        assert batched.num_buckets == scalar.num_buckets


def test_fifo_batched_mixed_with_scalar_inserts(rng):
    """Scalar and batched mutations interleave on the same table."""
    table = HashTable(k=1, code_cardinality=3, bucket_size=3, policy=FIFOPolicy())
    table.insert_fingerprint(0, 1)
    table.insert_fingerprint(0, 2)
    table.insert_many(np.zeros(3, dtype=np.int64), np.array([3, 4, 5]))
    # Capacity 3, newest win: 3, 4, 5.
    np.testing.assert_array_equal(table.query_fingerprint(0), [3, 4, 5])
    table.insert_fingerprint(0, 6)
    np.testing.assert_array_equal(table.query_fingerprint(0), [4, 5, 6])


def test_reservoir_overflow_bookkeeping_matches_sequential(rng):
    """Under overflow the reservoir draws differ between the scalar and
    batched paths, but the policy bookkeeping (sizes, seen counts, stored ⊆
    inserted, stored + rejected = attempts) must agree exactly."""
    keys = rng.integers(0, 4, size=120).astype(np.int64)
    items = np.arange(120, dtype=np.int64)

    def build(batched: bool) -> HashTable:
        table = HashTable(
            k=1,
            code_cardinality=4,
            bucket_size=8,
            policy=ReservoirPolicy(rng=np.random.default_rng(7)),
        )
        if batched:
            table.insert_many(keys, items)
        else:
            for key, item in zip(keys, items):
                table.insert_fingerprint(int(key), int(item))
        return table

    scalar, batched = build(batched=False), build(batched=True)
    assert batched.num_items == scalar.num_items
    assert batched.num_buckets == scalar.num_buckets
    flat_s, flat_b = scalar._flat, batched._flat
    for key in np.unique(keys):
        row_s = scalar._row_of_scalar(int(key))
        row_b = batched._row_of_scalar(int(key))
        assert flat_b.sizes[row_b] == flat_s.sizes[row_s]
        assert flat_b.seen[row_b] == flat_s.seen[row_s]
        attempts = int((keys == key).sum())
        stored = int(flat_b.sizes[row_b])
        assert set(batched.query_fingerprint(int(key))) <= set(items[keys == key])
        assert flat_b.seen[row_b] == attempts
        assert stored <= min(8, attempts)


@given(
    seed=st.integers(0, 500),
    n=st.integers(1, 80),
    capacity=st.integers(1, 6),
    cardinality=st.integers(2, 5),
)
@settings(max_examples=40, deadline=None)
def test_fifo_batched_equals_sequential_property(seed, n, capacity, cardinality):
    """Property form of the FIFO equivalence over random streams."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, cardinality, size=n).astype(np.int64)
    items = rng.integers(0, 1000, size=n).astype(np.int64)
    scalar = HashTable(
        k=1, code_cardinality=cardinality, bucket_size=capacity, policy=FIFOPolicy()
    )
    for key, item in zip(keys, items):
        scalar.insert_fingerprint(int(key), int(item))
    batched = HashTable(
        k=1, code_cardinality=cardinality, bucket_size=capacity, policy=FIFOPolicy()
    )
    batched.insert_many(keys, items)
    for key in np.unique(keys):
        np.testing.assert_array_equal(
            batched.query_fingerprint(int(key)), scalar.query_fingerprint(int(key))
        )


# ----------------------------------------------------------------------
# 2. Code-diff update ≡ full build
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("policy", POLICIES)
def test_incremental_update_equals_full_build(rng, family, policy):
    """After ``update(dirty)`` the index must answer exactly like a fresh
    ``build`` over the new weights (buckets large enough to never evict):
    moved items are retrievable at their new position, stale entries are
    gone, and every table holds every item exactly once."""
    dim, n = 24, 60
    weights = rng.normal(size=(n, dim))
    index = make_index(family, policy, dim=dim)
    index.build(weights)

    dirty = np.sort(rng.choice(n, size=20, replace=False)).astype(np.int64)
    weights[dirty] = rng.normal(size=(dirty.size, dim)) * 3.0
    index.update(dirty, weights[dirty])

    fresh = make_index(family, policy, dim=dim)
    fresh.build(weights)

    assert index.num_items == n
    for table in index.tables:
        assert table.num_items == n  # no stale duplicates, no losses
    assert_same_tables(index, fresh)
    for query in rng.normal(size=(10, dim)):
        np.testing.assert_array_equal(
            index.query(query).union(), fresh.query(query).union()
        )


def test_update_moves_only_changed_fingerprints(rng):
    """An update whose weights are unchanged must not touch the tables at
    all — no removals, no insertions, no eviction-bookkeeping churn."""
    index = make_index("simhash", "fifo")
    weights = rng.normal(size=(50, 24))
    index.build(weights)
    seen_before = [table._flat.seen[: table._flat.num_rows].copy() for table in index.tables]
    moved_before = index.num_moved_entries

    index.update(np.arange(50, dtype=np.int64), weights)

    assert index.num_moved_entries == moved_before  # zero moves applied
    for table, seen in zip(index.tables, seen_before):
        np.testing.assert_array_equal(table._flat.seen[: table._flat.num_rows], seen)


def test_update_move_count_scales_with_changed_items(rng):
    """Perturbing one neuron moves at most L entries; the rest stay put."""
    index = make_index("simhash", "fifo")
    weights = rng.normal(size=(50, 24))
    index.build(weights)
    weights[7] = -weights[7] * 5.0
    before = index.num_moved_entries
    index.update(np.array([7], dtype=np.int64), weights[7:8])
    moved = index.num_moved_entries - before
    assert 0 < moved <= index.l
    # The moved item is retrievable under its new codes in every table.
    codes = index.item_codes(7)
    for table_idx, table in enumerate(index.tables):
        assert 7 in table.query(codes[table_idx])


def test_update_handles_duplicate_and_unknown_ids(rng):
    index = make_index("simhash", "fifo")
    weights = rng.normal(size=(10, 24))
    index.build(weights)
    # Duplicate ids keep the last occurrence; unknown ids are appended.
    vectors = rng.normal(size=(3, 24))
    index.update(np.array([3, 3, 12]), vectors)
    assert index.num_items == 11
    np.testing.assert_array_equal(
        index.item_codes(3), index.hash_family.hash_matrix(vectors[1:2])[0]
    )
    assert index._row_of[12] == 10


# ----------------------------------------------------------------------
# 3. Snapshot round-trip on the flat layout
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", POLICIES)
def test_snapshot_restore_round_trip(rng, policy):
    index = make_index("dwta", policy)
    weights = rng.normal(size=(40, 24))
    index.build(weights)
    index.remove(11)  # holes in the id space must survive the round trip

    items, codes = index.snapshot_codes()
    assert items.shape == (39,)
    assert codes.shape == (39, index.l, index.k)

    clone = make_index("dwta", policy)
    clone.restore_codes(items, codes)
    assert clone.num_items == 39
    assert_same_tables(index, clone)
    # The restored index keeps working for incremental updates.
    new_vector = rng.normal(size=(1, 24))
    clone.update(np.array([5]), new_vector)
    np.testing.assert_array_equal(
        clone.item_codes(5), clone.hash_family.hash_matrix(new_vector)[0]
    )

    with pytest.raises(ValueError, match="shape"):
        clone.restore_codes(items[:1], codes)
    with pytest.raises(ValueError, match="unique"):
        clone.restore_codes(np.zeros(39, dtype=np.int64), codes)


# ----------------------------------------------------------------------
# 4. Batched fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_many_returns_int64_ndarray(rng):
    table = HashTable(k=4, code_cardinality=8, bucket_size=4, policy=FIFOPolicy())
    codes = rng.integers(0, 8, size=(30, 4))
    packed = table.fingerprint_many(codes)
    assert isinstance(packed, np.ndarray)
    assert packed.dtype == np.int64
    assert table.exact_fingerprints
    np.testing.assert_array_equal(packed, [table.fingerprint(row) for row in codes])
    assert table.fingerprint_many(np.zeros((0, 4), dtype=np.int64)).shape == (0,)


def test_fingerprint_chunked_over_wide_radix(rng):
    """A (cardinality, K) combination that cannot pack into one int64 stays
    batched: chunk-packed and mixed, scalar and batched paths agreeing."""
    table = HashTable(k=80, code_cardinality=2, bucket_size=4, policy=FIFOPolicy())
    assert not table.exact_fingerprints
    codes = rng.integers(0, 2, size=(200, 80))
    packed = table.fingerprint_many(codes)
    assert packed.dtype == np.int64
    np.testing.assert_array_equal(packed, [table.fingerprint(row) for row in codes])
    # 2^80 tuples into 64 bits cannot be injective, but random tuples must
    # essentially never collide if the mix is any good.
    assert np.unique(packed).size == np.unique(codes, axis=0).shape[0]
    # Equal tuples agree, and the table round-trips inserts through it.
    table.insert(codes[0], 42)
    assert 42 in table.query(codes[0])


def test_fingerprint_validates_range():
    table = HashTable(k=2, code_cardinality=3, bucket_size=4, policy=FIFOPolicy())
    with pytest.raises(ValueError, match="range"):
        table.fingerprint_many(np.array([[0, 3]]))
    with pytest.raises(ValueError, match="shape"):
        table.fingerprint_many(np.array([[0, 1, 2]]))


# ----------------------------------------------------------------------
# Flat-storage unit behaviour
# ----------------------------------------------------------------------
class TestFlatStorage:
    def test_insert_many_validates(self):
        table = HashTable(k=1, code_cardinality=4, bucket_size=2, policy=FIFOPolicy())
        with pytest.raises(ValueError, match="equal length"):
            table.insert_many(np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError, match="non-negative"):
            table.insert_many(np.array([1]), np.array([-3]))
        with pytest.raises(ValueError, match="non-negative"):
            table.insert_fingerprint(1, -3)
        assert table.insert_many(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)) == 0

    def test_remove_many_compacts_and_empties(self):
        table = HashTable(k=1, code_cardinality=4, bucket_size=8, policy=FIFOPolicy())
        keys = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        items = np.array([10, 11, 12, 20, 21, 30], dtype=np.int64)
        table.insert_many(keys, items)
        assert table.num_buckets == 3
        removed = table.remove_many(
            np.array([0, 0, 1, 2, 3], dtype=np.int64),
            np.array([10, 12, 99, 30, 1], dtype=np.int64),
        )
        assert removed == 3  # (3, 1) has no bucket, (1, 99) not present
        np.testing.assert_array_equal(table.query_fingerprint(0), [11])
        np.testing.assert_array_equal(table.query_fingerprint(1), [20, 21])
        assert table.query_fingerprint(2).size == 0
        assert table.num_buckets == 2  # the emptied bucket no longer counts
        assert table.num_items == 3

    def test_emptied_buckets_are_reclaimed(self):
        """Emptying a bucket releases its slot row and directory entry, so
        table memory tracks the live bucket count instead of growing with
        every fingerprint ever observed (the code-diff update path churns
        through fingerprints for the whole life of a training run)."""
        table = HashTable(k=1, code_cardinality=256, bucket_size=4, policy=FIFOPolicy())
        for wave in range(50):
            keys = np.arange(8, dtype=np.int64) + 8 * (wave % 2)
            items = np.arange(8, dtype=np.int64)
            table.insert_many(keys, items)
            table.remove_many(keys, items)
            # Scalar removal path reclaims too.
            table.insert_fingerprint(99, 1)
            assert table.remove_fingerprint(99, 1)
        assert table.num_buckets == 0
        assert table.num_items == 0
        # Slot matrix stayed at the high-water mark of *live* buckets.
        assert table._flat.slots.shape[0] <= 32
        assert table._keys.size == 0

    def test_flat_buckets_growth_and_reuse(self):
        store = FlatBuckets(capacity=2)
        rows = store.alloc(3)
        np.testing.assert_array_equal(rows, [0, 1, 2])
        store.slots[0, 0] = 5
        store.sizes[0] = 1
        store.clear()
        rows = store.alloc(1)  # reused row must come back blank
        assert store.sizes[int(rows[0])] == 0
        assert np.all(store.slots[int(rows[0])] == -1)

    def test_index_counters_track_updates(self, rng):
        index = make_index("simhash", "fifo")
        weights = rng.normal(size=(30, 24))
        index.build(weights)
        stats = index.stats()
        assert stats["update_items"] == 0.0
        weights[4] *= -2.0
        index.update(np.array([4]), weights[4:5])
        stats = index.stats()
        assert stats["update_items"] == 1.0
        assert stats["moved_entries"] >= 0.0
