"""Tests for buckets and insertion policies (FIFO / reservoir sampling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh.bucket import Bucket
from repro.lsh.policies import FIFOPolicy, ReservoirPolicy, make_insertion_policy


class TestBucket:
    def test_append_and_contains(self):
        bucket = Bucket(capacity=3)
        bucket.append(7)
        assert 7 in bucket
        assert len(bucket) == 1
        np.testing.assert_array_equal(bucket.items, [7])

    def test_append_beyond_capacity_raises(self):
        bucket = Bucket(capacity=1)
        bucket.append(1)
        with pytest.raises(ValueError, match="full"):
            bucket.append(2)

    def test_replace_tracks_arrival_order(self):
        bucket = Bucket(capacity=2)
        bucket.append(1)
        bucket.append(2)
        assert bucket.oldest_slot() == 0
        bucket.replace(0, 3)
        # Slot 1 (holding 2) is now the oldest.
        assert bucket.oldest_slot() == 1

    def test_replace_out_of_range_raises(self):
        bucket = Bucket(capacity=2)
        bucket.append(1)
        with pytest.raises(IndexError):
            bucket.replace(5, 9)

    def test_remove(self):
        bucket = Bucket(capacity=3)
        bucket.append(1)
        bucket.append(2)
        assert bucket.remove(1)
        assert not bucket.remove(99)
        assert len(bucket) == 1

    def test_clear_resets_counters(self):
        bucket = Bucket(capacity=2)
        bucket.append(1)
        bucket.count_rejection()
        bucket.clear()
        assert len(bucket) == 0
        assert bucket.seen == 0
        assert bucket.rejections == 0

    def test_oldest_slot_on_empty_raises(self):
        with pytest.raises(ValueError):
            Bucket(capacity=2).oldest_slot()

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            Bucket(capacity=0)


class TestFIFOPolicy:
    def test_fills_then_replaces_oldest(self):
        bucket = Bucket(capacity=2)
        policy = FIFOPolicy()
        assert policy.insert(bucket, 1)
        assert policy.insert(bucket, 2)
        assert policy.insert(bucket, 3)  # replaces 1
        items = set(bucket.items.tolist())
        assert items == {2, 3}
        policy.insert(bucket, 4)  # replaces 2
        assert set(bucket.items.tolist()) == {3, 4}

    def test_always_stores(self):
        bucket = Bucket(capacity=1)
        policy = FIFOPolicy()
        for item in range(10):
            assert policy.insert(bucket, item)
        assert bucket.items.tolist() == [9]


class TestReservoirPolicy:
    def test_fills_up_to_capacity(self):
        bucket = Bucket(capacity=4)
        policy = ReservoirPolicy(rng=np.random.default_rng(0))
        for item in range(4):
            assert policy.insert(bucket, item)
        assert len(bucket) == 4

    def test_rejections_are_counted(self):
        bucket = Bucket(capacity=1)
        policy = ReservoirPolicy(rng=np.random.default_rng(1))
        for item in range(200):
            policy.insert(bucket, item)
        assert bucket.rejections > 0
        assert bucket.seen == 200

    def test_reservoir_is_approximately_uniform(self):
        """Each of N streamed items should be retained with probability ~capacity/N."""
        capacity, stream_length, trials = 4, 40, 600
        hits = np.zeros(stream_length)
        rng = np.random.default_rng(7)
        for _ in range(trials):
            bucket = Bucket(capacity=capacity)
            policy = ReservoirPolicy(rng=rng)
            for item in range(stream_length):
                policy.insert(bucket, item)
            hits[bucket.items] += 1
        retention = hits / trials
        expected = capacity / stream_length
        # Uniformity: no item's retention rate strays far from capacity/N.
        assert np.all(np.abs(retention - expected) < 0.08)


class TestPolicyFactory:
    def test_make_by_name(self):
        assert isinstance(make_insertion_policy("fifo"), FIFOPolicy)
        assert isinstance(make_insertion_policy("reservoir"), ReservoirPolicy)
        assert isinstance(make_insertion_policy("FIFO"), FIFOPolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_insertion_policy("lru")


@given(
    capacity=st.integers(min_value=1, max_value=8),
    items=st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_bucket_never_exceeds_capacity_under_any_policy(capacity, items):
    for policy_name in ("fifo", "reservoir"):
        bucket = Bucket(capacity=capacity)
        policy = make_insertion_policy(policy_name, rng=np.random.default_rng(0))
        for item in items:
            policy.insert(bucket, item)
        assert len(bucket) <= capacity
        assert bucket.seen == len(items)
