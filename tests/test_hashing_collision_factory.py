"""Tests for the collision-probability formulas and the hash-family factory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LSHConfig
from repro.hashing import DOPH, DWTAHash, MinHash, SimHash, WTAHash
from repro.hashing.base import LSHFamily
from repro.hashing.collision import (
    hard_threshold_selection_probability,
    meta_collision_probability,
    retrieval_probability,
    simhash_collision_probability,
    vanilla_selection_probability,
)
from repro.hashing.factory import (
    available_hash_families,
    make_hash_family,
    register_hash_family,
)


class TestCollisionFormulas:
    def test_simhash_collision_extremes(self):
        assert simhash_collision_probability(1.0) == pytest.approx(1.0)
        assert simhash_collision_probability(-1.0) == pytest.approx(0.0)
        assert simhash_collision_probability(0.0) == pytest.approx(0.5)

    def test_simhash_collision_monotone(self):
        sims = np.linspace(-1, 1, 21)
        probs = [simhash_collision_probability(s) for s in sims]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_meta_collision_probability(self):
        assert meta_collision_probability(0.5, 3) == pytest.approx(0.125)
        with pytest.raises(ValueError):
            meta_collision_probability(0.5, 0)
        with pytest.raises(ValueError):
            meta_collision_probability(1.5, 2)

    def test_retrieval_probability_bounds_and_monotonicity(self):
        # More tables -> higher retrieval probability.
        assert retrieval_probability(0.5, 2, 10) > retrieval_probability(0.5, 2, 2)
        # More concatenated bits -> lower retrieval probability.
        assert retrieval_probability(0.5, 6, 10) < retrieval_probability(0.5, 2, 10)
        assert 0.0 <= retrieval_probability(0.3, 4, 8) <= 1.0

    def test_vanilla_selection_probability_eqn2(self):
        # tau = L reduces to (p^K)^L.
        p, k, l = 0.6, 2, 4
        assert vanilla_selection_probability(p, k, l, l) == pytest.approx((p**k) ** l)
        # tau = 0 reduces to (1 - p^K)^L.
        assert vanilla_selection_probability(p, k, l, 0) == pytest.approx((1 - p**k) ** l)
        with pytest.raises(ValueError):
            vanilla_selection_probability(p, k, l, l + 1)

    def test_hard_threshold_probability_eqn3(self):
        # m=1 is the standard LSH retrieval probability.
        p, k, l = 0.7, 2, 10
        assert hard_threshold_selection_probability(p, k, l, 1) == pytest.approx(
            retrieval_probability(p, k, l)
        )
        # Probability decreases as the threshold m grows.
        probs = [hard_threshold_selection_probability(p, k, l, m) for m in range(1, l + 1)]
        assert all(b <= a + 1e-12 for a, b in zip(probs, probs[1:]))
        with pytest.raises(ValueError):
            hard_threshold_selection_probability(p, k, l, 0)

    def test_hard_threshold_matches_explicit_binomial_sum(self):
        from math import comb

        p, k, l, m = 0.4, 3, 8, 3
        pk = p**k
        expected = sum(comb(l, i) * pk**i * (1 - pk) ** (l - i) for i in range(m, l + 1))
        assert hard_threshold_selection_probability(p, k, l, m) == pytest.approx(expected)

    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(1, 8),
        l=st.integers(1, 30),
    )
    @settings(max_examples=80, deadline=None)
    def test_probabilities_stay_in_unit_interval(self, p, k, l):
        assert 0.0 <= retrieval_probability(p, k, l) <= 1.0
        assert 0.0 <= hard_threshold_selection_probability(p, k, l, max(1, l // 2)) <= 1.0


class TestFactory:
    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("simhash", SimHash),
            ("wta", WTAHash),
            ("dwta", DWTAHash),
            ("doph", DOPH),
            ("minhash", MinHash),
        ],
    )
    def test_builds_each_family(self, name, expected_type):
        config = LSHConfig(hash_family=name, k=3, l=4)
        family = make_hash_family(32, config, seed=1)
        assert isinstance(family, expected_type)
        assert family.k == 3 and family.l == 4

    def test_unknown_family_raises(self):
        config = LSHConfig(hash_family="simhash", k=2, l=2)
        object.__setattr__(config, "hash_family", "nonexistent")
        with pytest.raises(ValueError, match="unknown hash family"):
            make_hash_family(16, config)

    def test_available_families_lists_builtins(self):
        names = available_hash_families()
        assert {"simhash", "wta", "dwta", "doph", "minhash"}.issubset(set(names))

    def test_register_custom_family(self):
        class ConstantHash(LSHFamily):
            @property
            def code_cardinality(self) -> int:
                return 2

            def hash_vector(self, vector):
                return np.zeros((self.l, self.k), dtype=np.int64)

        register_hash_family(
            "constant-test", lambda dim, cfg, seed: ConstantHash(dim, cfg.k, cfg.l, seed)
        )
        config = LSHConfig(hash_family="simhash", k=2, l=3)
        object.__setattr__(config, "hash_family", "constant-test")
        family = make_hash_family(8, config)
        assert isinstance(family, ConstantHash)
        assert family.hash_vector(np.ones(8)).shape == (3, 2)

    def test_register_invalid_name_raises(self):
        with pytest.raises(ValueError):
            register_hash_family("", lambda *a: None)
