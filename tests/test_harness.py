"""Tests for the report renderer, experiment machinery and figure/table drivers.

These use the smallest possible synthetic scales so the whole module runs in
a few tens of seconds; the benchmark harness exercises the same drivers at a
more meaningful scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticXCConfig
from repro.harness import figures, tables
from repro.harness.experiment import (
    AMAZON_PAPER_DIMS,
    DELICIOUS_PAPER_DIMS,
    ExperimentConfig,
    HeadToHeadExperiment,
    project_run_to_paper_scale,
    small_experiment_config,
)
from repro.harness.report import format_comparison, format_series, format_table
from repro.perf.devices import SLIDE_CPU_PROFILE
from repro.perf.simulator import WallClockSimulator


@pytest.fixture(scope="module")
def micro_config() -> ExperimentConfig:
    """A micro-scale experiment used by every driver test in this module."""
    dataset = SyntheticXCConfig(
        feature_dim=192,
        label_dim=48,
        num_train=96,
        num_test=48,
        avg_features_per_example=16,
        avg_labels_per_example=2.0,
        prototype_nnz=10,
        seed=5,
        name="micro",
    )
    return ExperimentConfig(
        dataset=dataset,
        hidden_dim=24,
        batch_size=16,
        epochs=1,
        eval_every=2,
        eval_samples=48,
        k=3,
        l=10,
        bucket_size=32,
        target_active_fraction=0.2,
        seed=5,
    )


class TestReport:
    def test_format_table_alignment_and_content(self):
        rows = [
            {"name": "a", "value": 1.0},
            {"name": "bbbb", "value": 123456.789},
        ]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "name" in text and "value" in text
        assert "bbbb" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="nothing")

    def test_format_series_downsamples(self):
        xs = np.arange(100)
        ys = np.linspace(0, 1, 100)
        text = format_series("t", "acc", {"run": (xs, ys)}, max_points=5)
        assert text.count("(") == 5

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", "y", {"bad": ([1, 2], [1])})

    def test_format_comparison(self):
        line = format_comparison(2.7, 2.1, "speedup", unit="x")
        assert "paper=2.7" in line and "measured=2.1" in line


class TestExperimentMachinery:
    def test_small_experiment_config_presets(self):
        delicious = small_experiment_config("delicious", scale=1 / 4096)
        amazon = small_experiment_config("amazon", scale=1 / 8192)
        assert delicious.hash_family == "simhash"
        assert amazon.hash_family == "dwta"
        with pytest.raises(ValueError):
            small_experiment_config("imagenet")

    def test_head_to_head_runs_and_projection(self, micro_config):
        experiment = HeadToHeadExperiment(micro_config)
        slide_run = experiment.run_slide()
        dense_run = experiment.run_dense()

        assert slide_run.accuracies.shape == slide_run.iterations.shape
        assert len(slide_run.per_iteration_work) == len(slide_run.iterations)
        assert 0 < slide_run.avg_active_output < micro_config.dataset.label_dim
        assert dense_run.avg_active_output == micro_config.dataset.label_dim

        # SLIDE's measured work must be smaller than the dense baseline's.
        assert (
            slide_run.per_iteration_work[0].total_macs
            < dense_run.per_iteration_work[0].total_macs
        )

        projected = project_run_to_paper_scale(slide_run, DELICIOUS_PAPER_DIMS)
        np.testing.assert_array_equal(projected.accuracies, slide_run.accuracies)
        assert projected.per_iteration_work[0].total_macs > slide_run.per_iteration_work[0].total_macs
        assert projected.avg_active_output == DELICIOUS_PAPER_DIMS.avg_active_output

        sims = experiment.simulate_standard_devices(slide_run, dense_run, cores=44)
        assert set(sims) == {"SLIDE CPU", "TF-GPU", "TF-CPU"}

    def test_measured_run_simulation(self, micro_config):
        experiment = HeadToHeadExperiment(micro_config)
        run = experiment.run_slide()
        sim = run.simulate(WallClockSimulator(SLIDE_CPU_PROFILE, cores=8))
        assert sim.cumulative_seconds.shape == run.iterations.shape
        assert np.all(np.diff(sim.cumulative_seconds) > 0)

    def test_target_active_property(self, micro_config):
        assert micro_config.target_active >= 8
        with pytest.raises(ValueError):
            ExperimentConfig(dataset=micro_config.dataset, target_active_fraction=0.0)


class TestFigureDrivers:
    def test_figure4_sampling_strategy_timing(self):
        rows = figures.figure4_sampling_strategy_timing(
            neuron_counts=(300, 600), dim=32, k=3, l=8, queries=5
        )
        assert len(rows) == 6
        strategies = {row["strategy"] for row in rows}
        assert strategies == {"Vanilla Sampling", "TopK Sampling", "Hard Thresholding"}
        assert all(row["seconds_per_query"] > 0 for row in rows)

    def test_figure5_structure_and_ordering(self, micro_config):
        out = figures.figure5_time_vs_accuracy(micro_config, paper_dims=DELICIOUS_PAPER_DIMS)
        assert set(out["time_series"]) == {"SLIDE CPU", "TF-GPU", "TF-CPU"}
        assert set(out["iteration_series"]) == {"SLIDE CPU", "TF-GPU"}
        assert out["speedup_vs_cpu"] > out["speedup_vs_gpu"] > 0
        # Figure 5's headline at paper scale: SLIDE converges faster than both.
        assert out["speedup_vs_gpu"] > 1.0

    def test_figure6_trends(self):
        rows = figures.figure6_inefficiency_breakdown(threads=(8, 16, 32))
        tf_rows = [r for r in rows if r["framework"] == "Tensorflow-CPU"]
        slide_rows = [r for r in rows if r["framework"] == "SLIDE"]
        assert len(tf_rows) == len(slide_rows) == 3
        assert tf_rows[0]["memory_bound"] < tf_rows[-1]["memory_bound"]
        assert slide_rows[0]["memory_bound"] > slide_rows[-1]["memory_bound"]

    def test_figure7_sampled_softmax(self, micro_config):
        out = figures.figure7_sampled_softmax(micro_config, paper_dims=DELICIOUS_PAPER_DIMS)
        assert set(out["final_accuracy"]) == {"SLIDE CPU", "TF-GPU SSM"}
        assert out["active_fraction"]["SLIDE CPU"] < 1.0

    def test_figure8_batch_size(self, micro_config):
        rows = figures.figure8_batch_size_effect(
            micro_config, batch_sizes=(8, 16), paper_dims=AMAZON_PAPER_DIMS
        )
        assert len(rows) == 6
        assert {r["framework"] for r in rows} == {"SLIDE CPU", "TF-GPU", "TF-GPU SSM"}

    def test_figure9_and_13_scalability(self, micro_config):
        rows = figures.figure9_scalability(
            micro_config, core_counts=(2, 8, 44), paper_dims=DELICIOUS_PAPER_DIMS
        )
        assert len(rows) == 3
        # SLIDE convergence time decreases with cores; GPU stays flat.
        slide_times = [r["SLIDE_convergence_s"] for r in rows]
        assert slide_times[0] > slide_times[-1]
        gpu_times = {r["TF-GPU_convergence_s"] for r in rows}
        assert len(gpu_times) == 1

        ratios = figures.figure13_scalability_ratio(rows)
        assert ratios[-1]["SLIDE_ratio"] == pytest.approx(1.0)
        assert ratios[0]["SLIDE_ratio"] > 1.0
        assert figures.figure13_scalability_ratio([]) == []

    def test_figure10_hugepages(self, micro_config):
        out = figures.figure10_hugepages_simd(micro_config, paper_dims=AMAZON_PAPER_DIMS)
        assert out["optimized_speedup"] == pytest.approx(out["expected_speedup"], rel=0.05)
        assert set(out["time_series"]) == {"SLIDE-CPU", "SLIDE-CPU Optimized", "TF-GPU"}

    def test_figure11_hard_threshold_curves(self):
        series = figures.figure11_hard_threshold_tradeoff()
        assert set(series) == {"m=1", "m=3", "m=5", "m=7", "m=9"}
        # Lower thresholds select at least as often at every collision probability.
        _, m1 = series["m=1"]
        _, m9 = series["m=9"]
        assert np.all(m1 >= m9 - 1e-12)


class TestTableDrivers:
    def test_table1(self):
        rows = tables.table1_dataset_statistics(scale=1 / 4096)
        sources = {row["source"] for row in rows}
        assert sources == {"paper", "synthetic"}
        assert len(rows) == 4
        paper_rows = [r for r in rows if r["source"] == "paper"]
        assert {r["dataset"] for r in paper_rows} == {"Delicious-200K", "Amazon-670K"}

    def test_table2(self):
        rows = tables.table2_core_utilization()
        assert len(rows) == 3
        for row in rows:
            assert row["SLIDE_utilization_calibrated"] > row["TF-CPU_utilization_calibrated"]
            assert row["SLIDE_utilization_model"] > row["TF-CPU_utilization_model"]

    def test_table3(self):
        rows = tables.table3_insertion_timing(num_neurons=800, dim=32, k=3, l=8)
        assert len(rows) == 2
        assert {r["policy"] for r in rows} == {"Reservoir Sampling", "FIFO"}
        for row in rows:
            assert row["full_insertion_s"] >= row["insertion_to_ht_s"]

    def test_table4(self):
        rows = tables.table4_hugepages_counters()
        metrics = {row["metric"] for row in rows}
        assert "dTLB load miss rate" in metrics
        assert "PageFaults per second" in metrics
        for row in rows:
            assert row["improvement_factor"] >= 1.0
