"""Parity tests for the batched sparse kernels (:mod:`repro.kernels`).

Three contracts are pinned down:

1. the batched building blocks (matrix hashing, fingerprint packing, batched
   table queries, batched active-set selection) agree element-for-element
   with their per-sample counterparts;
2. the fused synchronous training step produces the same losses and work
   metrics as the legacy per-sample synchronous loop on a fixed seed, and —
   with a linear optimiser, where accumulated and sequential block updates
   commute — bit-identical weights;
3. HOGWILD mode is unchanged: ``train_batch(hogwild=True)`` equals an
   explicit per-sample compute/apply replay bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.activations import sparse_softmax
from repro.core.layer import SlideLayer
from repro.core.network import SlideNetwork
from repro.hashing.base import LSHFamily
from repro.hashing.doph import DOPH
from repro.hashing.dwta import DWTAHash
from repro.hashing.simhash import SimHash
from repro.hashing.wta import WTAHash
from repro.kernels import Workspace, fused_forward_batch, select_active_batch
from repro.kernels.fused import _masked_softmax_rows
from repro.lsh.index import LSHIndex
from repro.types import SparseBatch, SparseExample, SparseVector


def make_batch(rng, n=16, dim=64, classes=48, nnz=8) -> SparseBatch:
    examples = []
    for _ in range(n):
        indices = np.sort(rng.choice(dim, size=nnz, replace=False))
        examples.append(
            SparseExample(
                features=SparseVector(
                    indices=indices, values=rng.normal(size=nnz), dimension=dim
                ),
                labels=rng.choice(classes, size=2, replace=False),
            )
        )
    return SparseBatch.from_examples(examples, feature_dim=dim, label_dim=classes)


def lsh_network(
    seed=0, strategy="vanilla", dim=64, classes=48, hidden_lsh=False
) -> SlideNetwork:
    output_lsh = LSHConfig(hash_family="simhash", k=4, l=12, bucket_size=32)
    hidden = LayerConfig(size=32, activation="relu")
    if hidden_lsh:
        hidden = LayerConfig(
            size=32,
            activation="relu",
            lsh=LSHConfig(hash_family="dwta", k=3, l=8, bucket_size=16),
            sampling=SamplingConfig(strategy="topk", target_active=16, min_active=8),
        )
    layers = (
        hidden,
        LayerConfig(
            size=classes,
            activation="softmax",
            lsh=output_lsh,
            sampling=SamplingConfig(strategy=strategy, target_active=12, min_active=8),
            rebuild=RebuildScheduleConfig(initial_period=3, decay=0.0),
        ),
    )
    return SlideNetwork(SlideNetworkConfig(input_dim=dim, layers=layers, seed=seed))


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
class TestBatchedHashing:
    @pytest.mark.parametrize(
        "family_cls, kwargs",
        [
            (SimHash, {}),
            (WTAHash, {"bin_size": 8}),
            (DWTAHash, {"bin_size": 8}),
            (DOPH, {"top_k": 16}),
        ],
    )
    def test_hash_matrix_matches_per_vector(self, rng, family_cls, kwargs):
        dim = 120
        family = family_cls(input_dim=dim, k=4, l=6, seed=9, **kwargs)
        matrix = np.zeros((24, dim))
        for row in range(23):
            idx = rng.choice(dim, size=int(rng.integers(1, 24)), replace=False)
            matrix[row, idx] = rng.normal(size=idx.size)
        # Row 23 stays all-zero: the degenerate densification case.
        batched = family.hash_matrix(matrix)
        looped = LSHFamily.hash_matrix(family, matrix)
        np.testing.assert_array_equal(batched, looped)

    def test_fingerprint_many_matches_scalar(self, rng):
        index = LSHIndex(input_dim=32, config=LSHConfig(k=5, l=4), seed=1)
        table = index.tables[0]
        codes = rng.integers(0, 2, size=(50, 5))
        many = table.fingerprint_many(codes)
        assert isinstance(many, np.ndarray) and many.dtype == np.int64
        np.testing.assert_array_equal(
            many, [table.fingerprint(row) for row in codes]
        )

    def test_query_batch_matches_per_query(self, rng):
        index = LSHIndex(input_dim=32, config=LSHConfig(k=3, l=8), seed=2)
        index.build(rng.normal(size=(60, 32)))
        queries = rng.normal(size=(10, 32))
        batched = index.query_batch(queries)
        for row in range(queries.shape[0]):
            single = index.query(queries[row])
            assert len(batched[row].buckets) == len(single.buckets)
            for got, expected in zip(batched[row].buckets, single.buckets):
                np.testing.assert_array_equal(got, expected)


class TestBatchedSelection:
    def _layer(self, seed=5, strategy="vanilla") -> SlideLayer:
        config = LayerConfig(
            size=40,
            activation="softmax",
            lsh=LSHConfig(hash_family="simhash", k=3, l=10, bucket_size=16),
            sampling=SamplingConfig(strategy=strategy, target_active=10, min_active=6),
        )
        return SlideLayer(fan_in=24, config=config, seed=seed)

    @pytest.mark.parametrize("strategy", ["vanilla", "topk", "hard_threshold"])
    def test_rng_compatible_with_per_sample_selection(self, rng, strategy):
        """Batched selection must consume the layer RNG exactly like the
        per-sample path, sample for sample."""
        layer_a = self._layer(strategy=strategy)
        layer_b = self._layer(strategy=strategy)
        queries = rng.normal(size=(12, 24))
        queries[5] = 0.0  # all-zero query exercises the fallback padding
        per_sample = []
        for row in range(queries.shape[0]):
            indices = np.flatnonzero(queries[row])
            per_sample.append(
                layer_a.select_active(indices, queries[row][indices])
            )
        batched = select_active_batch(layer_b, queries)
        for (a_ids, a_tables, a_fallback), (b_ids, b_tables, b_fallback) in zip(
            per_sample, batched
        ):
            np.testing.assert_array_equal(a_ids, b_ids)
            assert a_tables == b_tables
            assert a_fallback == b_fallback

    def test_forced_ids_always_included(self, rng):
        layer = self._layer()
        queries = rng.normal(size=(4, 24))
        forced = [np.array([0, 39]), None, np.array([7]), None]
        selections = select_active_batch(layer, queries, forced)
        assert {0, 39} <= set(selections[0][0].tolist())
        assert 7 in selections[2][0].tolist()

    def test_dense_layer_selects_everything(self, rng):
        layer = SlideLayer(fan_in=16, config=LayerConfig(size=12), seed=0)
        selections = select_active_batch(layer, rng.normal(size=(3, 16)))
        for active, from_tables, fallback in selections:
            np.testing.assert_array_equal(active, np.arange(12))
            assert from_tables == 0 and fallback == 0


class TestMaskedSoftmax:
    def test_matches_sparse_softmax_per_row(self, rng):
        pre = rng.normal(size=(6, 10))
        mask = (rng.random(size=(6, 10)) < 0.5).astype(np.float64)
        mask[0] = 1.0  # fully active row
        mask[1] = 0.0  # empty row
        out = _masked_softmax_rows(pre, mask)
        for row in range(pre.shape[0]):
            members = np.flatnonzero(mask[row])
            expected = np.zeros(pre.shape[1])
            if members.size:
                expected[members] = sparse_softmax(pre[row, members])
            np.testing.assert_allclose(out[row], expected, atol=1e-12)


class TestWorkspace:
    def test_buffers_are_reused_and_grow(self):
        workspace = Workspace()
        a = np.ones((3, 4))
        b = np.ones((4, 5))
        first = workspace.matmul(a, b, "grad")
        np.testing.assert_allclose(first, 4.0)
        base_before = workspace._buffers["grad"]
        second = workspace.matmul(a * 2, b, "grad")
        np.testing.assert_allclose(second, 8.0)
        assert workspace._buffers["grad"] is base_before  # reused, not reallocated
        bigger = workspace.matmul(np.ones((6, 4)), b, "grad")
        assert bigger.shape == (6, 5)


class TestDirtyNeuronTracking:
    def test_mark_dirty_accumulates_sorted_unique(self):
        layer = SlideLayer(
            fan_in=16,
            config=LayerConfig(
                size=30,
                activation="softmax",
                lsh=LSHConfig(hash_family="simhash", k=3, l=4, bucket_size=8),
            ),
            seed=0,
        )
        layer.mark_dirty(np.array([5, 2, 9]))
        layer.mark_dirty(np.array([2, 11]))
        np.testing.assert_array_equal(layer._consolidate_dirty(), [2, 5, 9, 11])
        assert layer.dirty_neuron_count == 4
        layer.rebuild()
        assert layer.dirty_neuron_count == 0

    def test_mark_dirty_stays_cheap_per_call(self):
        """Appending dirty ids must not re-sort the whole accumulator per
        call; consolidation only triggers past the buffering threshold."""
        layer = SlideLayer(
            fan_in=16,
            config=LayerConfig(
                size=100,
                activation="softmax",
                lsh=LSHConfig(hash_family="simhash", k=3, l=4, bucket_size=8),
            ),
            seed=0,
        )
        for _ in range(50):
            layer.mark_dirty(np.arange(0, 100, 2))
        # 50 chunks of 50 ids buffered, still under the threshold: no merge.
        assert len(layer._dirty_chunks) == 50
        assert layer.dirty_neuron_count == 50  # consolidates on demand
        assert len(layer._dirty_chunks) == 1

    def test_mark_dirty_noop_without_lsh(self):
        layer = SlideLayer(fan_in=8, config=LayerConfig(size=6), seed=0)
        layer.mark_dirty(np.array([1, 2]))
        assert layer.dirty_neuron_count == 0


# ----------------------------------------------------------------------
# Fused training-step parity
# ----------------------------------------------------------------------
class TestFusedTrainingParity:
    @pytest.mark.parametrize("strategy", ["vanilla", "topk", "hard_threshold"])
    def test_losses_and_work_match_per_sample_sync(self, rng, strategy):
        """One fused Adam step from identical weights matches the legacy
        per-sample synchronous step's loss and work accounting.  (Multi-step
        weight trajectories legitimately differ under Adam — one accumulated
        moment update per batch vs one per sample — so trajectory parity is
        asserted separately with SGD, where the two commute.)"""
        for seed in (0, 1, 2):
            net_a = lsh_network(seed=seed, strategy=strategy)
            net_b = lsh_network(seed=seed, strategy=strategy)
            opt_a = net_a.build_optimizer(TrainingConfig())
            opt_b = net_b.build_optimizer(TrainingConfig())
            batch = make_batch(rng)
            legacy = net_a.train_batch(batch, opt_a, hogwild=False, batched=False)
            fused = net_b.train_batch(batch, opt_b, hogwild=False, batched=True)
            assert fused["loss"] == pytest.approx(legacy["loss"], abs=1e-9)
            assert fused["active_neurons"] == legacy["active_neurons"]
            assert fused["active_weights"] == legacy["active_weights"]
            assert fused["batch_size"] == legacy["batch_size"]

    def test_sgd_weights_match_per_sample_sync(self, rng):
        """With a linear optimiser the accumulated block step equals the
        averaged per-sample steps, so weights must agree to epsilon — even
        across LSH rebuilds and an LSH-sampled hidden layer."""
        config = TrainingConfig(
            optimizer=OptimizerConfig(name="sgd", learning_rate=1e-2, momentum=0.0)
        )
        net_a = lsh_network(hidden_lsh=True)
        net_b = lsh_network(hidden_lsh=True)
        opt_a = net_a.build_optimizer(config)
        opt_b = net_b.build_optimizer(config)
        for _ in range(5):
            batch = make_batch(rng)
            net_a.train_batch(batch, opt_a, hogwild=False, batched=False)
            net_b.train_batch(batch, opt_b, hogwild=False, batched=True)
        for layer_a, layer_b in zip(net_a.layers, net_b.layers):
            np.testing.assert_allclose(
                layer_a.weights, layer_b.weights, atol=1e-12
            )
            np.testing.assert_allclose(layer_a.biases, layer_b.biases, atol=1e-12)

    def test_fused_gradient_is_mean_of_sample_gradients(self, rng):
        """On a dense (no-LSH) network the fused weight update must equal the
        mean of the per-sample gradient blocks exactly."""
        config = SlideNetworkConfig(
            input_dim=24,
            layers=(
                LayerConfig(size=10, activation="relu"),
                LayerConfig(size=12, activation="softmax"),
            ),
            seed=4,
        )
        net = SlideNetwork(config)
        batch = make_batch(rng, n=6, dim=24, classes=12, nnz=5)
        expected = [np.zeros_like(layer.weights) for layer in net.layers]
        for example in batch:
            gradient = net.compute_sample_gradient(example)
            for layer_idx, state in enumerate(gradient.layer_states):
                expected[layer_idx][
                    np.ix_(state.active_out, state.active_in)
                ] += gradient.weight_grads[layer_idx] / len(batch)

        learning_rate = 0.5
        optimizer = net.build_optimizer(
            TrainingConfig(
                optimizer=OptimizerConfig(name="sgd", learning_rate=learning_rate)
            )
        )
        before = [layer.weights.copy() for layer in net.layers]
        net.train_batch(batch, optimizer, hogwild=False, batched=True)
        for layer_idx, layer in enumerate(net.layers):
            update = (before[layer_idx] - layer.weights) / learning_rate
            np.testing.assert_allclose(update, expected[layer_idx], atol=1e-12)

    def test_fused_forward_matches_forward_sample(self, rng):
        """Activations of the fused forward equal per-sample forward_sample
        on each sample's own active set."""
        net_a = lsh_network(seed=8)
        net_b = lsh_network(seed=8)
        batch = make_batch(rng)
        result = fused_forward_batch(net_a, batch, include_labels=True)
        out = result.output_state
        for sample_idx, example in enumerate(batch):
            per_sample = net_b.forward_sample(example, include_labels=True)
            state = per_sample.output_state
            np.testing.assert_array_equal(
                out.active_sets[sample_idx], state.active_out
            )
            positions = np.searchsorted(out.rows, state.active_out)
            np.testing.assert_allclose(
                out.act[sample_idx, positions], state.activation, atol=1e-9
            )
            # Union neurons outside this sample's active set carry nothing.
            off = out.mask[sample_idx] == 0.0
            assert np.all(out.act[sample_idx, off] == 0.0)

    def test_linear_hidden_layer_gradient_not_gated(self, rng):
        """Backward through a linear hidden layer must not apply the ReLU
        gate: neurons with negative pre-activations still carry gradient
        (checked against finite differences, per-sample and fused)."""
        config = SlideNetworkConfig(
            input_dim=12,
            layers=(
                LayerConfig(size=6, activation="linear"),
                LayerConfig(size=5, activation="softmax"),
            ),
            seed=1,
        )
        net = SlideNetwork(config)
        example = make_batch(rng, n=1, dim=12, classes=5, nnz=4)[0]
        gradient = net.compute_sample_gradient(example)
        state = gradient.layer_states[0]
        assert np.any(state.pre_activation < 0)  # the gate would zero these

        def loss_fn() -> float:
            scores = net.predict_dense(example)
            return -float(
                sum(np.log(scores[label] + 1e-12) for label in example.labels)
                / example.labels.size
            )

        eps = 1e-6
        neuron = int(np.argmin(state.pre_activation))  # most negative pre
        feature = int(state.active_in[0])
        position = int(np.searchsorted(state.active_in, feature))
        original = net.layers[0].weights[neuron, feature]
        net.layers[0].weights[neuron, feature] = original + eps
        loss_plus = loss_fn()
        net.layers[0].weights[neuron, feature] = original - eps
        loss_minus = loss_fn()
        net.layers[0].weights[neuron, feature] = original
        numerical = (loss_plus - loss_minus) / (2 * eps)
        assert gradient.weight_grads[0][neuron, position] == pytest.approx(
            numerical, abs=1e-5
        )

        # Fused path agrees: one SGD step moves that weight by -lr * grad.
        net_fused = SlideNetwork(config)
        batch = SparseBatch.from_examples([example], feature_dim=12, label_dim=5)
        optimizer = net_fused.build_optimizer(
            TrainingConfig(optimizer=OptimizerConfig(name="sgd", learning_rate=1.0))
        )
        before = net_fused.layers[0].weights[neuron, feature]
        net_fused.train_batch(batch, optimizer, hogwild=False, batched=True)
        fused_grad = before - net_fused.layers[0].weights[neuron, feature]
        assert fused_grad == pytest.approx(numerical, abs=1e-5)

    def test_fused_training_learns(self, rng):
        net = lsh_network(seed=11)
        optimizer = net.build_optimizer(
            TrainingConfig(optimizer=OptimizerConfig(learning_rate=5e-3))
        )
        batch = make_batch(rng)
        first = net.train_batch(batch, optimizer, hogwild=False)["loss"]
        for _ in range(25):
            last = net.train_batch(batch, optimizer, hogwild=False)["loss"]
        assert last < first


# ----------------------------------------------------------------------
# HOGWILD mode must be unchanged
# ----------------------------------------------------------------------
class TestHogwildUnchanged:
    def test_hogwild_equals_explicit_per_sample_replay(self, rng):
        """``train_batch(hogwild=True)`` must be bit-identical to computing
        and immediately applying each sample's gradient in order."""
        net_a = lsh_network(seed=21)
        net_b = lsh_network(seed=21)
        opt_a = net_a.build_optimizer(TrainingConfig())
        opt_b = net_b.build_optimizer(TrainingConfig())
        for _ in range(3):
            batch = make_batch(rng)
            net_a.train_batch(batch, opt_a, hogwild=True)

            opt_b.begin_step()
            for example in batch:
                gradient = net_b.compute_sample_gradient(example)
                net_b.apply_sample_gradient(gradient, opt_b)
            net_b.iteration += 1
            for layer in net_b.layers:
                layer.maybe_rebuild(net_b.iteration)

        for layer_a, layer_b in zip(net_a.layers, net_b.layers):
            np.testing.assert_array_equal(layer_a.weights, layer_b.weights)
            np.testing.assert_array_equal(layer_a.biases, layer_b.biases)

    def test_hogwild_is_deterministic_across_runs(self, rng):
        batches = [make_batch(rng) for _ in range(3)]
        results = []
        for _run in range(2):
            net = lsh_network(seed=33)
            optimizer = net.build_optimizer(TrainingConfig())
            for batch in batches:
                net.train_batch(batch, optimizer, hogwild=True)
            results.append([layer.weights.copy() for layer in net.layers])
        for weights_a, weights_b in zip(*results):
            np.testing.assert_array_equal(weights_a, weights_b)


class TestSortedActiveGuard:
    def test_unsorted_active_set_raises_in_gradient(self, rng, monkeypatch):
        net = lsh_network(seed=2)
        example = make_batch(rng, n=1)[0]

        original = SlideLayer.forward

        def unsorted_forward(self, *args, **kwargs):
            state = original(self, *args, **kwargs)
            if self.activation_name == "softmax" and state.active_out.size > 1:
                state.active_out = state.active_out[::-1].copy()
            return state

        monkeypatch.setattr(SlideLayer, "forward", unsorted_forward)
        with pytest.raises(ValueError, match="sorted"):
            net.compute_sample_gradient(example)
