"""Tests for activation functions, in particular the sparse softmax."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.activations import log_sparse_softmax, relu, relu_grad, sparse_softmax


class TestReLU:
    def test_clamps_negatives(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_grad_is_indicator(self):
        np.testing.assert_array_equal(
            relu_grad(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 1.0]
        )


class TestSparseSoftmax:
    def test_sums_to_one(self, rng):
        probs = sparse_softmax(rng.normal(size=17))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    def test_empty_input(self):
        assert sparse_softmax(np.array([])).size == 0
        assert log_sparse_softmax(np.array([])).size == 0

    def test_single_element_is_one(self):
        np.testing.assert_allclose(sparse_softmax(np.array([3.0])), [1.0])

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=9)
        np.testing.assert_allclose(
            sparse_softmax(logits), sparse_softmax(logits + 100.0), atol=1e-12
        )

    def test_numerical_stability_with_large_logits(self):
        probs = sparse_softmax(np.array([1e4, 1e4 - 1.0]))
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)

    def test_log_softmax_consistency(self, rng):
        logits = rng.normal(size=11)
        np.testing.assert_allclose(
            np.exp(log_sparse_softmax(logits)), sparse_softmax(logits), atol=1e-12
        )

    def test_ordering_preserved(self):
        logits = np.array([1.0, 3.0, 2.0])
        probs = sparse_softmax(logits)
        assert probs[1] > probs[2] > probs[0]

    @given(
        logits=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_properties(self, logits):
        probs = sparse_softmax(np.array(logits))
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all((probs >= 0) & (probs <= 1))
