"""Sparse/dense inference engines: correctness, budget knob, fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import evaluate_precision_at_1, predict_top_k
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.serving.engine import DenseInferenceEngine, SparseInferenceEngine


@pytest.fixture(scope="module")
def trained(tiny_dataset):
    """One briefly trained network shared by the engine tests (read-only)."""
    from repro.config import (
        LayerConfig,
        LSHConfig,
        OptimizerConfig,
        SamplingConfig,
        SlideNetworkConfig,
        TrainingConfig,
    )

    lsh = LSHConfig(hash_family="simhash", k=3, l=16, bucket_size=64)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=3
        )
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=16,
            epochs=2,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=11,
        ),
    )
    trainer.train(tiny_dataset.train, tiny_dataset.test)
    return network


def test_dense_engine_matches_reference_top_k(trained, tiny_dataset):
    engine = DenseInferenceEngine(trained)
    for example in tiny_dataset.test[:16]:
        prediction = engine.predict(example, k=3)
        np.testing.assert_array_equal(
            prediction.class_ids, predict_top_k(trained, example, k=3)
        )
        assert prediction.mode == "dense"
        assert prediction.candidates_scored == trained.output_dim
        # Scores sorted descending.
        assert np.all(np.diff(prediction.scores) <= 0)


def test_sparse_engine_precision_close_to_dense(trained, tiny_dataset):
    dense_precision = evaluate_precision_at_1(trained, tiny_dataset.test)
    engine = SparseInferenceEngine(trained, active_budget=32)
    hits = judged = 0
    for example, prediction in zip(
        tiny_dataset.test, engine.predict_batch(tiny_dataset.test, k=1)
    ):
        if example.labels.size == 0:
            continue
        judged += 1
        hits += int(np.isin(prediction.class_ids[:1], example.labels).any())
    sparse_precision = hits / judged
    assert dense_precision - sparse_precision <= 0.02


def test_sparse_engine_budget_bounds_candidates(trained, tiny_dataset):
    budget = 16
    engine = SparseInferenceEngine(trained, active_budget=budget)
    for prediction in engine.predict_batch(tiny_dataset.test[:32], k=1):
        if prediction.mode == "sparse":
            assert prediction.candidates_scored <= budget
        else:
            assert prediction.mode == "dense_fallback"


def test_sparse_engine_is_deterministic(trained, tiny_dataset):
    engine = SparseInferenceEngine(trained, active_budget=24)
    examples = tiny_dataset.test[:16]
    first = engine.predict_batch(examples, k=5)
    second = engine.predict_batch(examples, k=5)
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.class_ids, b.class_ids)
        np.testing.assert_allclose(a.scores, b.scores)


def test_sparse_engine_batch_matches_single(trained, tiny_dataset):
    engine = SparseInferenceEngine(trained, active_budget=24)
    examples = tiny_dataset.test[:8]
    batched = engine.predict_batch(examples, k=2)
    for example, from_batch in zip(examples, batched):
        alone = engine.predict(example, k=2)
        np.testing.assert_array_equal(alone.class_ids, from_batch.class_ids)


def test_sparse_engine_falls_back_when_starved(trained, tiny_dataset):
    # A huge k forces min_candidates above what the tables can return, so
    # every request must take the exact dense path.
    k = trained.output_dim
    engine = SparseInferenceEngine(trained, active_budget=8)
    prediction = engine.predict(tiny_dataset.test[0], k=k)
    assert prediction.mode == "dense_fallback"
    assert prediction.class_ids.shape == (k,)
    assert engine.fallback_rate() == 1.0


def test_sparse_engine_requires_lsh_output_layer(tiny_dataset):
    from repro.config import LayerConfig, SlideNetworkConfig

    dense_net = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim,
            layers=(
                LayerConfig(size=16, activation="relu"),
                LayerConfig(size=tiny_dataset.config.label_dim, activation="softmax"),
            ),
            seed=0,
        )
    )
    with pytest.raises(ValueError, match="LSH-enabled output layer"):
        SparseInferenceEngine(dense_net)


def test_engine_rejects_bad_k(trained, tiny_dataset):
    engine = DenseInferenceEngine(trained)
    with pytest.raises(ValueError, match="positive"):
        engine.predict(tiny_dataset.test[0], k=0)
    with pytest.raises(ValueError, match="exceeds"):
        engine.predict(tiny_dataset.test[0], k=trained.output_dim + 1)


def test_refresh_index_rehashes_dirty_neurons(trained):
    layer = trained.output_layer
    layer.mark_dirty(np.arange(4))
    SparseInferenceEngine(trained, refresh_index=True)
    assert layer.dirty_neuron_count == 0
