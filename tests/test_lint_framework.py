"""Framework-level tests for ``tools/lint``: pragmas, baseline, CLI.

The CLI tests write throwaway fixture modules *inside* the repository
(``collect_sources`` keys everything by repo-relative path) and remove
them afterwards; names are chosen so pytest never collects them.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.lint.baseline import Baseline, BaselineEntry, split_by_baseline
from tools.lint.cli import main
from tools.lint.core import REPO_ROOT, ModuleSource, Violation, run_rules
from tools.lint.rules.exc001 import ExceptionDisciplineRule


def module(code: str, rel: str = "src/repro/_fixture.py") -> ModuleSource:
    return ModuleSource(Path(rel), rel, textwrap.dedent(code))


VIOLATING = """
def risky():
    try:
        work()
    except Exception:
        pass
"""

CLEAN = """
def risky(log):
    try:
        work()
    except Exception as exc:
        log.warning("work failed: %s", exc)
"""


@pytest.fixture
def repo_fixture_file():
    """A throwaway .py file inside the repo tree, cleaned up afterwards."""
    path = REPO_ROOT / "tests" / "_lint_cli_fixture.py"
    created = []

    def write(code: str) -> Path:
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        created.append(path)
        return path

    yield write
    for p in created:
        p.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Pragma mechanics
# ----------------------------------------------------------------------
class TestPragmas:
    def test_pragma_on_preceding_line_suppresses(self):
        source = module(
            """
            def risky():
                try:
                    work()
                # repro: allow[exc] teardown is best-effort
                except Exception:
                    pass
            """
        )
        assert not run_rules([ExceptionDisciplineRule()], [source], root=REPO_ROOT)

    def test_pragma_two_lines_away_does_not_suppress(self):
        source = module(
            """
            def risky():
                # repro: allow[exc] too far from the violation
                try:
                    work()
                except Exception:
                    pass
            """
        )
        assert run_rules([ExceptionDisciplineRule()], [source], root=REPO_ROOT)

    def test_wrong_tag_does_not_suppress(self):
        source = module(
            """
            def risky():
                try:
                    work()
                except Exception:  # repro: allow[clock] wrong tag
                    pass
            """
        )
        assert run_rules([ExceptionDisciplineRule()], [source], root=REPO_ROOT)

    def test_rule_code_works_as_tag(self):
        source = module(
            """
            def risky():
                try:
                    work()
                except Exception:  # repro: allow[EXC001] code spelling
                    pass
            """
        )
        assert not run_rules([ExceptionDisciplineRule()], [source], root=REPO_ROOT)

    def test_multi_tag_pragma(self):
        source = module(
            """
            def risky():
                try:
                    work()
                except Exception:  # repro: allow[lock, exc] shared line
                    pass
            """
        )
        assert not run_rules([ExceptionDisciplineRule()], [source], root=REPO_ROOT)


# ----------------------------------------------------------------------
# Fingerprints and the baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def fingerprint_violation(self, line: int = 5) -> Violation:
        return Violation(
            rule="EXC001",
            path="src/repro/x.py",
            line=line,
            col=4,
            message="silent broad except",
            snippet="except Exception:",
        )

    def test_fingerprint_survives_line_drift(self):
        assert (
            self.fingerprint_violation(line=5).fingerprint
            == self.fingerprint_violation(line=50).fingerprint
        )

    def test_fingerprint_changes_with_snippet(self):
        moved = Violation(
            rule="EXC001",
            path="src/repro/x.py",
            line=5,
            col=4,
            message="silent broad except",
            snippet="except BaseException:",
        )
        assert moved.fingerprint != self.fingerprint_violation().fingerprint

    def test_split_by_baseline(self):
        known = self.fingerprint_violation()
        fresh = Violation(
            rule="THR001", path="src/repro/y.py", line=2, col=0,
            message="unjoined thread", snippet="threading.Thread(target=f)",
        )
        baseline = Baseline.from_violations([known])
        new, accepted = split_by_baseline([known, fresh], baseline)
        assert accepted == [known] and new == [fresh]

    def test_stale_entries_expire_on_update(self):
        gone = self.fingerprint_violation()
        baseline = Baseline.from_violations([gone])
        assert baseline.stale_entries([]) == baseline.entries
        updated = Baseline.from_violations([], previous=baseline)
        assert updated.entries == []

    def test_justifications_survive_update(self):
        violation = self.fingerprint_violation()
        previous = Baseline(
            [
                BaselineEntry(
                    rule=violation.rule,
                    path=violation.path,
                    snippet=violation.snippet,
                    fingerprint=violation.fingerprint,
                    justification="grandfathered: see PR 9",
                )
            ]
        )
        updated = Baseline.from_violations([violation], previous=previous)
        assert updated.justification_for(violation.fingerprint) == (
            "grandfathered: see PR 9"
        )

    def test_save_load_round_trip(self, tmp_path):
        violation = self.fingerprint_violation()
        baseline = Baseline.from_violations([violation])
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert violation in loaded
        assert json.loads(path.read_text())["version"] == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == []

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            Baseline.load(path)


# ----------------------------------------------------------------------
# CLI exit codes and JSON schema
# ----------------------------------------------------------------------
class TestCli:
    def rel(self, path: Path) -> str:
        return path.relative_to(REPO_ROOT).as_posix()

    def test_clean_run_exits_zero(self, capsys):
        assert main(["--select", "LCK001", "src/repro/utils/rwlock.py"]) == 0
        assert "repro-lint OK" in capsys.readouterr().out

    def test_new_violation_exits_one(self, repo_fixture_file, capsys):
        path = repo_fixture_file(VIOLATING)
        assert main([self.rel(path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "EXC001" in out and "new violation" in out

    def test_json_report_schema(self, repo_fixture_file, capsys):
        path = repo_fixture_file(VIOLATING)
        assert main([self.rel(path), "--no-baseline", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert set(report["summary"]) == {
            "checked_files", "total", "new", "baselined", "stale",
        }
        (finding,) = [v for v in report["violations"] if v["rule"] == "EXC001"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "snippet",
            "fingerprint", "baselined",
        }
        assert finding["baselined"] is False

    def test_baseline_accept_then_expire(self, repo_fixture_file, tmp_path, capsys):
        path = repo_fixture_file(VIOLATING)
        baseline = tmp_path / "baseline.json"
        rel = self.rel(path)

        # 1. Accept the current state.
        assert main([rel, "--baseline", str(baseline), "--update-baseline"]) == 0
        assert len(json.loads(baseline.read_text())["entries"]) == 1

        # 2. Baselined violations no longer fail the run.
        capsys.readouterr()
        assert main([rel, "--baseline", str(baseline)]) == 0
        assert "baselined violation" in capsys.readouterr().out

        # 3. Fixing the code surfaces the entry as stale...
        path.write_text(textwrap.dedent(CLEAN), encoding="utf-8")
        capsys.readouterr()
        assert main([rel, "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out

        # 4. ...and --update-baseline expires it.
        assert main([rel, "--baseline", str(baseline), "--update-baseline"]) == 0
        assert json.loads(baseline.read_text())["entries"] == []

    def test_unknown_select_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--select", "NOPE999"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("LCK001", "DET001", "MPX001", "EXC001", "CFG001", "THR001"):
            assert code in out
        assert "DOC001" in out and "--all" in out

    def test_syntax_error_is_reported_not_raised(self, repo_fixture_file, capsys):
        path = repo_fixture_file("def broken(:\n")
        assert main([self.rel(path), "--no-baseline"]) == 1
        assert "PARSE" in capsys.readouterr().out

    def test_committed_baseline_matches_the_tree(self):
        """`python -m tools.lint` must be green at HEAD (the CI contract)."""
        assert main([]) == 0
