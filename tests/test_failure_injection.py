"""Failure-injection and degenerate-input tests.

SLIDE's data path has several places where real extreme-classification data
gets ugly: examples with no features, examples with no labels, all-zero
activations, hash tables whose buckets overflow, queries against empty
tables.  None of these may crash training or corrupt state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.hashing import DOPH, DWTAHash, MinHash, SimHash, WTAHash
from repro.lsh.index import LSHIndex
from repro.types import SparseBatch, SparseExample, SparseVector


def lsh_network(input_dim=64, classes=32, seed=0) -> SlideNetwork:
    return SlideNetwork(
        SlideNetworkConfig(
            input_dim=input_dim,
            layers=(
                LayerConfig(size=16, activation="relu"),
                LayerConfig(
                    size=classes,
                    activation="softmax",
                    lsh=LSHConfig(hash_family="simhash", k=3, l=8, bucket_size=8),
                    sampling=SamplingConfig(strategy="vanilla", target_active=8, min_active=4),
                ),
            ),
            seed=seed,
        )
    )


class TestDegenerateExamples:
    def test_example_with_no_features(self):
        network = lsh_network()
        example = SparseExample(
            features=SparseVector(indices=[], values=[], dimension=64),
            labels=np.array([3]),
        )
        result = network.forward_sample(example, include_labels=True)
        assert np.all(np.isfinite(result.output_probabilities))
        gradient = network.compute_sample_gradient(example)
        assert np.isfinite(gradient.loss)

    def test_example_with_no_labels(self):
        network = lsh_network()
        example = SparseExample(
            features=SparseVector(indices=[1, 5], values=[1.0, -2.0], dimension=64),
            labels=np.array([], dtype=np.int64),
        )
        gradient = network.compute_sample_gradient(example)
        # No labels -> no cross-entropy target -> zero loss contribution, but
        # gradients must still be finite and the step must not crash.
        assert gradient.loss == 0.0
        assert all(np.all(np.isfinite(g)) for g in gradient.weight_grads)

    def test_training_with_mixed_degenerate_batch(self):
        network = lsh_network()
        optimizer = network.build_optimizer(
            TrainingConfig(optimizer=OptimizerConfig(learning_rate=1e-3))
        )
        examples = [
            SparseExample(
                features=SparseVector(indices=[], values=[], dimension=64),
                labels=np.array([1]),
            ),
            SparseExample(
                features=SparseVector(indices=[2], values=[1.0], dimension=64),
                labels=np.array([], dtype=np.int64),
            ),
            SparseExample(
                features=SparseVector(indices=[4, 8], values=[1.0, 1.0], dimension=64),
                labels=np.array([5, 9]),
            ),
        ]
        batch = SparseBatch.from_examples(examples, feature_dim=64, label_dim=32)
        metrics = network.train_batch(batch, optimizer)
        assert np.isfinite(metrics["loss"])
        for layer in network.layers:
            assert np.all(np.isfinite(layer.weights))
            assert np.all(np.isfinite(layer.biases))

    def test_single_example_batch(self):
        network = lsh_network()
        optimizer = network.build_optimizer(TrainingConfig())
        example = SparseExample(
            features=SparseVector(indices=[0], values=[1.0], dimension=64),
            labels=np.array([0]),
        )
        batch = SparseBatch.from_examples([example], feature_dim=64, label_dim=32)
        metrics = network.train_batch(batch, optimizer)
        assert metrics["batch_size"] == 1


class TestHashFamiliesOnDegenerateInputs:
    @pytest.mark.parametrize(
        "family",
        [
            SimHash(32, 3, 4, seed=1),
            WTAHash(32, 3, 4, bin_size=4, seed=1),
            DWTAHash(32, 3, 4, bin_size=4, seed=1),
            DOPH(32, 3, 4, top_k=4, seed=1),
            MinHash(32, 3, 4, seed=1),
        ],
        ids=["simhash", "wta", "dwta", "doph", "minhash"],
    )
    def test_all_zero_vector_hashes_without_error(self, family):
        codes = family.hash_vector(np.zeros(32))
        assert codes.shape == (4, 3)
        assert codes.min() >= 0
        assert codes.max() < family.code_cardinality

    @pytest.mark.parametrize(
        "family",
        [
            SimHash(32, 3, 4, seed=1),
            DWTAHash(32, 3, 4, bin_size=4, seed=1),
            DOPH(32, 3, 4, top_k=4, seed=1),
            MinHash(32, 3, 4, seed=1),
        ],
        ids=["simhash", "dwta", "doph", "minhash"],
    )
    def test_single_nonzero_vector(self, family):
        vector = np.zeros(32)
        vector[7] = 3.5
        codes = family.hash_vector(vector)
        assert codes.shape == (4, 3)


class TestLSHIndexEdgeCases:
    def test_query_on_empty_index_returns_nothing(self, rng):
        index = LSHIndex(16, LSHConfig(hash_family="simhash", k=3, l=4), seed=0)
        result = index.query(rng.normal(size=16))
        assert result.union().size == 0

    def test_bucket_overflow_keeps_index_consistent(self, rng):
        """Index far more items than one bucket can hold: every table keeps at
        most bucket_size ids per bucket and queries still return valid ids."""
        config = LSHConfig(hash_family="simhash", k=1, l=2, bucket_size=4)
        index = LSHIndex(8, config, seed=0)
        weights = rng.normal(size=(100, 8))
        index.build(weights)
        for table in index.tables:
            assert max(table.bucket_sizes(), default=0) <= 4
        result = index.query(weights[0])
        union = result.union()
        assert union.size <= 2 * 4
        assert np.all((union >= 0) & (union < 100))

    def test_rebuilding_after_every_item_changes_is_stable(self, rng):
        config = LSHConfig(hash_family="simhash", k=2, l=4, bucket_size=16)
        index = LSHIndex(8, config, seed=0)
        weights = rng.normal(size=(20, 8))
        index.build(weights)
        for _ in range(5):
            weights = weights + rng.normal(scale=0.1, size=weights.shape)
            index.update(np.arange(20), weights)
        assert index.num_items == 20
        for table in index.tables:
            assert table.num_items == 20


class TestTrainerRobustness:
    def test_training_set_smaller_than_batch(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        trainer = SlideTrainer(
            network, TrainingConfig(batch_size=64, epochs=1, eval_every=0)
        )
        history = trainer.train(tiny_dataset.train[:10])
        assert len(history.records) == 1
        assert history.records[0].batch_size == 10

    def test_eval_pool_smaller_than_eval_samples(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        trainer = SlideTrainer(
            network,
            TrainingConfig(batch_size=16, epochs=1, eval_every=1, eval_samples=10_000),
        )
        history = trainer.train(tiny_dataset.train[:32], tiny_dataset.test[:8])
        assert all(
            acc is None or 0 <= acc <= 1
            for acc in (r.accuracy for r in history.records)
        )
