"""Tests for the CPU-counter (Figure 6 / Table 2) and memory/TLB (Table 4) models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.cpu_counters import (
    inefficiency_breakdown,
    scattered_memory_bound,
    slide_breakdown,
    slide_working_sets,
    streaming_memory_bound,
    tf_breakdown,
    tf_working_sets,
)
from repro.perf.memory import (
    HUGE_PAGES_2MB,
    HUGEPAGES_SPEEDUP,
    STANDARD_PAGES,
    TLBModel,
    hugepages_counter_comparison,
    slide_memory_footprint,
)


class TestCPUCounters:
    def test_breakdown_sums_to_one(self):
        breakdown = inefficiency_breakdown("x", 8, memory_bound=0.4)
        total = (
            breakdown.front_end_bound
            + breakdown.memory_bound
            + breakdown.retiring
            + breakdown.core_bound
        )
        assert total == pytest.approx(1.0)
        assert 0 <= breakdown.utilization() <= 1

    def test_invalid_memory_bound_raises(self):
        with pytest.raises(ValueError):
            inefficiency_breakdown("x", 8, memory_bound=1.5)

    def test_tf_memory_bound_increases_with_threads(self):
        """Figure 6, left panel: TF-CPU becomes more memory bound with cores."""
        fractions = [
            tf_breakdown(t, output_dim=670_091, hidden_dim=128, batch_size=256).memory_bound
            for t in (8, 16, 32)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_slide_memory_bound_decreases_with_threads(self):
        """Figure 6, right panel: SLIDE becomes less memory bound with cores."""
        fractions = [
            slide_breakdown(
                t, avg_active_output=3000, hidden_dim=128, batch_size=256, output_dim=670_091
            ).memory_bound
            for t in (8, 16, 32)
        ]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_memory_bound_is_dominant_inefficiency(self):
        """The paper: memory-bound is the largest stall category for both."""
        tf = tf_breakdown(16, 670_091, 128, 256)
        slide = slide_breakdown(16, 3000, 128, 256, 670_091)
        for b in (tf, slide):
            assert b.memory_bound > b.front_end_bound
            assert b.memory_bound > b.core_bound

    def test_utilization_direction_matches_table2(self):
        """SLIDE's modelled utilisation stays above TF-CPU's at every count."""
        for threads in (8, 16, 32):
            slide = slide_breakdown(threads, 3000, 128, 256, 670_091)
            tf = tf_breakdown(threads, 670_091, 128, 256)
            assert slide.utilization() > tf.utilization()

    def test_working_set_helpers(self):
        per_thread, shared = slide_working_sets(3000, 128, 256, 8, 670_091)
        assert per_thread > 0 and shared > 0
        per_thread_tf, shared_tf = tf_working_sets(670_091, 128, 256, 8)
        # TF's shared streaming footprint (full weight matrix) dwarfs SLIDE's.
        assert shared_tf > shared

    def test_memory_bound_models_validation(self):
        with pytest.raises(ValueError):
            scattered_memory_bound(1e6, 0)
        with pytest.raises(ValueError):
            streaming_memory_bound(-1.0, 4)
        with pytest.raises(ValueError):
            slide_working_sets(3000, 0, 256, 8, 100)

    def test_breakdown_as_row_keys(self):
        row = slide_breakdown(8, 3000, 128, 256, 670_091).as_row()
        assert {"framework", "threads", "memory_bound", "retiring", "utilization"} <= set(row)


class TestMemoryFootprint:
    def _footprint(self):
        return slide_memory_footprint(
            input_dim=135_909,
            hidden_dim=128,
            output_dim=670_091,
            batch_size=256,
            avg_active_output=3000,
            avg_input_nnz=75,
            l_tables=50,
        )

    def test_footprint_positive_and_large(self):
        fp = self._footprint()
        assert fp.resident_bytes > 100 * 1024 * 1024  # hundreds of MB of weights
        assert fp.touched_per_iteration_bytes > 0
        assert fp.accesses_per_iteration > 0

    def test_footprint_validation(self):
        with pytest.raises(ValueError):
            slide_memory_footprint(0, 128, 100, 8, 10, 10, 5)


class TestTLBModel:
    def test_hugepages_reduce_dtlb_misses(self):
        fp = slide_memory_footprint(135_909, 128, 670_091, 256, 3000, 75, 50)
        small = TLBModel(STANDARD_PAGES).dtlb_miss_rate(fp)
        large = TLBModel(HUGE_PAGES_2MB).dtlb_miss_rate(fp)
        assert large < small

    def test_hugepages_reduce_itlb_misses(self):
        small = TLBModel(STANDARD_PAGES).itlb_miss_rate()
        large = TLBModel(HUGE_PAGES_2MB).itlb_miss_rate()
        assert large < small
        # With 4 KB pages the ITLB miss rate is severe (paper measures 56 %).
        assert small > 0.3

    def test_page_faults_drop_with_hugepages(self):
        fp = slide_memory_footprint(135_909, 128, 670_091, 256, 3000, 75, 50)
        small = TLBModel(STANDARD_PAGES).page_faults_per_second(fp, 10.0)
        large = TLBModel(HUGE_PAGES_2MB).page_faults_per_second(fp, 10.0)
        assert large < small

    def test_counter_comparison_structure(self):
        fp = slide_memory_footprint(135_909, 128, 670_091, 256, 3000, 75, 50)
        table = hugepages_counter_comparison(fp)
        assert "dTLB load miss rate" in table
        assert "PageFaults per second" in table
        for metric, values in table.items():
            assert values["with_hugepages"] <= values["without_hugepages"], metric

    def test_speedup_constant_matches_paper(self):
        assert HUGEPAGES_SPEEDUP == pytest.approx(1.3)

    def test_invalid_tlb_entries_raise(self):
        with pytest.raises(ValueError):
            TLBModel(STANDARD_PAGES, dtlb_entries=0)
