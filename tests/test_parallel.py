"""Tests for conflict analysis, the HOGWILD simulator and the thread executor."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import OptimizerConfig, TrainingConfig
from repro.core.network import SlideNetwork
from repro.parallel.conflicts import (
    analyze_update_conflicts,
    expected_conflict_fraction,
)
from repro.parallel.executor import BatchParallelExecutor, WorkerPool
from repro.parallel.hogwild import HogwildSimulator
from repro.types import SparseBatch


class TestConflictAnalysis:
    def test_disjoint_sets_have_no_conflicts(self):
        report = analyze_update_conflicts(
            [np.array([0, 1]), np.array([2, 3]), np.array([4, 5])], layer_size=10
        )
        assert report.conflicted_update_fraction == 0.0
        assert report.pairwise_overlap_rate == 0.0
        assert report.distinct_neurons_updated == 6
        assert report.is_sparse_enough_for_hogwild

    def test_identical_sets_fully_conflict(self):
        report = analyze_update_conflicts(
            [np.array([0, 1, 2]), np.array([0, 1, 2])], layer_size=10
        )
        assert report.conflicted_update_fraction == pytest.approx(1.0)
        assert report.pairwise_overlap_rate == pytest.approx(1.0)
        assert not report.is_sparse_enough_for_hogwild

    def test_partial_overlap(self):
        report = analyze_update_conflicts(
            [np.array([0, 1, 2, 3]), np.array([3, 4, 5, 6])], layer_size=20
        )
        # Only neuron 3 is contested: 2 of 8 updates conflict.
        assert report.conflicted_update_fraction == pytest.approx(0.25)
        assert report.mean_active == pytest.approx(4.0)

    def test_empty_batch(self):
        report = analyze_update_conflicts([], layer_size=10)
        assert report.batch_size == 0
        assert report.conflicted_update_fraction == 0.0

    def test_expected_conflict_fraction_formula(self):
        # 1 - (1 - a/n)^(B-1)
        assert expected_conflict_fraction(2, 10, 100) == pytest.approx(0.1)
        assert expected_conflict_fraction(1, 10, 100) == pytest.approx(0.0)
        assert expected_conflict_fraction(5, 1, 1000) < 0.005

    def test_expected_conflict_fraction_validation(self):
        with pytest.raises(ValueError):
            expected_conflict_fraction(0, 1, 10)
        with pytest.raises(ValueError):
            expected_conflict_fraction(2, 20, 10)

    def test_sparser_activations_conflict_less(self, rng):
        """The core HOGWILD-enabling property: conflicts shrink with sparsity."""
        layer_size = 10_000
        batch = 16

        def random_sets(active):
            return [
                rng.choice(layer_size, size=active, replace=False) for _ in range(batch)
            ]

        sparse_report = analyze_update_conflicts(random_sets(10), layer_size)
        dense_report = analyze_update_conflicts(random_sets(2500), layer_size)
        assert (
            sparse_report.conflicted_update_fraction
            < dense_report.conflicted_update_fraction
        )
        assert sparse_report.is_sparse_enough_for_hogwild
        assert not dense_report.is_sparse_enough_for_hogwild


class TestHogwildSimulator:
    def _setup(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        optimizer = network.build_optimizer(
            TrainingConfig(optimizer=OptimizerConfig(learning_rate=2e-3))
        )
        batch = SparseBatch.from_examples(
            tiny_dataset.train[:16],
            feature_dim=tiny_dataset.config.feature_dim,
            label_dim=tiny_dataset.config.label_dim,
        )
        return network, optimizer, batch

    def test_step_reports_conflicts_and_loss(self, tiny_dataset, tiny_network_config):
        network, optimizer, batch = self._setup(tiny_dataset, tiny_network_config)
        simulator = HogwildSimulator(network, optimizer, seed=0)
        report = simulator.step(batch)
        assert report.loss >= 0
        assert report.active_neurons > 0
        assert 0.0 <= report.conflict_report.conflicted_update_fraction <= 1.0
        assert simulator.mean_conflict_fraction() == pytest.approx(
            report.conflict_report.conflicted_update_fraction
        )

    def test_maximally_stale_updates_still_learn(self, tiny_dataset, tiny_network_config):
        network, optimizer, batch = self._setup(tiny_dataset, tiny_network_config)
        simulator = HogwildSimulator(network, optimizer, seed=1)
        first = simulator.step(batch).loss
        for _ in range(15):
            last = simulator.step(batch).loss
        assert last < first

    def test_iteration_counter_advances(self, tiny_dataset, tiny_network_config):
        network, optimizer, batch = self._setup(tiny_dataset, tiny_network_config)
        simulator = HogwildSimulator(network, optimizer, seed=2)
        simulator.step(batch)
        simulator.step(batch)
        assert network.iteration == 2

    def test_mean_conflict_fraction_empty(self, tiny_dataset, tiny_network_config):
        network, optimizer, _ = self._setup(tiny_dataset, tiny_network_config)
        assert HogwildSimulator(network, optimizer).mean_conflict_fraction() == 0.0


class TestBatchParallelExecutor:
    def test_parallel_training_learns(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        optimizer = network.build_optimizer(
            TrainingConfig(optimizer=OptimizerConfig(learning_rate=2e-3))
        )
        executor = BatchParallelExecutor(network, optimizer, num_threads=4)
        batch = SparseBatch.from_examples(
            tiny_dataset.train[:16],
            feature_dim=tiny_dataset.config.feature_dim,
            label_dim=tiny_dataset.config.label_dim,
        )
        first = executor.train_batch(batch)["loss"]
        for _ in range(10):
            metrics = executor.train_batch(batch)
        assert metrics["loss"] < first
        assert metrics["num_threads"] == 4
        assert network.iteration == 11

    def test_invalid_thread_count_raises(self, tiny_dataset, tiny_network_config):
        network = SlideNetwork(tiny_network_config)
        optimizer = network.build_optimizer(TrainingConfig())
        with pytest.raises(ValueError):
            BatchParallelExecutor(network, optimizer, num_threads=0)


class TestWorkerPoolErrorSurfacing:
    """Regression: join() must re-raise worker exceptions, not swallow them."""

    def test_join_reraises_first_worker_exception(self):
        release = threading.Event()

        def loop(index: int) -> None:
            if index == 1:
                raise RuntimeError("worker 1 exploded")
            release.wait(timeout=10.0)

        pool = WorkerPool(3, name="crashy")
        pool.start(loop)
        release.set()
        with pytest.raises(RuntimeError, match="worker 1 exploded"):
            pool.join(timeout=5.0)
        # The error is cleared once raised: a second join is clean.
        pool.join(timeout=5.0)
        assert pool.alive_count() == 0

    def test_join_without_errors_is_silent(self):
        pool = WorkerPool(2, name="quiet")
        pool.start(lambda index: None)
        pool.join(timeout=5.0)
        assert pool.alive_count() == 0
