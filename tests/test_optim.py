"""Tests for the sparse-aware Adam and SGD optimisers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import OptimizerConfig
from repro.optim.adam import AdamOptimizer
from repro.optim.factory import make_optimizer
from repro.optim.sgd import SGDOptimizer


def reference_adam_step(param, grad, m, v, lr, b1, b2, eps, t):
    """Textbook Adam update used as ground truth."""
    m = b1 * m + (1 - b1) * grad
    v = b2 * v + (1 - b2) * grad**2
    m_hat = m / (1 - b1**t)
    v_hat = v / (1 - b2**t)
    return param - lr * m_hat / (np.sqrt(v_hat) + eps), m, v


class TestAdamDense:
    def test_matches_reference_formula(self, rng):
        opt = AdamOptimizer(learning_rate=0.01)
        param = rng.normal(size=(4, 3))
        opt.register("w", param.shape)
        expected = param.copy()
        m = np.zeros_like(param)
        v = np.zeros_like(param)
        for t in range(1, 4):
            grad = rng.normal(size=param.shape)
            opt.begin_step()
            opt.step("w", param, grad)
            expected, m, v = reference_adam_step(
                expected, grad, m, v, 0.01, 0.9, 0.999, 1e-8, t
            )
            np.testing.assert_allclose(param, expected, atol=1e-12)

    def test_minimises_quadratic(self):
        opt = AdamOptimizer(learning_rate=0.1)
        param = np.array([5.0, -3.0])
        opt.register("x", param.shape)
        for _ in range(300):
            opt.begin_step()
            opt.step("x", param, 2 * param)  # gradient of ||x||^2
        assert np.linalg.norm(param) < 0.05

    def test_duplicate_registration_raises(self):
        opt = AdamOptimizer()
        opt.register("w", (2, 2))
        with pytest.raises(ValueError):
            opt.register("w", (2, 2))

    def test_invalid_hyperparameters_raise(self):
        with pytest.raises(ValueError):
            AdamOptimizer(learning_rate=0.0)
        with pytest.raises(ValueError):
            AdamOptimizer(beta1=1.0)
        with pytest.raises(ValueError):
            AdamOptimizer(epsilon=0.0)


class TestAdamSparse:
    def test_sparse_step_equals_dense_on_touched_block(self, rng):
        """A sparse step on a block must equal the dense step restricted to
        that block when the gradient is zero everywhere else."""
        shape = (6, 5)
        grad = np.zeros(shape)
        rows = np.array([1, 4])
        cols = np.array([0, 2, 3])
        block = rng.normal(size=(rows.size, cols.size))
        grad[np.ix_(rows, cols)] = block

        dense_opt = AdamOptimizer(learning_rate=0.05)
        sparse_opt = AdamOptimizer(learning_rate=0.05)
        dense_param = rng.normal(size=shape)
        sparse_param = dense_param.copy()
        dense_opt.register("w", shape)
        sparse_opt.register("w", shape)

        dense_opt.begin_step()
        dense_opt.step("w", dense_param, grad)
        sparse_opt.begin_step()
        sparse_opt.sparse_step("w", sparse_param, rows, cols, block)

        np.testing.assert_allclose(
            sparse_param[np.ix_(rows, cols)], dense_param[np.ix_(rows, cols)], atol=1e-12
        )
        # Untouched coordinates stay exactly as they were.
        untouched = np.ones(shape, dtype=bool)
        untouched[np.ix_(rows, cols)] = False
        np.testing.assert_array_equal(sparse_param[untouched], dense_param[untouched])

    def test_sparse_step_on_bias_vector(self, rng):
        opt = AdamOptimizer(learning_rate=0.01)
        bias = np.zeros(10)
        opt.register("b", bias.shape)
        rows = np.array([2, 7])
        opt.begin_step()
        opt.sparse_step("b", bias, rows, None, np.array([1.0, -1.0]))
        assert bias[2] != 0 and bias[7] != 0
        assert np.all(bias[[0, 1, 3, 4, 5, 6, 8, 9]] == 0)

    def test_empty_rows_is_noop(self, rng):
        opt = AdamOptimizer()
        param = rng.normal(size=(3, 3))
        before = param.copy()
        opt.register("w", param.shape)
        opt.begin_step()
        opt.sparse_step("w", param, np.array([], dtype=np.int64), None, np.zeros((0,)))
        np.testing.assert_array_equal(param, before)

    def test_repeated_sparse_updates_accumulate_moments(self, rng):
        opt = AdamOptimizer(learning_rate=0.1)
        param = np.zeros((4, 4))
        opt.register("w", param.shape)
        rows, cols = np.array([0]), np.array([0])
        for _ in range(50):
            opt.begin_step()
            opt.sparse_step("w", param, rows, cols, np.array([[1.0]]))
        # Persistent positive gradient must drive the weight down monotonically.
        assert param[0, 0] < -1.0
        state = opt.state_of("w")
        assert state["m"][0, 0] > 0
        assert state["v"][0, 0] > 0


class TestSGD:
    def test_plain_sgd_step(self):
        opt = SGDOptimizer(learning_rate=0.5)
        param = np.array([1.0, 2.0])
        opt.register("x", param.shape)
        opt.begin_step()
        opt.step("x", param, np.array([1.0, -1.0]))
        np.testing.assert_allclose(param, [0.5, 2.5])

    def test_momentum_accelerates(self):
        plain = SGDOptimizer(learning_rate=0.1)
        momentum = SGDOptimizer(learning_rate=0.1, momentum=0.9)
        p1 = np.array([1.0])
        p2 = np.array([1.0])
        plain.register("x", (1,))
        momentum.register("x", (1,))
        for _ in range(5):
            plain.begin_step()
            momentum.begin_step()
            plain.step("x", p1, np.array([1.0]))
            momentum.step("x", p2, np.array([1.0]))
        assert p2[0] < p1[0]

    def test_sparse_step_matches_dense_block(self, rng):
        opt_a = SGDOptimizer(learning_rate=0.2, momentum=0.5)
        opt_b = SGDOptimizer(learning_rate=0.2, momentum=0.5)
        shape = (5, 4)
        dense = rng.normal(size=shape)
        sparse = dense.copy()
        opt_a.register("w", shape)
        opt_b.register("w", shape)
        rows, cols = np.array([0, 3]), np.array([1, 2])
        block = rng.normal(size=(2, 2))
        grad = np.zeros(shape)
        grad[np.ix_(rows, cols)] = block
        for _ in range(3):
            opt_a.begin_step()
            opt_b.begin_step()
            opt_a.step("w", dense, grad)
            opt_b.sparse_step("w", sparse, rows, cols, block)
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            SGDOptimizer(momentum=1.0)


class TestFactory:
    def test_builds_adam(self):
        opt = make_optimizer(OptimizerConfig(name="adam", learning_rate=0.01))
        assert isinstance(opt, AdamOptimizer)
        assert opt.learning_rate == 0.01

    def test_builds_sgd(self):
        opt = make_optimizer(OptimizerConfig(name="sgd", learning_rate=0.1, momentum=0.5))
        assert isinstance(opt, SGDOptimizer)
        assert opt.momentum == 0.5


@given(
    lr=st.floats(min_value=1e-4, max_value=0.5),
    steps=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_adam_sparse_dense_equivalence_property(lr, steps):
    """Property: for gradients supported on a fixed block, sparse and dense
    Adam trajectories coincide on that block."""
    rng = np.random.default_rng(0)
    shape = (4, 4)
    rows, cols = np.array([1, 2]), np.array([0, 3])
    dense_opt = AdamOptimizer(learning_rate=lr)
    sparse_opt = AdamOptimizer(learning_rate=lr)
    dense_param = rng.normal(size=shape)
    sparse_param = dense_param.copy()
    dense_opt.register("w", shape)
    sparse_opt.register("w", shape)
    for _ in range(steps):
        block = rng.normal(size=(2, 2))
        grad = np.zeros(shape)
        grad[np.ix_(rows, cols)] = block
        dense_opt.begin_step()
        sparse_opt.begin_step()
        dense_opt.step("w", dense_param, grad)
        sparse_opt.sparse_step("w", sparse_param, rows, cols, block)
    np.testing.assert_allclose(sparse_param, dense_param, atol=1e-10)
