"""Tests for :class:`repro.core.network.SlideNetwork`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.types import SparseBatch, SparseExample, SparseVector


def small_dense_network(input_dim=24, hidden=8, classes=10, seed=0) -> SlideNetwork:
    """A SLIDE network with LSH disabled everywhere (pure sparse-dense math)."""
    config = SlideNetworkConfig(
        input_dim=input_dim,
        layers=(
            LayerConfig(size=hidden, activation="relu"),
            LayerConfig(size=classes, activation="softmax"),
        ),
        seed=seed,
    )
    return SlideNetwork(config)


def small_lsh_network(input_dim=24, hidden=8, classes=40, seed=0) -> SlideNetwork:
    config = SlideNetworkConfig(
        input_dim=input_dim,
        layers=(
            LayerConfig(size=hidden, activation="relu"),
            LayerConfig(
                size=classes,
                activation="softmax",
                lsh=LSHConfig(hash_family="simhash", k=3, l=10, bucket_size=16),
                sampling=SamplingConfig(strategy="vanilla", target_active=10, min_active=6),
            ),
        ),
        seed=seed,
    )
    return SlideNetwork(config)


def make_example(rng, input_dim=24, classes=10, nnz=5, num_labels=2) -> SparseExample:
    indices = np.sort(rng.choice(input_dim, size=nnz, replace=False))
    return SparseExample(
        features=SparseVector(indices=indices, values=rng.normal(size=nnz), dimension=input_dim),
        labels=rng.choice(classes, size=num_labels, replace=False),
    )


class TestForward:
    def test_forward_shapes_and_probabilities(self, rng):
        network = small_dense_network()
        example = make_example(rng)
        result = network.forward_sample(example)
        assert len(result.layer_states) == 2
        assert result.output_probabilities.sum() == pytest.approx(1.0)
        assert result.output_state.num_active == 10

    def test_forward_sparse_matches_dense_when_lsh_disabled(self, rng):
        network = small_dense_network()
        example = make_example(rng)
        result = network.forward_sample(example)
        dense_scores = network.predict_dense(example)
        sparse_scores = np.zeros(network.output_dim)
        sparse_scores[result.active_output_ids] = result.output_probabilities
        np.testing.assert_allclose(sparse_scores, dense_scores, atol=1e-10)

    def test_include_labels_forces_label_neurons_active(self, rng):
        network = small_lsh_network()
        example = make_example(rng, classes=40)
        result = network.forward_sample(example, include_labels=True)
        assert set(example.labels.tolist()).issubset(set(result.active_output_ids.tolist()))

    def test_lsh_network_output_is_sparse(self, rng):
        network = small_lsh_network(classes=60)
        example = make_example(rng, classes=60)
        result = network.forward_sample(example, include_labels=False)
        assert result.output_state.num_active < 60

    def test_work_counters(self, rng):
        network = small_dense_network()
        example = make_example(rng)
        result = network.forward_sample(example)
        assert result.total_active_neurons() == 8 + 10
        # The output layer only consumes the *non-zero* hidden activations
        # (ReLU prunes the rest), so the active-weight count reflects that.
        hidden_nonzero = int(np.count_nonzero(result.layer_states[0].activation))
        assert result.total_active_weights() == (
            8 * example.features.nnz + 10 * hidden_nonzero
        )

    def test_num_parameters(self):
        network = small_dense_network(input_dim=24, hidden=8, classes=10)
        assert network.num_parameters() == 24 * 8 + 8 + 8 * 10 + 10


class TestGradients:
    def test_gradient_matches_finite_differences(self, rng):
        """Numerical gradient check of the sparse backprop on a dense (no-LSH)
        network, where the active set covers every neuron."""
        network = small_dense_network(input_dim=12, hidden=6, classes=5, seed=1)
        example = make_example(rng, input_dim=12, classes=5, nnz=4, num_labels=1)
        label = int(example.labels[0])

        gradient = network.compute_sample_gradient(example)
        output_grad = gradient.weight_grads[1]
        hidden_grad = gradient.weight_grads[0]

        def loss_fn() -> float:
            scores = network.predict_dense(example)
            return -float(np.log(scores[label] + 1e-12))

        eps = 1e-6
        # Check a handful of output-layer weights touched by the example.
        out_state = gradient.layer_states[1]
        for i in [0, 2, 4]:
            for j_pos in range(min(2, out_state.active_in.size)):
                j = int(out_state.active_in[j_pos])
                original = network.layers[1].weights[i, j]
                network.layers[1].weights[i, j] = original + eps
                loss_plus = loss_fn()
                network.layers[1].weights[i, j] = original - eps
                loss_minus = loss_fn()
                network.layers[1].weights[i, j] = original
                numerical = (loss_plus - loss_minus) / (2 * eps)
                analytic = output_grad[i, j_pos]
                assert analytic == pytest.approx(numerical, abs=1e-4)

        # And a couple of hidden-layer weights on the example's support.
        hidden_state = gradient.layer_states[0]
        for i in [0, 3]:
            j_pos = 0
            j = int(hidden_state.active_in[j_pos])
            original = network.layers[0].weights[i, j]
            network.layers[0].weights[i, j] = original + eps
            loss_plus = loss_fn()
            network.layers[0].weights[i, j] = original - eps
            loss_minus = loss_fn()
            network.layers[0].weights[i, j] = original
            numerical = (loss_plus - loss_minus) / (2 * eps)
            analytic = hidden_grad[i, j_pos]
            assert analytic == pytest.approx(numerical, abs=1e-4)

    def test_loss_is_non_negative(self, rng):
        network = small_dense_network()
        example = make_example(rng)
        gradient = network.compute_sample_gradient(example)
        assert gradient.loss >= 0.0

    def test_gradient_footprint_limited_to_active_sets(self, rng):
        network = small_lsh_network(classes=50)
        example = make_example(rng, classes=50)
        gradient = network.compute_sample_gradient(example)
        out_state = gradient.layer_states[1]
        assert gradient.weight_grads[1].shape == (
            out_state.num_active,
            out_state.active_in.size,
        )


class TestTraining:
    def _training_setup(self, rng, network, classes, batch_size=8):
        examples = [make_example(rng, classes=classes) for _ in range(batch_size)]
        batch = SparseBatch.from_examples(
            examples, feature_dim=network.input_dim, label_dim=network.output_dim
        )
        optimizer = network.build_optimizer(
            TrainingConfig(optimizer=OptimizerConfig(learning_rate=5e-3))
        )
        return batch, optimizer

    def test_train_batch_reduces_loss(self, rng):
        network = small_dense_network(classes=10, seed=2)
        batch, optimizer = self._training_setup(rng, network, classes=10)
        losses = [network.train_batch(batch, optimizer)["loss"] for _ in range(25)]
        assert losses[-1] < losses[0]

    def test_hogwild_and_batch_modes_both_learn(self, rng):
        for hogwild in (True, False):
            network = small_dense_network(classes=10, seed=3)
            batch, optimizer = self._training_setup(rng, network, classes=10)
            first = network.train_batch(batch, optimizer, hogwild=hogwild)["loss"]
            for _ in range(20):
                last = network.train_batch(batch, optimizer, hogwild=hogwild)["loss"]
            assert last < first

    def test_train_batch_metrics_keys(self, rng):
        network = small_dense_network()
        batch, optimizer = self._training_setup(rng, network, classes=10)
        metrics = network.train_batch(batch, optimizer)
        assert {"loss", "active_neurons", "active_weights", "batch_size"} <= set(metrics)
        assert metrics["batch_size"] == len(batch)

    def test_iteration_counter_and_rebuilds(self, rng):
        network = small_lsh_network(classes=40, seed=4)
        batch, optimizer = self._training_setup(rng, network, classes=40)
        for _ in range(3):
            network.train_batch(batch, optimizer)
        assert network.iteration == 3

    def test_rebuild_all_tables(self, rng):
        network = small_lsh_network(classes=40, seed=5)
        before = network.output_layer.num_rebuilds
        network.rebuild_all_tables()
        assert network.output_layer.num_rebuilds == before + 1

    def test_average_output_active(self, rng):
        network = small_lsh_network(classes=60, seed=6)
        examples = [make_example(rng, classes=60) for _ in range(5)]
        avg = network.average_output_active(examples)
        assert 0 < avg < 60
        assert network.average_output_active([]) == 0.0
