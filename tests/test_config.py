"""Validation tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)


class TestLSHConfig:
    def test_defaults_are_valid(self):
        config = LSHConfig()
        assert config.k > 0 and config.l > 0

    @pytest.mark.parametrize("field,value", [("k", 0), ("l", 0), ("bucket_size", 0)])
    def test_non_positive_parameters_raise(self, field, value):
        with pytest.raises(ValueError):
            LSHConfig(**{field: value})

    def test_simhash_sparsity_bounds(self):
        with pytest.raises(ValueError):
            LSHConfig(simhash_sparsity=0.0)
        with pytest.raises(ValueError):
            LSHConfig(simhash_sparsity=1.5)

    def test_wta_bin_size_minimum(self):
        with pytest.raises(ValueError):
            LSHConfig(wta_bin_size=1)


class TestRebuildScheduleConfig:
    def test_defaults(self):
        config = RebuildScheduleConfig()
        assert config.initial_period > 0

    def test_negative_decay_raises(self):
        with pytest.raises(ValueError):
            RebuildScheduleConfig(decay=-0.1)

    def test_max_period_below_initial_raises(self):
        with pytest.raises(ValueError):
            RebuildScheduleConfig(initial_period=100, max_period=10)


class TestSamplingConfig:
    def test_defaults(self):
        config = SamplingConfig()
        assert config.strategy == "vanilla"

    def test_zero_target_active_raises(self):
        with pytest.raises(ValueError):
            SamplingConfig(target_active=0)

    def test_negative_min_active_raises(self):
        with pytest.raises(ValueError):
            SamplingConfig(min_active=-1)

    def test_zero_hard_threshold_raises(self):
        with pytest.raises(ValueError):
            SamplingConfig(hard_threshold=0)


class TestLayerConfig:
    def test_uses_lsh_flag(self):
        assert not LayerConfig(size=8).uses_lsh
        assert LayerConfig(size=8, lsh=LSHConfig()).uses_lsh

    def test_non_positive_size_raises(self):
        with pytest.raises(ValueError):
            LayerConfig(size=0)


class TestOptimizerConfig:
    def test_defaults(self):
        config = OptimizerConfig()
        assert config.name == "adam"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"beta1": 1.0},
            {"beta2": -0.1},
            {"epsilon": 0.0},
            {"momentum": 1.0},
        ],
    )
    def test_invalid_hyperparameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            OptimizerConfig(**kwargs)


class TestSlideNetworkConfig:
    def _layers(self, output_activation="softmax"):
        return (
            LayerConfig(size=16, activation="relu"),
            LayerConfig(size=32, activation=output_activation),
        )

    def test_valid_config(self):
        config = SlideNetworkConfig(input_dim=64, layers=self._layers())
        assert config.output_dim == 32

    def test_final_layer_must_be_softmax(self):
        with pytest.raises(ValueError, match="softmax"):
            SlideNetworkConfig(input_dim=64, layers=self._layers("relu"))

    def test_empty_layers_raise(self):
        with pytest.raises(ValueError):
            SlideNetworkConfig(input_dim=64, layers=())

    def test_non_positive_input_dim_raises(self):
        with pytest.raises(ValueError):
            SlideNetworkConfig(input_dim=0, layers=self._layers())


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.batch_size > 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"batch_size": 0}, {"epochs": 0}, {"eval_every": -1}, {"eval_samples": 0}],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestRouterConfig:
    def test_defaults(self):
        from repro.config import RouterConfig

        config = RouterConfig()
        assert config.num_replicas == 2
        assert config.retry_max_attempts == 3
        assert config.degradation_budget_steps == (0.5, 0.25)
        # Ladder: level 0 full, one level per budget step, then
        # rerank-off, then router-side shed.
        assert config.max_degradation_level == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_replicas": 0},
            {"health_interval_s": 0.0},
            {"probe_timeout_s": -1.0},
            {"readiness_max_staleness": -1},
            {"retry_max_attempts": 0},
            {"retry_backoff_base_s": -0.01},
            {"retry_backoff_base_s": 0.5, "retry_backoff_max_s": 0.1},
            {"request_deadline_s": 0.0},
            {"attempt_timeout_s": 0.0},
            {"breaker_failure_threshold": 0},
            {"breaker_p99_ms": 0.0},
            {"breaker_window": 0},
            {"breaker_recovery_s": -1.0},
            {"breaker_half_open_probes": 0},
            {"degradation_budget_steps": (0.5, 1.5)},
            {"degradation_budget_steps": (0.25, 0.5)},
            {"degradation_interval_s": 0.0},
            {"degradation_queue_high": 0.0},
            {"degradation_up_patience": 0},
            {"degradation_down_patience": 0},
            {"degradation_shed_depth": 0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        from repro.config import RouterConfig

        with pytest.raises(ValueError):
            RouterConfig(**kwargs)

    def test_budget_steps_coerced_to_tuple(self):
        from repro.config import RouterConfig

        config = RouterConfig(degradation_budget_steps=[0.6, 0.3])
        assert config.degradation_budget_steps == (0.6, 0.3)

    def test_dict_round_trip(self):
        import json as _json

        from repro.config import (
            RouterConfig,
            router_config_from_dict,
            router_config_to_dict,
        )

        config = RouterConfig(
            num_replicas=3,
            breaker_p99_ms=50.0,
            degradation_budget_steps=(0.75, 0.5, 0.125),
        )
        data = _json.loads(_json.dumps(router_config_to_dict(config)))
        assert router_config_from_dict(data) == config

    def test_from_dict_rejects_unknown_and_bad_fields(self):
        from repro.config import router_config_from_dict

        with pytest.raises(ValueError, match="unknown router config field"):
            router_config_from_dict({"replicas": 3})
        with pytest.raises(ValueError, match="num_replicas"):
            router_config_from_dict({"num_replicas": "many"})
