"""Validation tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)


class TestLSHConfig:
    def test_defaults_are_valid(self):
        config = LSHConfig()
        assert config.k > 0 and config.l > 0

    @pytest.mark.parametrize("field,value", [("k", 0), ("l", 0), ("bucket_size", 0)])
    def test_non_positive_parameters_raise(self, field, value):
        with pytest.raises(ValueError):
            LSHConfig(**{field: value})

    def test_simhash_sparsity_bounds(self):
        with pytest.raises(ValueError):
            LSHConfig(simhash_sparsity=0.0)
        with pytest.raises(ValueError):
            LSHConfig(simhash_sparsity=1.5)

    def test_wta_bin_size_minimum(self):
        with pytest.raises(ValueError):
            LSHConfig(wta_bin_size=1)


class TestRebuildScheduleConfig:
    def test_defaults(self):
        config = RebuildScheduleConfig()
        assert config.initial_period > 0

    def test_negative_decay_raises(self):
        with pytest.raises(ValueError):
            RebuildScheduleConfig(decay=-0.1)

    def test_max_period_below_initial_raises(self):
        with pytest.raises(ValueError):
            RebuildScheduleConfig(initial_period=100, max_period=10)


class TestSamplingConfig:
    def test_defaults(self):
        config = SamplingConfig()
        assert config.strategy == "vanilla"

    def test_zero_target_active_raises(self):
        with pytest.raises(ValueError):
            SamplingConfig(target_active=0)

    def test_negative_min_active_raises(self):
        with pytest.raises(ValueError):
            SamplingConfig(min_active=-1)

    def test_zero_hard_threshold_raises(self):
        with pytest.raises(ValueError):
            SamplingConfig(hard_threshold=0)


class TestLayerConfig:
    def test_uses_lsh_flag(self):
        assert not LayerConfig(size=8).uses_lsh
        assert LayerConfig(size=8, lsh=LSHConfig()).uses_lsh

    def test_non_positive_size_raises(self):
        with pytest.raises(ValueError):
            LayerConfig(size=0)


class TestOptimizerConfig:
    def test_defaults(self):
        config = OptimizerConfig()
        assert config.name == "adam"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"beta1": 1.0},
            {"beta2": -0.1},
            {"epsilon": 0.0},
            {"momentum": 1.0},
        ],
    )
    def test_invalid_hyperparameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            OptimizerConfig(**kwargs)


class TestSlideNetworkConfig:
    def _layers(self, output_activation="softmax"):
        return (
            LayerConfig(size=16, activation="relu"),
            LayerConfig(size=32, activation=output_activation),
        )

    def test_valid_config(self):
        config = SlideNetworkConfig(input_dim=64, layers=self._layers())
        assert config.output_dim == 32

    def test_final_layer_must_be_softmax(self):
        with pytest.raises(ValueError, match="softmax"):
            SlideNetworkConfig(input_dim=64, layers=self._layers("relu"))

    def test_empty_layers_raise(self):
        with pytest.raises(ValueError):
            SlideNetworkConfig(input_dim=64, layers=())

    def test_non_positive_input_dim_raises(self):
        with pytest.raises(ValueError):
            SlideNetworkConfig(input_dim=0, layers=self._layers())


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.batch_size > 0

    @pytest.mark.parametrize(
        "kwargs",
        [{"batch_size": 0}, {"epochs": 0}, {"eval_every": -1}, {"eval_samples": 0}],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)
