"""HTTP/JSON front-end: predict, health, stats, and error handling."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import ServingConfig
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.serving import ServingRuntime, build_server


@pytest.fixture(scope="module")
def http_server(tiny_dataset, request):
    """A live server over a briefly trained network, torn down after the module."""
    from repro.config import (
        LayerConfig,
        LSHConfig,
        OptimizerConfig,
        SamplingConfig,
        SlideNetworkConfig,
        TrainingConfig,
    )

    lsh = LSHConfig(hash_family="simhash", k=3, l=16, bucket_size=64)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=3
        )
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(batch_size=16, epochs=1, optimizer=OptimizerConfig(), seed=11),
    )
    trainer.train(tiny_dataset.train[:96], tiny_dataset.test[:32])

    config = ServingConfig(num_workers=2, max_batch_size=8, max_wait_ms=1.0, top_k=3)
    runtime = ServingRuntime.from_network(network, config).start()
    server = build_server(runtime, port=0)  # port 0 = any free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    host, port = server.address
    base = f"http://{host}:{port}"

    def teardown():
        server.shutdown()
        thread.join(timeout=5.0)

    request.addfinalizer(teardown)
    return base, tiny_dataset


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload: dict):
    data = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=30) as response:
        return response.status, json.loads(response.read())


def test_healthz(http_server):
    base, _ = http_server
    status, payload = _get(base + "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["workers"] == 2


def test_predict_endpoint(http_server):
    base, dataset = http_server
    example = dataset.test[0]
    status, payload = _post(
        base + "/v1/predict",
        {
            "indices": [int(i) for i in example.features.indices],
            "values": [float(v) for v in example.features.values],
            "k": 5,
        },
    )
    assert status == 200
    assert len(payload["class_ids"]) == 5
    assert len(payload["scores"]) == 5
    assert payload["mode"] in ("sparse", "dense_fallback")
    assert all(0 <= i < dataset.config.label_dim for i in payload["class_ids"])
    # Scores come back sorted descending.
    assert payload["scores"] == sorted(payload["scores"], reverse=True)


def test_stats_endpoint_populated_after_traffic(http_server):
    base, dataset = http_server
    for example in dataset.test[:10]:
        _post(
            base + "/v1/predict",
            {
                "indices": [int(i) for i in example.features.indices],
                "values": [float(v) for v in example.features.values],
            },
        )
    status, stats = _get(base + "/v1/stats")
    assert status == 200
    assert stats["requests"] >= 10
    assert stats["latency_ms"]["p50"] > 0
    assert stats["throughput_rps"] > 0
    assert stats["engine"] == "sparse"


def test_predict_rejects_malformed_body(http_server):
    base, _ = http_server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(base + "/v1/predict", {"values": [1.0]})
    assert excinfo.value.code == 400


def test_predict_rejects_out_of_range_indices(http_server):
    base, dataset = http_server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(
            base + "/v1/predict",
            {"indices": [dataset.config.feature_dim + 5], "values": [1.0]},
        )
    assert excinfo.value.code == 400


def test_unknown_path_404(http_server):
    base, _ = http_server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(base + "/nope")
    assert excinfo.value.code == 404


# ----------------------------------------------------------------------
# Error paths: body limits, bad framing, concurrency with hot swaps
# ----------------------------------------------------------------------
def _raw_post(base: str, content_length: str, body: bytes = b""):
    """POST with full control over the Content-Length header."""
    import http.client

    host, port = base.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10)
    try:
        conn.putrequest("POST", "/v1/predict")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", content_length)
        conn.endheaders()
        if body:
            conn.send(body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_predict_rejects_invalid_json_body(http_server):
    base, _ = http_server
    body = b"{definitely not json"
    status, payload = _raw_post(base, str(len(body)), body)
    assert status == 400
    assert "error" in payload


def test_predict_rejects_non_integer_content_length(http_server):
    base, _ = http_server
    status, payload = _raw_post(base, "banana")
    assert status == 400
    assert "Content-Length" in payload["error"]


def test_predict_rejects_negative_content_length(http_server):
    base, _ = http_server
    status, payload = _raw_post(base, "-5")
    assert status == 400
    assert "Content-Length" in payload["error"]


def test_predict_rejects_oversized_body_without_reading_it(http_server):
    base, _ = http_server
    # Declare 100 MiB; the server must answer 413 from the header alone —
    # no body is ever sent, so a hang here would mean it tried to read.
    status, payload = _raw_post(base, str(100 * 1024 * 1024))
    assert status == 413
    assert payload["cause"] == "body_too_large"


def test_max_body_bytes_is_configurable(tiny_dataset):
    from repro.serving import ServingRuntime as _Runtime

    network = _tiny_server_network(tiny_dataset)
    config = ServingConfig(num_workers=1, max_body_bytes=64)
    runtime = _Runtime.from_network(network, config).start()
    server = build_server(runtime, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.address
        base = f"http://{host}:{port}"
        status, payload = _raw_post(base, "65")
        assert status == 413
        body = b'{"indices": [1], "values": [1.0]}'
        assert len(body) <= 64
        status, _ = _raw_post(base, str(len(body)), body)
        assert status == 200
    finally:
        server.shutdown()
        thread.join(timeout=5.0)


def _tiny_server_network(tiny_dataset, seed: int = 3) -> SlideNetwork:
    from repro.config import LayerConfig, LSHConfig, SlideNetworkConfig

    lsh = LSHConfig(hash_family="simhash", k=3, l=8, bucket_size=64)
    layers = (
        LayerConfig(size=16, activation="relu", lsh=None),
        LayerConfig(size=tiny_dataset.config.label_dim, activation="softmax", lsh=lsh),
    )
    return SlideNetwork(
        SlideNetworkConfig(
            input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=seed
        )
    )


def test_predict_succeeds_during_hot_swap(tiny_dataset):
    from repro.serving import ServingRuntime as _Runtime

    network = _tiny_server_network(tiny_dataset)
    runtime = _Runtime.from_network(network, ServingConfig(num_workers=2)).start()
    server = build_server(runtime, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.address
        base = f"http://{host}:{port}"
        example = tiny_dataset.test[0]
        payload = {
            "indices": [int(i) for i in example.features.indices],
            "values": [float(v) for v in example.features.values],
        }
        stop = threading.Event()

        def swap_loop():
            seed = 100
            while not stop.is_set():
                runtime.engine.hot_swap(
                    _tiny_server_network(tiny_dataset, seed=seed)
                )
                seed += 1

        swapper = threading.Thread(target=swap_loop, daemon=True)
        swapper.start()
        try:
            for _ in range(20):
                status, answer = _post(base + "/v1/predict", payload)
                assert status == 200
                assert answer["generation"] >= 0
        finally:
            stop.set()
            swapper.join(timeout=5.0)
    finally:
        server.shutdown()
        thread.join(timeout=5.0)


def test_readiness_endpoint_tracks_worker_pool(tiny_dataset, tmp_path):
    from repro.serving import CheckpointStore, OnlineRuntime

    store = CheckpointStore(tmp_path / "store")
    store.save(_tiny_server_network(tiny_dataset))
    runtime = OnlineRuntime(store, ServingConfig(num_workers=2)).start()
    server = build_server(runtime, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.address
        base = f"http://{host}:{port}"
        status, payload = _get(base + "/healthz/ready")
        assert status == 200
        assert payload["status"] == "ready"

        runtime.pool.resize(0)
        deadline = _wait_deadline()
        while runtime.alive_workers() and time.monotonic() < deadline:
            time.sleep(0.01)
        # Liveness stays green — the process answers — while readiness
        # flips to 503 so a router or LB can drain this replica.
        status, payload = _get(base + "/healthz")
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/healthz/ready")
        assert excinfo.value.code == 503
        detail = json.loads(excinfo.value.read())
        assert detail["detail"] == "no alive workers"

        runtime.pool.resize(2)
        status, payload = _get(base + "/healthz/ready")
        assert status == 200
    finally:
        server.shutdown()
        thread.join(timeout=5.0)


def _wait_deadline(seconds: float = 5.0) -> float:
    return time.monotonic() + seconds
