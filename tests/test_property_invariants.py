"""Cross-cutting property-based tests (hypothesis) for core invariants.

These complement the per-module property tests with invariants that span
module boundaries: LSH index consistency under arbitrary insert/remove
sequences, fingerprint injectivity, workload-count algebra, rebuild-schedule
monotonicity, and simulator monotonicity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LSHConfig
from repro.lsh.index import LSHIndex
from repro.lsh.policies import FIFOPolicy
from repro.lsh.scheduler import ExponentialDecaySchedule
from repro.lsh.table import HashTable
from repro.perf.cost_model import WorkloadCounts, slide_iteration_work
from repro.perf.devices import SLIDE_CPU_PROFILE, TF_GPU_PROFILE
from repro.perf.simulator import WallClockSimulator


@given(
    seed=st.integers(0, 100),
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "remove", "update"]), st.integers(0, 15)),
        min_size=1,
        max_size=40,
    ),
)
@settings(max_examples=40, deadline=None)
def test_lsh_index_consistent_under_arbitrary_operation_sequences(seed, operations):
    """After any sequence of insert/remove/update operations the index's item
    count matches the set of live ids, and every table holds exactly the live
    ids (buckets large enough to never evict)."""
    rng = np.random.default_rng(seed)
    config = LSHConfig(hash_family="simhash", k=2, l=3, bucket_size=64)
    index = LSHIndex(8, config, seed=seed)
    live: set[int] = set()
    vectors = rng.normal(size=(16, 8))
    for op, item in operations:
        if op == "insert":
            index.insert(item, vectors[item])
            live.add(item)
        elif op == "update":
            vectors[item] = rng.normal(size=8)
            index.update(np.array([item]), vectors[item][None, :])
            live.add(item)
        else:
            index.remove(item)
            live.discard(item)
    assert index.num_items == len(live)
    for table in index.tables:
        assert table.num_items == len(live)


@given(
    k=st.integers(1, 5),
    cardinality=st.integers(2, 6),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_fingerprint_injective_on_random_code_pairs(k, cardinality, data):
    table = HashTable(k=k, code_cardinality=cardinality, bucket_size=4, policy=FIFOPolicy())
    codes_a = np.array(
        data.draw(st.lists(st.integers(0, cardinality - 1), min_size=k, max_size=k))
    )
    codes_b = np.array(
        data.draw(st.lists(st.integers(0, cardinality - 1), min_size=k, max_size=k))
    )
    fp_a, fp_b = table.fingerprint(codes_a), table.fingerprint(codes_b)
    if np.array_equal(codes_a, codes_b):
        assert fp_a == fp_b
    else:
        assert fp_a != fp_b


@given(
    initial=st.integers(1, 100),
    decay=st.floats(0.0, 1.5),
    rebuilds=st.integers(1, 15),
)
@settings(max_examples=60, deadline=None)
def test_rebuild_schedule_iterations_strictly_increase(initial, decay, rebuilds):
    schedule = ExponentialDecaySchedule(initial_period=initial, decay=decay, max_period=10**6)
    planned = schedule.planned_iterations(rebuilds)
    assert all(b > a for a, b in zip(planned, planned[1:]))
    # Gaps never shrink (exponential decay of the *frequency*), up to the
    # +/-1 jitter introduced by rounding the cumulative sum to integers.
    gaps = np.diff([0] + planned)
    assert all(b >= a - 1 for a, b in zip(gaps, gaps[1:]))


@given(
    dense=st.floats(0, 1e9),
    sparse=st.floats(0, 1e9),
    hashes=st.floats(0, 1e7),
    lookups=st.floats(0, 1e5),
    factor=st.floats(0.1, 10.0),
)
@settings(max_examples=60, deadline=None)
def test_workload_counts_algebra(dense, sparse, hashes, lookups, factor):
    a = WorkloadCounts(dense, sparse, hashes, lookups, 0.0)
    b = WorkloadCounts(1.0, 2.0, 3.0, 4.0, 5.0)
    total = a + b
    assert total.total_macs == pytest.approx(a.total_macs + b.total_macs)
    scaled = a.scaled(factor)
    assert scaled.dense_macs == pytest.approx(dense * factor)
    # Scaling and adding commute: (a + b) * f == a*f + b*f
    lhs = (a + b).scaled(factor)
    rhs = a.scaled(factor) + b.scaled(factor)
    assert lhs.total_macs == pytest.approx(rhs.total_macs)
    assert lhs.table_lookups == pytest.approx(rhs.table_lookups)


@given(
    batch=st.integers(1, 512),
    active=st.floats(1, 10_000),
    cores=st.integers(1, 44),
)
@settings(max_examples=60, deadline=None)
def test_device_times_positive_and_cpu_gpu_consistent(batch, active, cores):
    work = slide_iteration_work(batch, 75, 128, active, 8, 50, output_dim=670_091)
    cpu_time = SLIDE_CPU_PROFILE.iteration_seconds(work, cores=cores)
    gpu_time = TF_GPU_PROFILE.iteration_seconds(work)
    assert cpu_time > 0 and gpu_time > 0
    # More cores never hurt.
    assert SLIDE_CPU_PROFILE.iteration_seconds(work, cores=44) <= cpu_time + 1e-12


@given(
    accuracies=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_simulated_run_time_axis_is_monotone(accuracies):
    work = [WorkloadCounts(dense_macs=1e6)] * len(accuracies)
    run = WallClockSimulator(TF_GPU_PROFILE).simulate("x", work, accuracies)
    assert np.all(np.diff(run.cumulative_seconds) > 0)
    best = max(accuracies)
    reached = run.time_to_accuracy(best)
    assert reached is not None
    assert reached <= run.cumulative_seconds[-1] + 1e-12
