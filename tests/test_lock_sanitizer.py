"""Runtime lock sanitizer (:mod:`repro.utils.sanitize`).

Covers the detector itself (a deliberately injected lock-order inversion
must be caught; consistent orders must not) and the real serving paths the
CI ``REPRO_SANITIZE=1`` shard exercises: concurrent predict + hot-swap, and
a full router predict cycle, both of which must leave the sanitizer clean.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import ServingConfig
from repro.core.network import SlideNetwork
from repro.serving.engine import DenseInferenceEngine
from repro.serving.pool import ServingRuntime
from repro.utils import sanitize
from repro.utils.rwlock import ReadWriteLock


@pytest.fixture
def sanitizer():
    instance = sanitize.get_sanitizer()
    instance.clear()
    instance.enable()
    yield instance
    # Restore the env-derived state: in the REPRO_SANITIZE=1 CI shard the
    # sanitizer must stay on for the rest of the session.
    if not sanitize.enabled_from_env():
        instance.disable()
    instance.clear()


# ----------------------------------------------------------------------
# Detector mechanics
# ----------------------------------------------------------------------
class TestDetector:
    def test_injected_lock_order_inversion_is_detected(self, sanitizer):
        alpha = sanitize.lock("alpha")
        beta = sanitize.lock("beta")
        with alpha:
            with beta:
                pass
        with beta:
            with alpha:  # the reverse order: textbook deadlock ingredient
                pass
        kinds = [report.kind for report in sanitizer.reports()]
        assert "lock_order_inversion" in kinds
        with pytest.raises(AssertionError, match="lock_order_inversion"):
            sanitizer.assert_clean()

    def test_consistent_order_stays_clean(self, sanitizer):
        alpha = sanitize.lock("alpha")
        beta = sanitize.lock("beta")
        for _ in range(3):
            with alpha:
                with beta:
                    pass
        sanitizer.assert_clean()

    def test_inversion_across_threads_is_detected(self, sanitizer):
        alpha = sanitize.lock("alpha")
        beta = sanitize.lock("beta")

        def forward():
            with alpha:
                with beta:
                    pass

        def backward():
            with beta:
                with alpha:
                    pass

        first = threading.Thread(target=forward)
        first.start()
        first.join()
        second = threading.Thread(target=backward)
        second.start()
        second.join()
        assert any(
            report.kind == "lock_order_inversion" for report in sanitizer.reports()
        )

    def test_held_while_blocking_is_detected(self, sanitizer):
        mutex = sanitize.lock("serving.fixture")
        with mutex:
            sanitize.note_blocking("test sleep")
        (report,) = sanitizer.reports()
        assert report.kind == "held_while_blocking"
        assert "serving.fixture" in report.detail

    def test_blocking_with_nothing_held_is_fine(self, sanitizer):
        sanitize.note_blocking("drain wait")
        sanitizer.assert_clean()

    def test_disabled_sanitizer_records_nothing(self):
        instance = sanitize.get_sanitizer()
        instance.disable()
        instance.clear()
        try:
            mutex = sanitize.lock("ignored")
            with mutex:
                sanitize.note_blocking("anything")
            assert instance.reports() == []
        finally:
            if sanitize.enabled_from_env():
                instance.enable()

    def test_reentrant_same_name_is_not_an_inversion(self, sanitizer):
        outer = ReadWriteLock(name="nest")
        with outer.read_locked():
            with outer.read_locked():  # read locks may nest
                pass
        sanitizer.assert_clean()

    def test_rwlock_sides_report_under_distinct_names(self, sanitizer):
        gate = ReadWriteLock(name="gate")
        mutex = sanitize.lock("mutex")
        with gate.write_locked():
            with mutex:
                pass
        with mutex:
            gate.acquire_write()
            gate.release_write()
        assert any(
            report.kind == "lock_order_inversion"
            and "gate:w" in report.detail
            and "mutex" in report.detail
            for report in sanitizer.reports()
        )

    def test_enabled_from_env(self):
        assert sanitize.enabled_from_env({"REPRO_SANITIZE": "1"})
        assert not sanitize.enabled_from_env({"REPRO_SANITIZE": "0"})
        assert not sanitize.enabled_from_env({})


# ----------------------------------------------------------------------
# Real serving paths must stay clean under the sanitizer
# ----------------------------------------------------------------------
class TestServingPathsClean:
    def test_concurrent_predict_and_hot_swap_are_clean(
        self, sanitizer, tiny_dataset, tiny_network_config
    ):
        from dataclasses import replace as dc_replace

        engine = DenseInferenceEngine(SlideNetwork(tiny_network_config))
        incoming = SlideNetwork(dc_replace(tiny_network_config, seed=41))
        examples = list(tiny_dataset.test[:8])

        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            while not stop.is_set():
                try:
                    engine.predict_batch_guarded(examples, k=3)
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(3):
            engine.hot_swap(incoming)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        sanitizer.assert_clean()

    def test_serving_runtime_cycle_is_clean(
        self, sanitizer, tiny_dataset, tiny_network_config
    ):
        config = ServingConfig(
            engine="dense", num_workers=2, max_batch_size=8, max_wait_ms=1.0
        )
        runtime = ServingRuntime.from_network(SlideNetwork(tiny_network_config), config)
        examples = list(tiny_dataset.test[:16])
        with runtime:
            predictions = runtime.predict_many(examples, k=3)
        assert len(predictions) == len(examples)
        sanitizer.assert_clean()
