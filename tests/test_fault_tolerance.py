"""The fault-tolerant training runtime: injection, supervision, resume.

Covers the deterministic fault-injection framework (specs fire at exact
``(worker, batch)`` coordinates, ``once`` semantics across restarts, torn
checkpoints and NaN-poisoned shared arrays), the supervised HOGWILD
runtime (SIGKILL mid-epoch → run completes with restarts and measured
recovery latency; hung worker → stale-heartbeat kill; restart budget
exhausted → remaining work reassigned to survivors), and checkpoint/resume
parity: a run resumed from a mid-epoch checkpoint reproduces the
uninterrupted run's loss trajectory bitwise, and a torn newest version
falls back to the previous intact one.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.config import (
    FaultToleranceConfig,
    fault_tolerance_config_from_dict,
    fault_tolerance_config_to_dict,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.data.ingest import ingest_examples
from repro.data.shards import ShardedDataset
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_shared_array,
    tear_checkpoint,
)
from repro.parallel.sharedmem import ProcessHogwildTrainer
from repro.serving import (
    CheckpointError,
    CheckpointStore,
    save_checkpoint,
    verify_checkpoint,
)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _sharded(tiny_dataset, tmp_path, shard_size=24) -> ShardedDataset:
    cache = tmp_path / "shards"
    ingest_examples(
        tiny_dataset.train,
        feature_dim=tiny_dataset.config.feature_dim,
        label_dim=tiny_dataset.config.label_dim,
        cache_dir=cache,
        shard_size=shard_size,
    )
    return ShardedDataset(cache, seed=0)


# ----------------------------------------------------------------------
# Fault specs / plans / injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", worker_id=0, at_batch=0)
        with pytest.raises(ValueError, match="worker_id"):
            FaultSpec(kind="kill", worker_id=-1, at_batch=0)
        with pytest.raises(ValueError, match="at_batch"):
            FaultSpec(kind="kill", worker_id=0, at_batch=-1)
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec(kind="hang", worker_id=0, at_batch=0, duration_s=-1.0)

    def test_plan_round_trips_through_dict(self):
        plan = FaultPlan.of(
            FaultSpec(kind="kill", worker_id=1, at_batch=3),
            FaultSpec(kind="hang", worker_id=0, at_batch=5, duration_s=2.0, once=False),
        )
        assert bool(plan)
        assert not bool(FaultPlan())
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan
        assert restored.for_worker(1) == (plan.specs[0],)
        assert restored.for_worker(7) == ()

    def test_injector_fires_crash_at_exact_coordinate(self):
        injector = FaultInjector(
            specs=(FaultSpec(kind="crash", worker_id=0, at_batch=2),)
        )
        injector.on_batch()  # batch 0
        injector.on_batch()  # batch 1
        with pytest.raises(InjectedFault, match="at batch 2"):
            injector.on_batch()

    def test_once_faults_do_not_refire_after_restart(self):
        spec = FaultSpec(kind="crash", worker_id=0, at_batch=2, once=True)
        # The restarted incarnation replays through the same coordinates.
        injector = FaultInjector(specs=(spec,), incarnation=1, start_batch=0)
        for _ in range(6):
            injector.on_batch()  # never fires

    def test_repeating_fault_honours_start_batch_offset(self):
        spec = FaultSpec(kind="crash", worker_id=0, at_batch=3, once=False)
        # Restarted worker fast-forwarded past 2 batches: global batch
        # coordinates continue at 2, so the fault fires on its 2nd batch.
        injector = FaultInjector(specs=(spec,), incarnation=1, start_batch=2)
        injector.on_batch()  # global batch 2
        with pytest.raises(InjectedFault):
            injector.on_batch()  # global batch 3

    def test_from_payload_filters_by_worker_and_carries_start_batch(self):
        plan = FaultPlan.of(
            FaultSpec(kind="crash", worker_id=0, at_batch=0),
            FaultSpec(kind="crash", worker_id=1, at_batch=0),
        )
        payload = {"fault_plan": plan.to_dict(), "start_batch": 4}
        injector = FaultInjector.from_payload(payload, worker_id=1, incarnation=2)
        assert injector.specs == (plan.specs[1],)
        assert injector.start_batch == 4
        assert injector.incarnation == 2
        # No plan in the payload → inert injector.
        empty = FaultInjector.from_payload({}, worker_id=0, incarnation=0)
        assert empty.specs == ()
        empty.on_batch()

    def test_slow_fault_keeps_training(self):
        injector = FaultInjector(
            specs=(FaultSpec(kind="slow", worker_id=0, at_batch=0, duration_s=0.01),)
        )
        injector.on_batch()  # sleeps briefly, returns
        assert injector.batches_seen == 1


class TestFaultToleranceConfig:
    def test_validation_names_bad_fields(self):
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            FaultToleranceConfig(heartbeat_timeout_s=-1.0)
        with pytest.raises(ValueError, match="poll_interval_s"):
            FaultToleranceConfig(poll_interval_s=0.0)
        with pytest.raises(ValueError, match="max_restarts"):
            FaultToleranceConfig(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff_max_s"):
            FaultToleranceConfig(backoff_base_s=2.0, backoff_max_s=1.0)
        with pytest.raises(ValueError, match="checkpoint_keep_last"):
            FaultToleranceConfig(checkpoint_keep_last=0)

    def test_backoff_doubles_and_caps(self):
        config = FaultToleranceConfig(backoff_base_s=0.1, backoff_max_s=0.5)
        assert config.restart_backoff_s(1) == pytest.approx(0.1)
        assert config.restart_backoff_s(2) == pytest.approx(0.2)
        assert config.restart_backoff_s(3) == pytest.approx(0.4)
        assert config.restart_backoff_s(4) == pytest.approx(0.5)  # capped
        with pytest.raises(ValueError):
            config.restart_backoff_s(0)

    def test_dict_round_trip_is_strict(self):
        config = FaultToleranceConfig(max_restarts=5, checkpoint_every_batches=7)
        data = fault_tolerance_config_to_dict(config)
        assert fault_tolerance_config_from_dict(data) == config
        with pytest.raises(ValueError, match="unknown fault tolerance"):
            fault_tolerance_config_from_dict({**data, "typo_field": 1})


# ----------------------------------------------------------------------
# Storage-level fault helpers
# ----------------------------------------------------------------------
class TestStorageFaults:
    def test_torn_checkpoint_fails_verification(
        self, tmp_path, tiny_network_config
    ):
        network = SlideNetwork(tiny_network_config)
        path = tmp_path / "ckpt"
        save_checkpoint(path, network)
        assert verify_checkpoint(path)  # intact before the tear
        tear_checkpoint(path)
        with pytest.raises(CheckpointError):
            verify_checkpoint(path)

    def test_store_falls_back_past_torn_newest(
        self, tmp_path, tiny_network_config
    ):
        network = SlideNetwork(tiny_network_config)
        store = CheckpointStore(tmp_path / "store")
        good = store.save(network)
        torn = store.save(network)
        tear_checkpoint(torn)
        assert store.latest().name == torn.name
        assert store.latest_valid().name == good.name

    def test_tear_requires_arrays(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            tear_checkpoint(tmp_path / "missing")

    def test_corrupt_shared_array_is_deterministic(self):
        first = np.zeros(100, dtype=np.float64)
        second = np.zeros(100, dtype=np.float64)
        count = corrupt_shared_array(first, fraction=0.25, seed=7)
        assert count == 25
        assert int(np.isnan(first).sum()) == 25
        corrupt_shared_array(second, fraction=0.25, seed=7)
        np.testing.assert_array_equal(np.isnan(first), np.isnan(second))
        with pytest.raises(ValueError):
            corrupt_shared_array(first, fraction=0.0)


# ----------------------------------------------------------------------
# Inline checkpoint / resume parity
# ----------------------------------------------------------------------
# Both runs must checkpoint on the same cadence: saving pre-rebuilds dirty
# LSH tables, which changes sampling for subsequent batches, so parity is a
# statement about two identically-checkpointed trajectories.
_INLINE_FT = FaultToleranceConfig(checkpoint_every_batches=5, checkpoint_keep_last=10)


class TestInlineResume:
    @pytest.fixture()
    def baseline(self, tmp_path, tiny_dataset, tiny_network_config, tiny_training_config):
        config = dataclasses.replace(tiny_training_config, epochs=2)
        network = SlideNetwork(tiny_network_config)
        trainer = SlideTrainer(
            network,
            config,
            hogwild=False,
            checkpoint_dir=tmp_path / "base",
            fault_tolerance=_INLINE_FT,
        )
        history = trainer.train(tiny_dataset.train)
        return {
            "config": config,
            "network": network,
            "store": CheckpointStore(tmp_path / "base"),
            "losses": history.losses(),
        }

    @staticmethod
    def _train_state(version):
        manifest = json.loads((version / "manifest.json").read_text())
        return manifest["metadata"]["train_state"]

    def test_mid_epoch_resume_matches_uninterrupted_losses_bitwise(
        self, tmp_path, tiny_dataset, tiny_network_config, baseline
    ):
        batches_per_epoch = -(-len(tiny_dataset.train) // baseline["config"].batch_size)
        # Pick a checkpoint strictly inside the second epoch — the hardest
        # resume point: mid-epoch, mid-shuffle, with optimizer momentum.
        chosen = None
        for version in baseline["store"].versions():
            state = self._train_state(version)
            if state["epoch"] == 1 and state["batches_done"] > 0:
                chosen = (version, state)
                break
        assert chosen is not None, "expected a mid-epoch checkpoint in epoch 1"
        version, state = chosen
        position = state["epoch"] * batches_per_epoch + state["batches_done"]

        resumed_network = SlideNetwork(tiny_network_config)
        resumed = SlideTrainer(
            resumed_network,
            baseline["config"],
            hogwild=False,
            checkpoint_dir=tmp_path / "resumed",
            fault_tolerance=_INLINE_FT,
        )
        history = resumed.train(tiny_dataset.train, resume=version)

        # The resumed run replays exactly the suffix of the baseline run.
        expected_suffix = baseline["losses"][position:]
        assert len(history.records) == len(expected_suffix)
        np.testing.assert_array_equal(history.losses(), expected_suffix)
        for base_layer, res_layer in zip(
            baseline["network"].layers, resumed_network.layers
        ):
            np.testing.assert_array_equal(base_layer.weights, res_layer.weights)
            np.testing.assert_array_equal(base_layer.biases, res_layer.biases)

    def test_resume_from_store_root_skips_torn_newest(
        self, tmp_path, tiny_dataset, tiny_network_config, baseline
    ):
        versions = baseline["store"].versions()
        assert len(versions) >= 2
        tear_checkpoint(versions[-1])
        fallback_state = self._train_state(versions[-2])
        batches_per_epoch = -(-len(tiny_dataset.train) // baseline["config"].batch_size)
        position = (
            fallback_state["epoch"] * batches_per_epoch
            + fallback_state["batches_done"]
        )

        resumed_network = SlideNetwork(tiny_network_config)
        resumed = SlideTrainer(
            resumed_network,
            baseline["config"],
            hogwild=False,
            checkpoint_dir=tmp_path / "resumed",
            fault_tolerance=_INLINE_FT,
        )
        # Resuming from the store ROOT routes through latest_valid(): the
        # torn newest version is skipped, not fatal.
        history = resumed.train(tiny_dataset.train, resume=baseline["store"].root)
        np.testing.assert_array_equal(
            history.losses(), baseline["losses"][position:]
        )
        for base_layer, res_layer in zip(
            baseline["network"].layers, resumed_network.layers
        ):
            np.testing.assert_array_equal(base_layer.weights, res_layer.weights)

    def test_resume_rejects_seed_mismatch(
        self, tmp_path, tiny_dataset, tiny_network_config, baseline
    ):
        other = SlideTrainer(
            SlideNetwork(tiny_network_config),
            dataclasses.replace(baseline["config"], seed=baseline["config"].seed + 1),
            hogwild=False,
        )
        with pytest.raises(CheckpointError, match="seed"):
            other.train(tiny_dataset.train, resume=baseline["store"].root)


# ----------------------------------------------------------------------
# Supervised multi-process runtime under injected faults
# ----------------------------------------------------------------------
_CHAOS_FT = FaultToleranceConfig(
    poll_interval_s=0.05,
    max_restarts=2,
    backoff_base_s=0.05,
    backoff_max_s=0.2,
)


class TestSupervisedChaos:
    def test_sigkilled_worker_is_restarted_and_run_completes(
        self, tiny_dataset, tiny_network_config, tiny_training_config
    ):
        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network,
            tiny_training_config,
            num_processes=2,
            fault_tolerance=_CHAOS_FT,
            fault_plan=FaultPlan.kill_worker(1, at_batch=2),
        )
        report = trainer.train(tiny_dataset.train, tiny_dataset.test)

        supervision = report.supervision
        assert supervision is not None
        assert supervision.restarts >= 1
        assert supervision.recovery_latency_s  # measured, per restart
        assert any(e.kind == "death" for e in supervision.events)
        assert any(e.kind == "restart" for e in supervision.events)
        # The two batches the victim trained before dying were stamped in
        # shared memory but never reported; the restarted incarnation
        # skipped past them.
        assert supervision.lost_batches == 2
        total_batches = -(-len(tiny_dataset.train) // tiny_training_config.batch_size)
        assert (
            sum(stats.batches for stats in report.worker_stats)
            + supervision.lost_batches
            == total_batches * tiny_training_config.epochs
        )
        # The run still trained and evaluated end-to-end.
        assert report.history.epoch_accuracy
        assert report.final_accuracy() > 0.1

    def test_hung_worker_is_detected_via_stale_heartbeat(
        self, tiny_dataset, tiny_network_config, tiny_training_config
    ):
        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network,
            tiny_training_config,
            num_processes=2,
            fault_tolerance=dataclasses.replace(_CHAOS_FT, heartbeat_timeout_s=0.5),
            # Hang far longer than the timeout, without heartbeating: only
            # staleness detection can catch this (the process stays alive).
            fault_plan=FaultPlan.of(
                FaultSpec(kind="hang", worker_id=1, at_batch=1, duration_s=60.0)
            ),
        )
        report = trainer.train(tiny_dataset.train)

        supervision = report.supervision
        assert supervision is not None
        hangs = [e for e in supervision.events if e.kind == "hang"]
        assert hangs and hangs[0].worker_id == 1
        assert supervision.restarts >= 1
        total_batches = -(-len(tiny_dataset.train) // tiny_training_config.batch_size)
        assert (
            sum(stats.batches for stats in report.worker_stats)
            + supervision.lost_batches
            == total_batches * tiny_training_config.epochs
        )

    def test_exhausted_restarts_reassign_work_to_survivors(
        self, tiny_dataset, tiny_network_config, tiny_training_config, tmp_path
    ):
        dataset = _sharded(tiny_dataset, tmp_path)
        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network,
            tiny_training_config,
            num_processes=2,
            # No restart budget: the first crash writes worker 1 off, so
            # its shard-group item MUST migrate to worker 0 (with a budget,
            # the survivor usually steals the item before the restart
            # anyway — that path is timing-dependent, this one is not).
            fault_tolerance=dataclasses.replace(_CHAOS_FT, max_restarts=0),
            fault_plan=FaultPlan.of(
                FaultSpec(kind="crash", worker_id=1, at_batch=0, once=False)
            ),
        )
        report = trainer.train(dataset)

        supervision = report.supervision
        assert supervision is not None
        kinds = [e.kind for e in supervision.events]
        assert "error" in kinds
        assert "gave_up" in kinds
        assert supervision.reassigned_items >= 1
        # Shard-group items are worker-independent: nothing is lost, the
        # survivor covers the whole dataset exactly once per epoch.
        assert supervision.lost_batches == 0
        assert report.samples == len(dataset) * tiny_training_config.epochs

    def test_silent_death_of_all_workers_names_exit_code(
        self, tiny_dataset, tiny_network_config, tiny_training_config
    ):
        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network,
            tiny_training_config,
            num_processes=2,
            fault_tolerance=dataclasses.replace(_CHAOS_FT, max_restarts=0),
            fault_plan=FaultPlan.of(
                FaultSpec(kind="kill", worker_id=0, at_batch=0, once=False),
                FaultSpec(kind="kill", worker_id=1, at_batch=0, once=False),
            ),
        )
        with pytest.raises(RuntimeError) as excinfo:
            trainer.train(tiny_dataset.train)
        message = str(excinfo.value)
        # Satellite: a worker that dies without posting a result surfaces
        # immediately, naming the worker and the exit code.
        assert "exit code -9" in message
        assert "worker" in message
        # The failure path restored private arrays (no leaked segments).
        network.layers[0].weights[0, 0] += 1.0

    def test_mid_run_checkpoints_and_process_resume(
        self, tiny_dataset, tiny_network_config, tiny_training_config, tmp_path
    ):
        dataset = _sharded(tiny_dataset, tmp_path)
        config = dataclasses.replace(tiny_training_config, epochs=2)
        ft = dataclasses.replace(_CHAOS_FT, checkpoint_every_s=0.05)
        store_root = tmp_path / "ckpt"

        network = SlideNetwork(tiny_network_config)
        trainer = ProcessHogwildTrainer(
            network,
            config,
            num_processes=2,
            fault_tolerance=ft,
            checkpoint_dir=store_root,
        )
        report = trainer.train(dataset)
        supervision = report.supervision
        assert supervision is not None
        assert supervision.checkpoints_saved >= 1
        assert supervision.checkpoints_saved == len(
            [e for e in supervision.events if e.kind == "checkpoint"]
        )

        store = CheckpointStore(store_root)
        version = store.latest_valid()
        state = verify_checkpoint(version)["metadata"]["train_state"]
        assert state["mode"] == "process"
        assert state["kind"] == "shards"
        assert state["items"]

        # A fresh trainer resumes the remaining work items from the store
        # root and finishes the run.
        resumed_network = SlideNetwork(tiny_network_config)
        resumed = ProcessHogwildTrainer(
            resumed_network,
            config,
            num_processes=2,
            fault_tolerance=_CHAOS_FT,
        )
        resumed_report = resumed.train(dataset, resume=store_root)
        assert resumed.optimizer is not None
        total_batches = (
            -(-len(dataset) // config.batch_size) * config.epochs
        )
        # Snapshot + remainder covers the full run; at most one in-flight
        # batch per worker can be double-counted across the snapshot race.
        assert total_batches <= resumed.optimizer.step_count <= total_batches + 2
        assert resumed_report.supervision is not None

    def test_process_resume_rejects_config_mismatch(
        self, tiny_dataset, tiny_network_config, tiny_training_config, tmp_path
    ):
        dataset = _sharded(tiny_dataset, tmp_path)
        store_root = tmp_path / "ckpt"
        trainer = ProcessHogwildTrainer(
            SlideNetwork(tiny_network_config),
            tiny_training_config,
            num_processes=2,
            fault_tolerance=dataclasses.replace(_CHAOS_FT, checkpoint_every_s=0.02),
            checkpoint_dir=store_root,
        )
        report = trainer.train(dataset)
        assert report.supervision.checkpoints_saved >= 1

        mismatched = ProcessHogwildTrainer(
            SlideNetwork(tiny_network_config),
            dataclasses.replace(tiny_training_config, batch_size=8),
            num_processes=2,
        )
        with pytest.raises(CheckpointError, match="batch_size"):
            mismatched.train(dataset, resume=store_root)
