"""Auto round-trip of every *Config dataclass via the CONFIG_CODECS registry.

This is the test-suite twin of lint rule CFG001: the classes are found by
*introspection* of :mod:`repro.config`, so a newly added config dataclass
fails here (no codec / no example) before anyone wires it to a file format.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro.config as config_module
from repro.config import CONFIG_CODECS, config_examples


def _all_config_classes() -> list[type]:
    return sorted(
        (
            obj
            for name, obj in vars(config_module).items()
            if isinstance(obj, type)
            and name.endswith("Config")
            and dataclasses.is_dataclass(obj)
        ),
        key=lambda cls: cls.__name__,
    )


CONFIG_CLASSES = _all_config_classes()


def test_every_config_class_is_registered():
    missing = [cls.__name__ for cls in CONFIG_CLASSES if cls not in CONFIG_CODECS]
    assert not missing, f"unregistered config classes: {missing}"


def test_every_registered_class_has_an_example():
    examples = config_examples()
    missing = [cls.__name__ for cls in CONFIG_CODECS if cls not in examples]
    assert not missing, f"example-less config classes: {missing}"


@pytest.mark.parametrize("cls", CONFIG_CLASSES, ids=lambda cls: cls.__name__)
def test_round_trip(cls):
    to_dict, from_dict = CONFIG_CODECS[cls]
    example = config_examples()[cls]
    data = to_dict(example)

    # Coverage: exactly the dataclass's fields, nothing more or less.
    assert set(data) == {f.name for f in dataclasses.fields(cls)}
    # The dict form is JSON-serialisable (the whole point of the codecs).
    rebuilt = from_dict(json.loads(json.dumps(data)))
    assert rebuilt == example


@pytest.mark.parametrize("cls", CONFIG_CLASSES, ids=lambda cls: cls.__name__)
def test_unknown_key_is_rejected_by_name(cls):
    to_dict, from_dict = CONFIG_CODECS[cls]
    data = to_dict(config_examples()[cls])
    data["definitely_not_a_field"] = 1
    with pytest.raises(ValueError, match="definitely_not_a_field"):
        from_dict(data)


def test_examples_differ_from_defaults():
    """A default-valued example could hide a codec that drops fields and
    lets defaults leak back in; keep the examples deliberately non-default."""
    examples = config_examples()
    for cls, example in examples.items():
        if cls.__name__ == "SlideNetworkConfig":
            continue  # has required fields, no full-default instance exists
        if cls.__name__ == "LayerConfig":
            continue
        assert example != cls(), f"{cls.__name__} example is all-defaults"


def test_nested_training_codec_rebuilds_optimizer():
    to_dict, from_dict = CONFIG_CODECS[config_module.TrainingConfig]
    example = config_examples()[config_module.TrainingConfig]
    rebuilt = from_dict(to_dict(example))
    assert isinstance(rebuilt.optimizer, config_module.OptimizerConfig)
    assert rebuilt.optimizer == example.optimizer


def test_nested_layer_codec_rebuilds_lsh():
    to_dict, from_dict = CONFIG_CODECS[config_module.LayerConfig]
    example = config_examples()[config_module.LayerConfig]
    rebuilt = from_dict(to_dict(example))
    assert isinstance(rebuilt.lsh, config_module.LSHConfig)
    assert rebuilt == example
    # lsh=None survives too.
    bare = config_module.LayerConfig(size=8)
    assert from_dict(to_dict(bare)) == bare


def test_network_codec_rejects_unknown_nested_layer_key():
    to_dict, from_dict = CONFIG_CODECS[config_module.SlideNetworkConfig]
    data = to_dict(config_examples()[config_module.SlideNetworkConfig])
    data["layers"][0]["workerz"] = 3
    with pytest.raises(ValueError, match="workerz"):
        from_dict(data)
