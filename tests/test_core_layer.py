"""Tests for :class:`repro.core.layer.SlideLayer`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LayerConfig, LSHConfig, RebuildScheduleConfig, SamplingConfig
from repro.core.layer import SlideLayer
from repro.optim.adam import AdamOptimizer


def dense_layer_config(size=12, activation="relu") -> LayerConfig:
    return LayerConfig(size=size, activation=activation)


def lsh_layer_config(size=40, target_active=8, initial_period=2) -> LayerConfig:
    return LayerConfig(
        size=size,
        activation="softmax",
        lsh=LSHConfig(hash_family="simhash", k=3, l=10, bucket_size=16),
        sampling=SamplingConfig(strategy="vanilla", target_active=target_active, min_active=4),
        rebuild=RebuildScheduleConfig(initial_period=initial_period, decay=0.0),
    )


class TestDenseLayerForward:
    def test_all_neurons_active_without_lsh(self, rng):
        layer = SlideLayer(fan_in=20, config=dense_layer_config(), seed=0)
        indices = np.array([1, 5, 7])
        values = rng.normal(size=3)
        state = layer.forward(indices, values)
        assert state.num_active == 12
        np.testing.assert_array_equal(state.active_out, np.arange(12))

    def test_sparse_forward_matches_dense_forward(self, rng):
        layer = SlideLayer(fan_in=20, config=dense_layer_config(activation="relu"), seed=1)
        dense_input = np.zeros(20)
        indices = np.array([0, 4, 19])
        values = rng.normal(size=3)
        dense_input[indices] = values
        state = layer.forward(indices, values)
        np.testing.assert_allclose(state.activation, layer.dense_forward(dense_input), atol=1e-12)

    def test_empty_input_gives_bias_only(self):
        layer = SlideLayer(fan_in=10, config=dense_layer_config(), seed=2)
        layer.biases[:] = 0.5
        state = layer.forward(np.array([], dtype=np.int64), np.array([]))
        np.testing.assert_allclose(state.pre_activation, 0.5)

    def test_softmax_activation_normalises_over_active(self, rng):
        layer = SlideLayer(fan_in=8, config=dense_layer_config(activation="softmax"), seed=3)
        state = layer.forward(np.array([0, 1]), rng.normal(size=2))
        assert state.activation.sum() == pytest.approx(1.0)


class TestLSHLayerForward:
    def test_active_set_is_subset_of_layer(self, rng):
        layer = SlideLayer(fan_in=16, config=lsh_layer_config(), seed=4)
        state = layer.forward(np.arange(5), rng.normal(size=5))
        assert state.num_active < layer.size
        assert state.active_out.min() >= 0
        assert state.active_out.max() < layer.size
        assert np.all(np.diff(state.active_out) > 0)  # sorted unique

    def test_forced_active_always_included(self, rng):
        layer = SlideLayer(fan_in=16, config=lsh_layer_config(), seed=5)
        forced = np.array([0, 39])
        state = layer.forward(np.arange(4), rng.normal(size=4), forced_active=forced)
        assert set(forced.tolist()).issubset(set(state.active_out.tolist()))

    def test_min_active_fallback_pads_result(self, rng):
        config = LayerConfig(
            size=64,
            activation="softmax",
            lsh=LSHConfig(hash_family="simhash", k=8, l=2, bucket_size=4),
            sampling=SamplingConfig(strategy="vanilla", target_active=4, min_active=16),
        )
        layer = SlideLayer(fan_in=16, config=config, seed=6)
        state = layer.forward(np.arange(3), rng.normal(size=3))
        assert state.num_active >= 16

    def test_activation_matches_dense_on_active_set(self, rng):
        layer = SlideLayer(fan_in=16, config=lsh_layer_config(), seed=7)
        dense_input = np.zeros(16)
        indices = np.array([2, 3, 9])
        values = rng.normal(size=3)
        dense_input[indices] = values
        state = layer.forward(indices, values)
        # Pre-activations of active neurons must equal the dense computation.
        expected = layer.weights[state.active_out] @ dense_input + layer.biases[state.active_out]
        np.testing.assert_allclose(state.pre_activation, expected, atol=1e-12)


class TestLayerBackward:
    def test_gradient_blocks_shapes(self, rng):
        layer = SlideLayer(fan_in=10, config=dense_layer_config(size=6), seed=8)
        state = layer.forward(np.array([0, 3]), rng.normal(size=2))
        delta = rng.normal(size=state.num_active)
        prev_delta = layer.backward(state, delta)
        assert prev_delta.shape == (2,)
        w_grad, b_grad = layer.gradient_blocks(state)
        assert w_grad.shape == (state.num_active, 2)
        assert b_grad.shape == (state.num_active,)

    def test_backward_misaligned_delta_raises(self, rng):
        layer = SlideLayer(fan_in=10, config=dense_layer_config(size=6), seed=9)
        state = layer.forward(np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            layer.backward(state, np.zeros(99))

    def test_gradient_blocks_before_backward_raises(self, rng):
        layer = SlideLayer(fan_in=10, config=dense_layer_config(size=6), seed=10)
        state = layer.forward(np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            layer.gradient_blocks(state)

    def test_weight_gradient_is_outer_product(self, rng):
        layer = SlideLayer(fan_in=5, config=dense_layer_config(size=4), seed=11)
        indices = np.array([1, 3])
        values = np.array([2.0, -1.0])
        state = layer.forward(indices, values)
        delta = np.array([1.0, 0.0, -2.0, 0.5])
        layer.backward(state, delta)
        w_grad, b_grad = layer.gradient_blocks(state)
        np.testing.assert_allclose(w_grad, np.outer(delta, values))
        np.testing.assert_allclose(b_grad, delta)

    def test_backward_delta_matches_matrix_transpose(self, rng):
        layer = SlideLayer(fan_in=7, config=dense_layer_config(size=5), seed=12)
        indices = np.array([0, 2, 6])
        values = rng.normal(size=3)
        state = layer.forward(indices, values)
        delta = rng.normal(size=5)
        prev = layer.backward(state, delta)
        expected = layer.weights[:, indices].T @ delta
        np.testing.assert_allclose(prev, expected, atol=1e-12)


class TestLayerUpdatesAndRebuild:
    def test_apply_gradients_changes_only_active_block(self, rng):
        layer = SlideLayer(fan_in=12, config=lsh_layer_config(size=30), seed=13)
        optimizer = AdamOptimizer(learning_rate=0.05)
        layer.register_parameters(optimizer)
        before = layer.weights.copy()
        indices = np.array([0, 5])
        state = layer.forward(indices, rng.normal(size=2))
        delta = rng.normal(size=state.num_active)
        layer.backward(state, delta)
        w_grad, b_grad = layer.gradient_blocks(state)
        optimizer.begin_step()
        layer.apply_gradients(optimizer, state, w_grad, b_grad)
        changed = np.argwhere(layer.weights != before)
        assert changed.size > 0
        assert set(np.unique(changed[:, 0]).tolist()).issubset(set(state.active_out.tolist()))
        assert set(np.unique(changed[:, 1]).tolist()).issubset(set(indices.tolist()))

    def test_dirty_neurons_tracked_and_cleared_on_rebuild(self, rng):
        layer = SlideLayer(fan_in=12, config=lsh_layer_config(size=30, initial_period=1), seed=14)
        optimizer = AdamOptimizer()
        layer.register_parameters(optimizer)
        state = layer.forward(np.array([0, 1]), rng.normal(size=2))
        layer.backward(state, rng.normal(size=state.num_active))
        w_grad, b_grad = layer.gradient_blocks(state)
        optimizer.begin_step()
        layer.apply_gradients(optimizer, state, w_grad, b_grad)
        assert layer.dirty_neuron_count > 0
        rebuilt = layer.maybe_rebuild(iteration=1)
        assert rebuilt
        assert layer.dirty_neuron_count == 0
        assert layer.num_rebuilds == 1

    def test_rebuild_noop_without_lsh(self):
        layer = SlideLayer(fan_in=6, config=dense_layer_config(), seed=15)
        assert not layer.maybe_rebuild(100)

    def test_invalid_fan_in_raises(self):
        with pytest.raises(ValueError):
            SlideLayer(fan_in=0, config=dense_layer_config())
