"""Shared fixtures for the test suite.

Everything is deliberately tiny: unit tests should run in milliseconds, and
even the end-to-end training tests use datasets of a few hundred examples
with a few dozen labels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.datasets.synthetic import SyntheticXCConfig, generate_synthetic_xc
from repro.types import SparseExample, SparseVector


def pytest_sessionfinish(session, exitstatus):
    """Fail the ``REPRO_SANITIZE=1`` CI shard if the lock sanitizer saw
    an inversion or a held-while-blocking anywhere in the run."""
    from repro.utils import sanitize

    if not sanitize.enabled_from_env():
        return
    reports = sanitize.get_sanitizer().reports()
    if reports:
        lines = "\n".join(f"  {report.format()}" for report in reports)
        session.config.pluginmanager.get_plugin("terminalreporter").write_line(
            f"lock sanitizer collected {len(reports)} report(s):\n{lines}",
            red=True,
        )
        session.exitstatus = 1


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small learnable extreme-classification dataset (shared, read-only)."""
    config = SyntheticXCConfig(
        feature_dim=256,
        label_dim=48,
        num_train=192,
        num_test=64,
        avg_features_per_example=20,
        avg_labels_per_example=2.0,
        prototype_nnz=12,
        noise_scale=0.2,
        seed=7,
        name="tiny-xc",
    )
    return generate_synthetic_xc(config)


@pytest.fixture
def tiny_network_config(tiny_dataset) -> SlideNetworkConfig:
    """A two-layer SLIDE config (LSH on the output layer) for the tiny dataset."""
    lsh = LSHConfig(hash_family="simhash", k=4, l=12, bucket_size=32)
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=tiny_dataset.config.label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(strategy="vanilla", target_active=12, min_active=8),
        ),
    )
    return SlideNetworkConfig(
        input_dim=tiny_dataset.config.feature_dim, layers=layers, seed=3
    )


@pytest.fixture
def tiny_training_config() -> TrainingConfig:
    return TrainingConfig(
        batch_size=16,
        epochs=1,
        optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
        eval_every=0,
        seed=11,
    )


def make_sparse_example(
    rng: np.random.Generator,
    dimension: int = 64,
    nnz: int = 8,
    num_labels: int = 2,
    label_dim: int = 16,
) -> SparseExample:
    """Helper used across tests to build a random sparse example."""
    indices = rng.choice(dimension, size=min(nnz, dimension), replace=False)
    values = rng.normal(size=indices.shape[0])
    labels = rng.choice(label_dim, size=min(num_labels, label_dim), replace=False)
    return SparseExample(
        features=SparseVector(indices=np.sort(indices), values=values, dimension=dimension),
        labels=labels,
    )
