"""The documentation suite stays healthy: links resolve, doctests pass.

Runs ``tools/check_docs.py`` the same way the CI docs job does, so link rot
or a broken README/docs snippet fails tier-1 locally instead of only on CI.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"


def _run_checker(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(CHECKER), *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_docs_links_and_doctests_pass():
    result = _run_checker()
    assert result.returncode == 0, (
        f"docs check failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "docs check OK" in result.stdout


def test_checker_detects_broken_link(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](does/not/exist.md) and [gone](#no-such-heading)\n")
    result = _run_checker(str(bad))
    assert result.returncode == 1
    assert "broken link" in result.stdout
    assert "anchor" in result.stdout


def test_checker_detects_failing_doctest(tmp_path):
    bad = tmp_path / "bad_doctest.md"
    bad.write_text("```python\n>>> 1 + 1\n3\n\n```\n")
    result = _run_checker(str(bad))
    assert result.returncode == 1
    assert "doctest" in result.stdout
