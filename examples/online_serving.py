"""Example: the online train-to-serve loop — hot reload, shedding, autoscale.

Where ``serve_model.py`` shows the one-shot hand-off (train, checkpoint,
serve), this example runs the *continuous* loop from
:mod:`repro.serving.runtime`:

1. train a small SLIDE network and publish v1 into a
   :class:`~repro.serving.checkpoint.CheckpointStore`;
2. start an :class:`~repro.serving.runtime.OnlineRuntime` — an elastic
   worker pool with shed admission, per-request deadlines, and a
   :class:`~repro.serving.runtime.CheckpointWatcher` on the store;
3. drive sustained open-loop traffic while the trainer keeps training and
   publishing new versions (auto-pruned with ``keep_last``): each version
   is hot-swapped in place through the incremental LSH patch, with
   in-flight requests finishing on the old weights;
4. print what happened: per-swap blip / moved entries, traffic broken down
   by weight generation, shed counts, and the runtime stats snapshot.

Run with::

    PYTHONPATH=src python examples/online_serving.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.serving import CheckpointStore, OnlineRuntime, run_open_loop


def build_trainer():
    dataset = generate_synthetic_xc(delicious_like_config(scale=1.0 / 2048.0, seed=0))
    label_dim = dataset.config.label_dim
    print(f"dataset: {dataset.config.name} "
          f"({dataset.config.feature_dim} features, {label_dim} labels)")
    # bucket_size >= label_dim keeps hot swaps bitwise-faithful (no FIFO
    # bucket overflow, so incremental patches reproduce a cold load exactly).
    lsh = LSHConfig(hash_family="simhash", k=4, l=20, bucket_size=max(96, label_dim))
    layers = (
        LayerConfig(size=64, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(
                strategy="vanilla", target_active=max(16, label_dim // 10)
            ),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(input_dim=dataset.config.feature_dim, layers=layers, seed=0)
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(batch_size=64, epochs=1, optimizer=OptimizerConfig(), seed=0),
    )
    return network, dataset, trainer


def main() -> None:
    network, dataset, trainer = build_trainer()
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(Path(tmp) / "store")

        # v1: the starting model the server boots from.
        trainer.train(dataset.train)
        store.save(network, trainer.optimizer, keep_last=3)
        print(f"published v1: precision@1 = "
              f"{evaluate_precision_at_1(network, dataset.test):.3f}")

        config = ServingConfig(
            engine="sparse",
            active_budget=max(32, network.output_dim // 8),
            top_k=5,
            max_batch_size=16,
            max_wait_ms=1.0,
            num_workers=2,
            queue_capacity=256,
            admission_policy="shed",   # overload -> typed 429, not latency collapse
            deadline_ms=250.0,         # stale queue entries dropped before compute
            reload_poll_s=0.2,         # watcher polls the store in the background
        )
        runtime = OnlineRuntime(store, config).start()
        print(f"\nserving {runtime.stats()['checkpoint_version']} "
              f"(engine={runtime.engine.name}, workers={config.num_workers})")
        try:
            # Client traffic and continued training run concurrently: the
            # watcher hot-swaps each published version into the live engine.
            result: list = []

            def client() -> None:
                result.append(
                    run_open_loop(
                        runtime, list(dataset.test), qps=300.0, duration_s=6.0, k=5
                    )
                )

            thread = threading.Thread(target=client, daemon=True)
            thread.start()
            for version in (2, 3):
                trainer.train(dataset.train)  # one more epoch
                path = store.save(network, trainer.optimizer, keep_last=3)
                print(f"published {path.name}: precision@1 = "
                      f"{evaluate_precision_at_1(network, dataset.test):.3f}")
            thread.join(timeout=60.0)
            report = result[0]

            print("\n--- hot swaps (incremental LSH patches) ---")
            for record in runtime.metrics.reload_records():
                print(f"{record['version']}: blip {record['duration_s'] * 1e3:.1f}ms, "
                      f"{record['changed_rows']} rows changed, "
                      f"{record['moved_entries']} table entries moved, "
                      f"full_rebuild={record['full_rebuild']}")

            print("\n--- client-observed traffic ---")
            print(f"completed {report.completed}/{report.sent} "
                  f"(errors {report.errors}, shed {report.shed_total})")
            for generation, count in sorted(report.generations.items()):
                print(f"  generation {generation}: {count} requests")
            latency = report.to_dict()["latency_ms"]
            print(f"latency ms: p50={latency['p50']:.2f} "
                  f"p99={latency['p99']:.2f} p999={latency['p999']:.2f}")

            stats = runtime.stats()
            print(f"\nruntime: version={stats['checkpoint_version']} "
                  f"reloads={stats['reloads']:.0f} "
                  f"shed_total={stats['shed_total']:.0f} "
                  f"generation={stats['generation']:.0f}")
        finally:
            runtime.stop()


if __name__ == "__main__":
    main()
