"""Extending SLIDE with a custom LSH family.

The paper notes that "SLIDE also provides the interface to add customized
hash functions based on need" (Section 3.2).  This example registers a new
family — a plain dense signed random projection without the sparse-projection
trick — and trains a SLIDE network with it, comparing the result against the
built-in SimHash.

Run:  python examples/custom_hash_function.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import SyntheticXCConfig, generate_synthetic_xc
from repro.hashing.base import LSHFamily
from repro.hashing.factory import register_hash_family
from repro.utils.rng import derive_rng


class DenseSignHash(LSHFamily):
    """Signed random projections with dense Gaussian projection vectors.

    Functionally equivalent to SimHash for cosine similarity, but without the
    {+1, 0, -1} sparse-projection optimisation — a useful baseline for seeing
    what that optimisation buys.
    """

    def __init__(self, input_dim: int, k: int, l: int, seed: int = 0) -> None:
        super().__init__(input_dim=input_dim, k=k, l=l, seed=seed)
        rng = derive_rng(seed, stream=999)
        self._projections = rng.normal(size=(k * l, input_dim))

    @property
    def code_cardinality(self) -> int:
        return 2

    def hash_vector(self, vector):
        dense = self._as_dense(vector)
        signs = (self._projections @ dense) > 0
        return signs.astype(np.int64).reshape(self.l, self.k)


def train_with_family(dataset, family_name: str) -> float:
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=dataset.feature_dim,
            layers=(
                LayerConfig(size=64, activation="relu"),
                LayerConfig(
                    size=dataset.label_dim,
                    activation="softmax",
                    lsh=_lsh_config(family_name),
                    sampling=SamplingConfig(strategy="vanilla", target_active=24, min_active=12),
                ),
            ),
            seed=3,
        )
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(batch_size=32, epochs=2, optimizer=OptimizerConfig(learning_rate=2e-3), seed=4),
    )
    trainer.train(dataset.train, dataset.test)
    return trainer.evaluate(dataset.test)


def _lsh_config(family_name: str) -> LSHConfig:
    config = LSHConfig(hash_family="simhash", k=5, l=16, bucket_size=48)
    if family_name != "simhash":
        # LSHConfig validates hash_family against the Literal type at
        # construction; for custom families we swap the name afterwards.
        object.__setattr__(config, "hash_family", family_name)
    return config


def main() -> None:
    # Register the custom family under a new name.  The builder receives the
    # layer's fan-in, the LSHConfig and a seed.
    register_hash_family(
        "dense-sign", lambda dim, cfg, seed: DenseSignHash(dim, cfg.k, cfg.l, seed)
    )
    print("registered custom hash family 'dense-sign'")

    dataset = generate_synthetic_xc(
        SyntheticXCConfig(
            feature_dim=512,
            label_dim=128,
            num_train=768,
            num_test=192,
            avg_features_per_example=30,
            avg_labels_per_example=2.0,
            seed=11,
            name="custom-hash-demo",
        )
    )

    for family in ("simhash", "dense-sign"):
        accuracy = train_with_family(dataset, family)
        print(f"final precision@1 with {family:>10}: {accuracy:.3f}")
    print(
        "\nBoth families target cosine similarity, so accuracy should be similar;\n"
        "the built-in SimHash additionally uses sparse {+1,0,-1} projections so each\n"
        "hash costs a third of the additions (Section 3.2 / Appendix A of the paper)."
    )


if __name__ == "__main__":
    main()
