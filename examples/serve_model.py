"""Example: train a SLIDE network, checkpoint it, and serve it.

Walks the full production loop the :mod:`repro.serving` subsystem enables:

1. train a small SLIDE network on synthetic extreme-classification data;
2. write a versioned checkpoint (weights + optimiser + LSH tables);
3. load the checkpoint into an LSH-accelerated sparse inference engine;
4. serve a burst of requests through the micro-batching queue and a
   multi-worker engine pool, then print latency/throughput metrics;
5. (optionally, with ``--http``) expose the model over HTTP/JSON — the same
   runtime `python -m repro.serving <checkpoint>` would start.

Run with::

    PYTHONPATH=src python examples/serve_model.py [--http]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import urllib.request
from pathlib import Path

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.serving import CheckpointStore, ServingRuntime, build_engine, build_server


def train_and_checkpoint(root: Path):
    dataset = generate_synthetic_xc(delicious_like_config(scale=1.0 / 2048.0, seed=0))
    label_dim = dataset.config.label_dim
    print(f"dataset: {dataset.config.name} "
          f"({dataset.config.feature_dim} features, {label_dim} labels)")

    lsh = LSHConfig(hash_family="simhash", k=4, l=20, bucket_size=96)
    layers = (
        LayerConfig(size=64, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(
                strategy="vanilla", target_active=max(16, label_dim // 10)
            ),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(input_dim=dataset.config.feature_dim, layers=layers, seed=0)
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(batch_size=64, epochs=2, optimizer=OptimizerConfig(), seed=0),
    )
    trainer.train(dataset.train, dataset.test)
    print(f"trained: precision@1 = {evaluate_precision_at_1(network, dataset.test):.3f}")

    store = CheckpointStore(root)
    path = store.save(network, trainer.optimizer, metadata={"example": "serve_model"})
    print(f"checkpointed to {path}")
    return store, dataset


def serve_burst(store: CheckpointStore, dataset) -> None:
    loaded = store.load_latest(load_optimizer=False)
    config = ServingConfig(
        engine="sparse",
        active_budget=max(32, loaded.network.output_dim // 8),
        top_k=5,
        max_batch_size=32,
        max_wait_ms=2.0,
        num_workers=4,
    )
    with ServingRuntime.from_network(loaded.network, config) as runtime:
        print(f"\nserving with engine={runtime.engine.name}, "
              f"workers={config.num_workers}, budget={config.active_budget}")
        predictions = runtime.predict_many(dataset.test * 2, k=5)
        stats = runtime.stats()

    print(f"served {len(predictions)} requests")
    latency = stats["latency_ms"]
    print(f"latency ms: p50={latency['p50']:.2f} p95={latency['p95']:.2f} "
          f"p99={latency['p99']:.2f}")
    print(f"throughput: {stats['throughput_rps']:.0f} req/s, "
          f"mean batch {stats['mean_batch_size']:.1f}, modes {stats['modes']}")


def serve_http(store: CheckpointStore, dataset) -> None:
    import threading

    loaded = store.load_latest(load_optimizer=False)
    config = ServingConfig(num_workers=2, top_k=5)
    runtime = ServingRuntime(build_engine(loaded.network, config), config).start()
    server = build_server(runtime, port=0)
    host, port = server.address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"\nHTTP server on http://{host}:{port}")

    example = dataset.test[0]
    body = json.dumps(
        {
            "indices": [int(i) for i in example.features.indices],
            "values": [float(v) for v in example.features.values],
            "k": 5,
        }
    ).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}/v1/predict",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        print("POST /v1/predict ->", json.loads(response.read()))
    with urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=10) as response:
        print("GET /healthz ->", json.loads(response.read()))
    server.shutdown()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--http", action="store_true", help="also demo the HTTP front-end"
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory() as tmp:
        store, dataset = train_and_checkpoint(Path(tmp) / "checkpoints")
        serve_burst(store, dataset)
        if args.http:
            serve_http(store, dataset)


if __name__ == "__main__":
    main()
