"""Scalability study: how SLIDE's advantage depends on the CPU core count.

Reproduces the analysis behind Figures 9 and 13 of the paper: train SLIDE and
the dense baseline once (the per-iteration *work* does not depend on the core
count), then attribute wall-clock time with the calibrated device profiles at
2-44 cores and find the crossover points where SLIDE overtakes TF-CPU and
TF-GPU.

Run:  python examples/scalability_study.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.harness.experiment import (
    AMAZON_PAPER_DIMS,
    DELICIOUS_PAPER_DIMS,
    small_experiment_config,
)
from repro.harness.figures import figure9_scalability, figure13_scalability_ratio
from repro.harness.report import format_table

CORE_COUNTS = (2, 4, 8, 16, 32, 44)


def crossover(rows, column):
    """Smallest core count at which SLIDE's convergence time beats a baseline."""
    for row in rows:
        if row["SLIDE_convergence_s"] < row[column]:
            return int(row["cores"])
    return None


def study(dataset: str, dims, paper_note: str) -> None:
    config = small_experiment_config(dataset=dataset, scale=1.0 / 1024.0, epochs=2)
    print(f"\n=== {dims.name} (synthetic stand-in: {config.dataset.name}) ===")
    rows = figure9_scalability(config, core_counts=CORE_COUNTS, paper_dims=dims)
    print(format_table(rows, title="Convergence time (s) vs CPU cores"))
    ratios = figure13_scalability_ratio(rows)
    print(format_table(ratios, title="Ratio to the 44-core convergence time"))

    cpu_cross = crossover(rows, "TF-CPU_convergence_s")
    gpu_cross = crossover(rows, "TF-GPU_convergence_s")
    print(f"SLIDE overtakes TF-CPU at {cpu_cross} cores and TF-GPU at {gpu_cross} cores.")
    print(f"paper: {paper_note}")


def main() -> None:
    study(
        "delicious",
        DELICIOUS_PAPER_DIMS,
        "SLIDE beats TF-CPU with 8 cores and TF-GPU with fewer than 32 cores",
    )
    study(
        "amazon",
        AMAZON_PAPER_DIMS,
        "SLIDE beats TF-CPU with 2 cores and TF-GPU with 8 cores",
    )


if __name__ == "__main__":
    main()
