"""Scalability study: how SLIDE's advantage depends on the CPU core count.

Two views on Figures 9 and 13 of the paper:

1. **Measured** — train the same synthetic XC workload with the
   shared-memory process-HOGWILD trainer
   (:class:`repro.parallel.sharedmem.ProcessHogwildTrainer`) at 1/2/4 worker
   processes and print the real wall-clock speedup curve, parallel
   efficiency, CPU utilisation and gradient-conflict counts.  The measured
   speedup is bounded by this machine's usable cores (printed alongside).
2. **Projected** — train SLIDE and the dense baseline once (the
   per-iteration *work* does not depend on the core count), then attribute
   wall-clock time with the calibrated device profiles at 2-44 cores and
   find the crossover points where SLIDE overtakes TF-CPU and TF-GPU.

Run:  PYTHONPATH=src python examples/scalability_study.py [--skip-measured]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.harness.experiment import (
    AMAZON_PAPER_DIMS,
    DELICIOUS_PAPER_DIMS,
    small_experiment_config,
)
from repro.harness.figures import figure9_scalability, figure13_scalability_ratio
from repro.harness.report import format_table
from repro.harness.scaling import available_cores, measure_process_scaling

CORE_COUNTS = (2, 4, 8, 16, 32, 44)
PROCESS_COUNTS = (1, 2, 4)


def measured_study(process_counts: tuple[int, ...] = PROCESS_COUNTS) -> None:
    cores = available_cores()
    print(f"\n=== Measured process-HOGWILD scaling ({cores} usable cores) ===")
    result = measure_process_scaling(
        process_counts=process_counts, scale=1.0 / 512.0, epochs=2
    )
    print(
        format_table(
            result["rows"],
            title="Wall-clock speedup vs worker processes (shared-memory HOGWILD)",
        )
    )
    print("speedup curve: ", end="")
    print(
        "  ".join(
            f"{row['processes']}p -> {row['speedup_vs_1']:.2f}x"
            for row in result["rows"]
        )
    )
    if result["cores_limit_speedup"]:
        print(
            f"note: only {cores} usable core(s) — worker processes beyond "
            "that time-share a core, so measured speedup saturates; the "
            "projected section below carries the paper-scale story."
        )


def crossover(rows, column):
    """Smallest core count at which SLIDE's convergence time beats a baseline."""
    for row in rows:
        if row["SLIDE_convergence_s"] < row[column]:
            return int(row["cores"])
    return None


def projected_study(dataset: str, dims, paper_note: str) -> None:
    config = small_experiment_config(dataset=dataset, scale=1.0 / 1024.0, epochs=2)
    print(f"\n=== {dims.name} (synthetic stand-in: {config.dataset.name}) ===")
    rows = figure9_scalability(config, core_counts=CORE_COUNTS, paper_dims=dims)
    print(format_table(rows, title="Convergence time (s) vs CPU cores (projected)"))
    ratios = figure13_scalability_ratio(rows)
    print(format_table(ratios, title="Ratio to the 44-core convergence time"))

    cpu_cross = crossover(rows, "TF-CPU_convergence_s")
    gpu_cross = crossover(rows, "TF-GPU_convergence_s")
    print(f"SLIDE overtakes TF-CPU at {cpu_cross} cores and TF-GPU at {gpu_cross} cores.")
    print(f"paper: {paper_note}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-measured",
        action="store_true",
        help="only print the device-model projection (no multi-process runs)",
    )
    parser.add_argument("--processes", type=int, nargs="+", default=None)
    args = parser.parse_args()

    if not args.skip_measured:
        measured_study(tuple(args.processes or PROCESS_COUNTS))
    projected_study(
        "delicious",
        DELICIOUS_PAPER_DIMS,
        "SLIDE beats TF-CPU with 8 cores and TF-GPU with fewer than 32 cores",
    )
    projected_study(
        "amazon",
        AMAZON_PAPER_DIMS,
        "SLIDE beats TF-CPU with 2 cores and TF-GPU with 8 cores",
    )


if __name__ == "__main__":
    main()
