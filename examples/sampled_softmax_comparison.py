"""Adaptive LSH sampling vs static Sampled Softmax (the Figure 7 experiment).

The paper's argument for *adaptive* sparsity: a static candidate sampler
(TF's sampled softmax) needs ~20 % of all classes per batch and still
converges to a lower accuracy than SLIDE, which samples well under 1 % of
classes but picks them *as a function of the input* via the LSH tables.

This example trains both at several sampling budgets and prints the accuracy
each reaches, making the gap (and its cause) visible.

Run:  python examples/sampled_softmax_comparison.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro.baselines.sampled_softmax import SampledSoftmaxConfig, SampledSoftmaxNetwork
from repro.config import OptimizerConfig
from repro.harness.experiment import HeadToHeadExperiment, small_experiment_config
from repro.harness.report import format_table
from repro.metrics.accuracy import precision_at_1
from repro.types import SparseBatch


def train_sampled_softmax(experiment: HeadToHeadExperiment, fraction: float) -> float:
    cfg = experiment.config
    network = SampledSoftmaxNetwork(
        SampledSoftmaxConfig(
            input_dim=cfg.dataset.feature_dim,
            hidden_dim=cfg.hidden_dim,
            output_dim=cfg.dataset.label_dim,
            sample_fraction=fraction,
            optimizer=OptimizerConfig(learning_rate=cfg.learning_rate),
            seed=cfg.seed,
        )
    )
    rng = np.random.default_rng(cfg.seed)
    examples = experiment.dataset.train
    for _epoch in range(cfg.epochs):
        order = rng.permutation(len(examples))
        for start in range(0, len(order), cfg.batch_size):
            chunk = [examples[i] for i in order[start : start + cfg.batch_size]]
            network.train_batch(
                SparseBatch.from_examples(
                    chunk,
                    feature_dim=cfg.dataset.feature_dim,
                    label_dim=cfg.dataset.label_dim,
                )
            )
    test = experiment.dataset.test
    scores = np.stack([network.predict_dense(ex) for ex in test])
    return precision_at_1(scores, [ex.labels for ex in test])


def main() -> None:
    config = small_experiment_config(dataset="delicious", scale=1.0 / 1024.0, epochs=3)
    experiment = HeadToHeadExperiment(config)

    print("training SLIDE (adaptive LSH sampling)...")
    slide_run = experiment.run_slide()
    slide_fraction = slide_run.avg_active_output / config.dataset.label_dim

    rows = [
        {
            "system": "SLIDE (adaptive LSH)",
            "sampled fraction of classes": round(slide_fraction, 3),
            "final precision@1": round(slide_run.final_accuracy, 3),
        }
    ]
    for fraction in (0.05, 0.2, 0.5):
        print(f"training sampled softmax with a {fraction:.0%} static candidate set...")
        accuracy = train_sampled_softmax(experiment, fraction)
        rows.append(
            {
                "system": f"Sampled Softmax ({fraction:.0%} static)",
                "sampled fraction of classes": fraction,
                "final precision@1": round(accuracy, 3),
            }
        )

    print()
    print(format_table(rows, title="Adaptive vs static sampling (Delicious-200K-like)"))
    print(
        "\nSLIDE samples the fewest classes yet reaches the highest accuracy, because\n"
        "its candidates are chosen per input by the LSH tables (large inner products)\n"
        "rather than by a fixed input-independent distribution — the paper's Figure 7."
    )


if __name__ == "__main__":
    main()
