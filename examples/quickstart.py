"""Quickstart: train a SLIDE network on a synthetic extreme-classification task.

This is the smallest end-to-end use of the public API:

1. generate a synthetic dataset shaped like the paper's benchmarks (very
   sparse features, many labels, power-law label frequencies);
2. build a SLIDE network — a dense ReLU hidden layer plus a softmax output
   layer whose neurons live in LSH hash tables;
3. train with the adaptive-sparsity trainer and evaluate precision@1;
4. inspect how sparse the output layer actually was during training.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import SyntheticXCConfig, generate_synthetic_xc


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data: ~1000 features, 256 labels, sparse examples.
    # ------------------------------------------------------------------
    dataset = generate_synthetic_xc(
        SyntheticXCConfig(
            feature_dim=1024,
            label_dim=256,
            num_train=1536,
            num_test=384,
            avg_features_per_example=40,
            avg_labels_per_example=2.0,
            seed=0,
            name="quickstart",
        )
    )
    print(f"dataset: {dataset.config.name}")
    print(f"  features: {dataset.feature_dim}  labels: {dataset.label_dim}")
    print(f"  train/test: {len(dataset.train)}/{len(dataset.test)}")
    print(f"  feature sparsity: {100 * dataset.feature_sparsity():.2f}%")

    # ------------------------------------------------------------------
    # 2. Model: LSH hash tables on the (wide) output layer only, exactly as
    #    the paper does for its extreme-classification networks.
    # ------------------------------------------------------------------
    network = SlideNetwork(
        SlideNetworkConfig(
            input_dim=dataset.feature_dim,
            layers=(
                LayerConfig(size=128, activation="relu"),
                LayerConfig(
                    size=dataset.label_dim,
                    activation="softmax",
                    lsh=LSHConfig(hash_family="simhash", k=6, l=25, bucket_size=64),
                    sampling=SamplingConfig(strategy="vanilla", target_active=32, min_active=16),
                    rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
                ),
            ),
            seed=1,
        )
    )
    print(f"model: {network.num_parameters():,} parameters, "
          f"LSH on the {dataset.label_dim}-wide output layer")

    # ------------------------------------------------------------------
    # 3. Train and evaluate.
    # ------------------------------------------------------------------
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=64,
            epochs=3,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            eval_every=8,
            eval_samples=256,
            seed=2,
        ),
    )
    history = trainer.train(dataset.train, dataset.test)

    print("\ntraining progress (iteration, precision@1):")
    for iteration, accuracy in history.accuracies():
        print(f"  iter {iteration:4d}  p@1 = {accuracy:.3f}")

    final = trainer.evaluate(dataset.test)
    print(f"\nfinal precision@1 on the test split: {final:.3f} "
          f"(random guessing: {1.0 / dataset.label_dim:.4f})")

    # ------------------------------------------------------------------
    # 4. How sparse was training?
    # ------------------------------------------------------------------
    avg_active = network.average_output_active(dataset.test[:128])
    print(
        f"average active output neurons per sample: {avg_active:.0f} / {dataset.label_dim} "
        f"({100 * avg_active / dataset.label_dim:.1f}% — the paper reports <0.5% at full scale)"
    )
    total_updates = history.total_active_weights()
    dense_updates = (
        sum(r.batch_size for r in history.records)
        * (128 * dataset.feature_dim + 128 * dataset.label_dim)
    )
    print(
        f"weights touched during training: {total_updates:.3g} "
        f"({100 * total_updates / dense_updates:.1f}% of what dense training would touch)"
    )


if __name__ == "__main__":
    main()
