"""Head-to-head extreme classification: SLIDE vs full softmax vs sampled softmax.

Reproduces the paper's main experimental setting (Section 5) at laptop scale:
a Delicious-200K-like synthetic dataset, the same one-hidden-layer
architecture for all three systems, the same Adam optimiser — then compares

* final precision@1 (SLIDE should match full softmax and beat sampled softmax),
* the work each system performed per iteration (SLIDE touches a small
  fraction of the output layer), and
* the simulated wall-clock each would need on the paper's hardware
  (44-core Xeon for SLIDE/TF-CPU, V100 for TF-GPU).

Run:  python examples/extreme_classification.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.harness.experiment import (
    DELICIOUS_PAPER_DIMS,
    HeadToHeadExperiment,
    project_run_to_paper_scale,
    small_experiment_config,
)
from repro.harness.report import format_series, format_table
from repro.perf.devices import SLIDE_CPU_PROFILE, TF_CPU_PROFILE, TF_GPU_PROFILE
from repro.perf.simulator import WallClockSimulator


def main() -> None:
    config = small_experiment_config(dataset="delicious", scale=1.0 / 1024.0, epochs=3)
    print(f"dataset: {config.dataset.name}")
    print(f"  features={config.dataset.feature_dim}  labels={config.dataset.label_dim}  "
          f"train={config.dataset.num_train}")

    experiment = HeadToHeadExperiment(config)

    print("\ntraining SLIDE (LSH-adaptive sparsity)...")
    slide_run = experiment.run_slide()
    print("training the dense full-softmax baseline (TF equivalent)...")
    dense_run = experiment.run_dense()
    print("training the static sampled-softmax baseline (20% of classes)...")
    ssm_run = experiment.run_sampled_softmax()

    # ------------------------------------------------------------------
    # Accuracy comparison (what the paper's iteration-wise plots show).
    # ------------------------------------------------------------------
    print()
    print(
        format_table(
            [
                {
                    "system": run.framework,
                    "final precision@1": round(run.final_accuracy, 3),
                    "avg active output neurons": round(run.avg_active_output, 1),
                    "output layer fraction": round(
                        run.avg_active_output / config.dataset.label_dim, 3
                    ),
                }
                for run in (slide_run, dense_run, ssm_run)
            ],
            title="Accuracy and measured output-layer sparsity",
        )
    )

    # ------------------------------------------------------------------
    # Wall-clock attribution at the paper's full-scale dimensions.
    # ------------------------------------------------------------------
    slide_paper = project_run_to_paper_scale(slide_run, DELICIOUS_PAPER_DIMS)
    dense_paper = project_run_to_paper_scale(dense_run, DELICIOUS_PAPER_DIMS)

    slide_sim = slide_paper.simulate(WallClockSimulator(SLIDE_CPU_PROFILE, cores=44), "SLIDE CPU (44 cores)")
    gpu_sim = dense_paper.simulate(WallClockSimulator(TF_GPU_PROFILE), "TF-GPU (V100)")
    cpu_sim = dense_paper.simulate(WallClockSimulator(TF_CPU_PROFILE, cores=44), "TF-CPU (44 cores)")

    print(
        format_series(
            "seconds",
            "precision@1",
            {
                sim.label: (sim.cumulative_seconds, sim.accuracies)
                for sim in (slide_sim, gpu_sim, cpu_sim)
            },
            title="Simulated time-vs-accuracy at Delicious-200K dimensions",
        )
    )
    target = 0.95 * min(slide_sim.final_accuracy(), gpu_sim.final_accuracy())
    slide_t = slide_sim.time_to_accuracy(target)
    gpu_t = gpu_sim.time_to_accuracy(target)
    cpu_t = cpu_sim.time_to_accuracy(target)
    if slide_t and gpu_t and cpu_t:
        print(f"\ntime to reach precision@1 = {target:.3f}:")
        print(f"  SLIDE (44-core CPU): {slide_t:8.1f} s")
        print(f"  TF-GPU (V100):       {gpu_t:8.1f} s   ({gpu_t / slide_t:.1f}x slower than SLIDE)")
        print(f"  TF-CPU (44 cores):   {cpu_t:8.1f} s   ({cpu_t / slide_t:.1f}x slower than SLIDE)")
        print("\npaper (Delicious-200K): SLIDE is ~1.8x faster than TF-GPU and ~8x faster than TF-CPU")


if __name__ == "__main__":
    main()
