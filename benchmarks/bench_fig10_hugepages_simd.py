"""Figure 10 — impact of Transparent Hugepages + SIMD optimisation.

Paper finding: the cache-optimised SLIDE is ~1.3x faster than plain SLIDE,
lifting the overall advantage over TF-GPU from 2.7x to 3.5x on Amazon-670K.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS
from repro.harness.figures import figure10_hugepages_simd
from repro.harness.report import format_comparison, format_series


def test_fig10_hugepages_simd(run_once, amazon_config):
    result = run_once(
        figure10_hugepages_simd, amazon_config, cores=44, paper_dims=AMAZON_PAPER_DIMS
    )
    print()
    print(
        format_series(
            "time_s",
            "precision@1",
            result["time_series"],
            title="Figure 10: optimised vs plain SLIDE vs TF-GPU (Amazon-670K-like)",
        )
    )
    print(format_comparison(1.3, result["optimized_speedup"], "optimised-vs-plain speed-up", "x"))
    print(format_comparison(3.5, result["speedup_vs_gpu"], "optimised SLIDE vs TF-GPU", "x"))

    # The optimisation is modelled as the paper-measured 1.3x cost reduction,
    # so the end-to-end effect must land near 1.3x and must not change accuracy.
    assert 1.2 < result["optimized_speedup"] < 1.4
    assert result["speedup_vs_gpu"] > 1.0


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig10_hugepages_simd"
#
# The cache optimisation is MODELLED: the generator applies the paper's
# measured 1.3x Transparent-Hugepages+SIMD cost reduction rather than
# measuring hugepage effects on this host, so the artifact is stamped
# ``measured: false`` and its metrics are excluded from trend gating.
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (MODELLED speed-up)."""
    from repro.harness.experiment import small_experiment_config
    from repro.harness.report import series_payload

    p = dict(params or {})
    cores = int(p.get("cores", 44))
    config = small_experiment_config(
        dataset="amazon",
        scale=float(p.get("scale", 1.0 / 2048.0)),
        epochs=int(p.get("epochs", 2)),
        seed=int(p.get("seed", 0)),
    )
    result = figure10_hugepages_simd(config, cores=cores, paper_dims=AMAZON_PAPER_DIMS)
    return {
        "config": {"cores": cores, "dataset": "amazon-670k-like"},
        "optimized_speedup": result["optimized_speedup"],
        "expected_speedup": result["expected_speedup"],
        "speedup_vs_gpu": result["speedup_vs_gpu"],
        "time_series": series_payload(result["time_series"], "time_s", "precision_at_1"),
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """End-to-end effect of the modelled 1.3x cost reduction lands near 1.3x."""
    problems = []
    speedup = payload["optimized_speedup"]
    if not (isinstance(speedup, (int, float)) and 1.2 < speedup < 1.4):
        problems.append(
            f"optimised-vs-plain speed-up {speedup!r} should land near the "
            "modelled 1.3x cache factor"
        )
    vs_gpu = payload["speedup_vs_gpu"]
    if not (isinstance(vs_gpu, (int, float)) and vs_gpu > 1.0):
        problems.append(f"optimised SLIDE should beat TF-GPU (got {vs_gpu!r})")
    return problems


def print_report(payload: dict) -> None:
    print(format_comparison(1.3, payload["optimized_speedup"], "optimised-vs-plain", "x"))
    print(format_comparison(3.5, payload["speedup_vs_gpu"], "optimised SLIDE vs TF-GPU", "x"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig10_hugepages_simd"))


if __name__ == "__main__":
    main()
