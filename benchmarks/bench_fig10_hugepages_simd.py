"""Figure 10 — impact of Transparent Hugepages + SIMD optimisation.

Paper finding: the cache-optimised SLIDE is ~1.3x faster than plain SLIDE,
lifting the overall advantage over TF-GPU from 2.7x to 3.5x on Amazon-670K.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS
from repro.harness.figures import figure10_hugepages_simd
from repro.harness.report import format_comparison, format_series


def test_fig10_hugepages_simd(run_once, amazon_config):
    result = run_once(
        figure10_hugepages_simd, amazon_config, cores=44, paper_dims=AMAZON_PAPER_DIMS
    )
    print()
    print(
        format_series(
            "time_s",
            "precision@1",
            result["time_series"],
            title="Figure 10: optimised vs plain SLIDE vs TF-GPU (Amazon-670K-like)",
        )
    )
    print(format_comparison(1.3, result["optimized_speedup"], "optimised-vs-plain speed-up", "x"))
    print(format_comparison(3.5, result["speedup_vs_gpu"], "optimised SLIDE vs TF-GPU", "x"))

    # The optimisation is modelled as the paper-measured 1.3x cost reduction,
    # so the end-to-end effect must land near 1.3x and must not change accuracy.
    assert 1.2 < result["optimized_speedup"] < 1.4
    assert result["speedup_vs_gpu"] > 1.0
