"""Router resilience under chaos: failover, availability, degradation ladder.

Not a paper figure — the robustness evidence for serving the paper's CPU
SLIDE models in production shape.  The bench trains a SLIDE network,
publishes it into a shared :class:`CheckpointStore`, and fronts two
:class:`~repro.serving.runtime.OnlineRuntime` replicas with the
:class:`~repro.serving.router.ReplicaRouter`:

1. **Capacity probe + baseline** — flood the router to find its sustainable
   completion rate, then run an open-loop load at half capacity with both
   replicas healthy.  Contract: zero hard errors.
2. **Failover under replica kill** — sustained load, then ``kill_replica``
   mid-run (no drain: in-flight futures cancel).  Measured: *detection
   latency* (kill timestamp to the health checker's ``live: True → False``
   transition), *availability* (non-shed success rate across the whole
   window, kill included), and where the surviving traffic landed.
3. **Degradation ladder** — force each level of the quality ladder
   (budget steps → rerank off → shed-armed) and measure closed-loop
   precision@1 and latency per level: the quality-for-availability trade
   the router makes under pressure, quantified.
4. **Chaos faults** — a deterministic ``predict_crash`` injector pinned to
   one replica for the whole run.  Contract: the crashing replica's
   breaker opens, every request fails over, and the client sees zero
   errors.

The registry (``python -m repro.reports --run router_failover``) writes
``BENCH_router_failover.json``.  Runs under the pytest bench harness or
standalone::

    PYTHONPATH=src python benchmarks/bench_router_failover.py [--smoke]
"""

from __future__ import annotations

import threading
import time
from tempfile import TemporaryDirectory

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    RouterConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.faults import ServingFaultPlan, ServingFaultSpec
from repro.harness.report import format_table
from repro.serving import CheckpointStore, ReplicaRouter, run_open_loop

# Availability floor under a replica kill: non-shed requests that completed
# over the whole failover window, the kill and its cancelled in-flight
# futures included.  Sheds are admission control doing its job, not outages.
AVAILABILITY_FLOOR = 0.99


def _train_network(scale: float, seed: int = 0):
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    label_dim = dataset.config.label_dim
    lsh = LSHConfig(hash_family="simhash", k=4, l=24, bucket_size=max(96, label_dim))
    layers = (
        LayerConfig(size=64, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(
                strategy="vanilla",
                target_active=max(16, label_dim // 12),
                min_active=16,
            ),
            rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(input_dim=dataset.config.feature_dim, layers=layers, seed=seed)
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=64,
            epochs=1,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=seed,
        ),
    )
    trainer.train(dataset.train, dataset.test)
    return network, dataset, trainer


def _serving_config(budget: int) -> ServingConfig:
    return ServingConfig(
        engine="sparse",
        active_budget=budget,
        top_k=5,
        max_batch_size=16,
        max_wait_ms=1.0,
        num_workers=2,
        queue_capacity=256,
        admission_policy="shed",
        deadline_ms=250.0,
        reload_poll_s=3600.0,  # no publishes during the bench
    )


def _router_config() -> RouterConfig:
    return RouterConfig(
        num_replicas=2,
        health_interval_s=0.1,
        probe_timeout_s=0.5,
        retry_max_attempts=3,
        attempt_timeout_s=0.5,
        request_deadline_s=2.0,
        breaker_failure_threshold=5,
        breaker_recovery_s=0.5,
    )


def _detection_bound_s(config: RouterConfig) -> float:
    # Worst case: a probe launched just before the kill must first time out
    # (or cancel), then the next scheduled check flags the replica.
    return 2 * config.health_interval_s + config.probe_timeout_s + 0.5


def _availability(traffic: dict) -> float:
    denom = traffic["completed"] + traffic["errors"]
    return traffic["completed"] / denom if denom else 1.0


def _measure_failover(router, examples, qps, duration_s, kill_after_s):
    """Open-loop load with a mid-run replica kill; returns (traffic, kill_record)."""
    result: list = []

    def client() -> None:
        result.append(
            run_open_loop(router, examples, qps=qps, duration_s=duration_s, k=5)
        )

    thread = threading.Thread(target=client, daemon=True)
    thread.start()
    time.sleep(kill_after_s)
    killed_at = time.monotonic()
    router.kill_replica("r0")
    thread.join(timeout=duration_s + 60.0)
    traffic = result[0]

    detection_s = None
    for record in router.metrics.transitions(kind="live", replica="r0"):
        if record["new"] is False and record["at"] >= killed_at:
            detection_s = record["at"] - killed_at
            break
    return traffic, {
        "kill_after_s": kill_after_s,
        "detection_s": detection_s,
        "killed_replica": "r0",
    }


def _measure_ladder(router, examples, k: int = 5):
    """Closed-loop precision@1 + latency at every forced degradation level."""
    rows = []
    for level in range(router.degradation.max_level + 1):
        router.degradation.set_level(level)
        latencies = []
        hits = 0
        modes: dict[str, int] = {}
        candidates = 0
        for example in examples:
            t0 = time.monotonic()
            prediction = router.predict(example, k=k)
            latencies.append(time.monotonic() - t0)
            assert prediction.degradation == level
            modes[prediction.mode] = modes.get(prediction.mode, 0) + 1
            candidates += prediction.candidates_scored
            if prediction.class_ids.size and prediction.class_ids[0] in example.labels:
                hits += 1
        ordered = sorted(latencies)
        rows.append(
            {
                "level": level,
                "precision_at_1": hits / len(examples),
                "p50_ms": ordered[len(ordered) // 2] * 1e3,
                "p99_ms": ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] * 1e3,
                "mean_candidates_scored": candidates / len(examples),
                "modes": modes,
            }
        )
    router.degradation.set_level(0)
    return rows


def build_report(
    scale: float = 1.0 / 1024.0,
    probe_s: float = 1.5,
    baseline_s: float = 2.0,
    failover_s: float = 4.0,
    chaos_s: float = 2.0,
    eval_n: int = 64,
    seed: int = 0,
) -> dict:
    network, dataset, trainer = _train_network(scale=scale, seed=seed)
    budget = max(16, int(0.15 * network.output_dim))
    examples = list(dataset.test)
    eval_examples = examples[: min(eval_n, len(examples))]
    serving_config = _serving_config(budget)
    router_config = _router_config()

    with TemporaryDirectory(prefix="bench-router-store-") as tmp:
        store = CheckpointStore(tmp)
        store.save(network, trainer.optimizer, keep_last=3)

        # -------------------------------------------------- phase 1: baseline
        with ReplicaRouter(store, serving_config, router_config) as router:
            probe = run_open_loop(router, examples, qps=2_000.0, duration_s=probe_s, k=5)
            capacity = max(probe.achieved_qps, 1.0)
            load_qps = max(0.5 * capacity, 1.0)
            time.sleep(0.3)
            baseline = run_open_loop(
                router, examples, qps=load_qps, duration_s=baseline_s, k=5
            )
            baseline_stats = router.stats()

        # -------------------------------------------------- phase 2: failover
        with ReplicaRouter(store, serving_config, router_config) as router:
            failover_traffic, kill = _measure_failover(
                router,
                examples,
                qps=load_qps,
                duration_s=failover_s,
                kill_after_s=failover_s / 3,
            )
            failover_stats = router.stats()

        # ------------------------------------------- phase 3: degradation ladder
        with ReplicaRouter(store, serving_config, router_config) as router:
            ladder = _measure_ladder(router, eval_examples)

        # -------------------------------------------------- phase 4: chaos
        plan = ServingFaultPlan.of(
            ServingFaultSpec(
                kind="predict_crash", replica="r0", at_request=0, count=10_000_000
            )
        )
        with ReplicaRouter(store, serving_config, router_config, fault_plan=plan) as router:
            chaos_traffic = run_open_loop(
                router, examples, qps=max(0.3 * capacity, 1.0), duration_s=chaos_s, k=5
            )
            chaos_stats = router.stats()
            chaos_fired = len(router.replica("r0").runtime.engine.fault_injector.fired)

    return {
        "config": {
            "scale": scale,
            "active_budget": budget,
            "num_replicas": router_config.num_replicas,
            "workers_per_replica": serving_config.num_workers,
            "health_interval_s": router_config.health_interval_s,
            "probe_timeout_s": router_config.probe_timeout_s,
            "retry_max_attempts": router_config.retry_max_attempts,
            "degradation_budget_steps": list(router_config.degradation_budget_steps),
            "detection_bound_s": _detection_bound_s(router_config),
            "availability_floor": AVAILABILITY_FLOOR,
            "input_dim": network.input_dim,
            "output_dim": network.output_dim,
        },
        "capacity": {
            "probe_offered_qps": probe.offered_qps,
            "sustained_qps": capacity,
            "load_qps": load_qps,
        },
        "baseline": {
            "traffic": baseline.to_dict(),
            "availability": _availability(baseline.to_dict()),
            "outcomes": baseline_stats["outcomes"],
        },
        "failover": {
            **kill,
            "detection_ms": (
                kill["detection_s"] * 1e3 if kill["detection_s"] is not None else None
            ),
            "traffic": failover_traffic.to_dict(),
            "availability": _availability(failover_traffic.to_dict()),
            "failovers": failover_stats["failovers"],
            "retries": failover_stats["retries"],
            "replica_states": {
                name: {"live": info["live"], "killed": info["killed"]}
                for name, info in failover_stats["replicas"].items()
            },
        },
        "degradation_ladder": ladder,
        "chaos": {
            "fault": "predict_crash pinned to r0 for the whole run",
            "injections_fired": chaos_fired,
            "traffic": chaos_traffic.to_dict(),
            "availability": _availability(chaos_traffic.to_dict()),
            "failovers": chaos_stats["failovers"],
            "r0_breaker": chaos_stats["replicas"]["r0"]["breaker"],
            "attempt_failures": chaos_stats["attempt_failures"],
        },
    }


def check_report(report: dict) -> list[str]:
    """Acceptance invariants; returns human-readable failures (empty = pass)."""
    failures: list[str] = []
    baseline = report["baseline"]
    failover = report["failover"]
    chaos = report["chaos"]

    if baseline["traffic"]["errors"]:
        failures.append(
            f"baseline saw {baseline['traffic']['errors']} hard errors with "
            "both replicas healthy"
        )

    if failover["detection_ms"] is None:
        failures.append("health checker never recorded the kill (no live flip)")
    else:
        bound_ms = report["config"]["detection_bound_s"] * 1e3
        if failover["detection_ms"] > bound_ms:
            failures.append(
                f"failover detection took {failover['detection_ms']:.0f}ms, "
                f"bound {bound_ms:.0f}ms"
            )
    if failover["availability"] < report["config"]["availability_floor"]:
        failures.append(
            f"availability {failover['availability']:.4f} under replica kill "
            f"below floor {report['config']['availability_floor']}"
        )
    survivors = failover["traffic"]["replicas"]
    if survivors.get("r1", 0) == 0:
        failures.append("no traffic reached the surviving replica after the kill")

    ladder = report["degradation_ladder"]
    steps = report["config"]["degradation_budget_steps"]
    full = ladder[0]
    deepest_budget = ladder[len(steps)]
    if deepest_budget["mean_candidates_scored"] >= full["mean_candidates_scored"]:
        failures.append(
            "budget degradation did not shrink the candidate set "
            f"({deepest_budget['mean_candidates_scored']:.1f} vs "
            f"{full['mean_candidates_scored']:.1f})"
        )
    for row in ladder[len(steps) + 1 :]:
        if "sparse_norerank" not in row["modes"]:
            failures.append(
                f"level {row['level']} should rank by collision counts, "
                f"saw modes {row['modes']}"
            )

    if chaos["traffic"]["errors"]:
        failures.append(
            f"chaos run leaked {chaos['traffic']['errors']} errors to clients "
            "(retries should absorb a crashing replica)"
        )
    if chaos["injections_fired"] == 0:
        failures.append("chaos fault injector never fired — the run proved nothing")
    if chaos["failovers"] == 0 and chaos["traffic"]["replicas"].get("r0", 0) > 0:
        failures.append("requests hit the crashing replica but never failed over")
    return failures


def _print_report(report: dict) -> None:
    failover = report["failover"]
    detection = (
        f"{failover['detection_ms']:.0f}ms"
        if failover["detection_ms"] is not None
        else "not detected"
    )
    print(
        f"capacity {report['capacity']['sustained_qps']:.0f} rps, "
        f"load {report['capacity']['load_qps']:.0f} rps"
    )
    print(
        f"baseline: availability {report['baseline']['availability']:.4f}, "
        f"errors {report['baseline']['traffic']['errors']}"
    )
    print(
        f"failover: kill r0 at t+{failover['kill_after_s']:.1f}s, "
        f"detected in {detection}, availability {failover['availability']:.4f}, "
        f"failovers {failover['failovers']:.0f}, "
        f"survivor share {failover['traffic']['replicas']}"
    )
    rows = [
        {
            "level": row["level"],
            "p_at_1": round(row["precision_at_1"], 3),
            "p50_ms": round(row["p50_ms"], 2),
            "p99_ms": round(row["p99_ms"], 2),
            "candidates": round(row["mean_candidates_scored"], 1),
            "modes": ",".join(sorted(row["modes"])),
        }
        for row in report["degradation_ladder"]
    ]
    print()
    print(format_table(rows, title="Degradation ladder (precision/latency per level)"))
    chaos = report["chaos"]
    print(
        f"chaos: {chaos['injections_fired']} crashes injected on r0, "
        f"client errors {chaos['traffic']['errors']}, "
        f"failovers {chaos['failovers']:.0f}, r0 breaker {chaos['r0_breaker']}"
    )


def test_router_failover_bench_smoke(run_once):
    report = run_once(
        build_report,
        scale=1.0 / 2048.0,
        probe_s=0.6,
        baseline_s=0.8,
        failover_s=2.0,
        chaos_s=1.0,
        eval_n=32,
    )
    print()
    _print_report(report)
    failures = check_report(report)
    assert not failures, "\n".join(failures)


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "router_failover"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    if p.get("smoke", False):
        return build_report(
            scale=float(p.get("scale", 1.0 / 2048.0)),
            probe_s=0.8,
            baseline_s=1.0,
            failover_s=2.5,
            chaos_s=1.2,
            eval_n=32,
        )
    return build_report(scale=float(p.get("scale", 1.0 / 1024.0)))


def check(payload: dict, smoke: bool) -> list[str]:
    """Failover/degradation/chaos acceptance invariants."""
    return check_report(payload)


def print_report(payload: dict) -> None:
    _print_report(payload)


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("router_failover"))


if __name__ == "__main__":
    main()
