"""Figure 7 — SLIDE vs TF-GPU Sampled Softmax.

Paper finding: static sampled softmax (even with 20 % of all classes sampled,
40x more neurons than SLIDE's ~0.5 %) saturates at a visibly lower accuracy
than SLIDE's input-adaptive LSH sampling.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS, DELICIOUS_PAPER_DIMS
from repro.harness.figures import figure7_sampled_softmax
from repro.harness.report import format_series, format_table


def _report(result, name):
    print()
    print(
        format_table(
            [
                {
                    "framework": framework,
                    "final_accuracy": accuracy,
                    "active_fraction": result["active_fraction"][framework],
                }
                for framework, accuracy in result["final_accuracy"].items()
            ],
            title=f"Figure 7 summary ({name})",
        )
    )
    print(format_series("time_s", "precision@1", result["time_series"], title="Time vs accuracy"))
    print(
        format_series(
            "iteration", "precision@1", result["iteration_series"], title="Iteration vs accuracy"
        )
    )


def test_fig7_delicious_like(run_once, delicious_config):
    result = run_once(
        figure7_sampled_softmax, delicious_config, cores=44, paper_dims=DELICIOUS_PAPER_DIMS
    )
    _report(result, "Delicious-200K-like")
    # SLIDE converges to a higher accuracy while sampling far fewer neurons.
    assert result["final_accuracy"]["SLIDE CPU"] > result["final_accuracy"]["TF-GPU SSM"]
    assert result["active_fraction"]["SLIDE CPU"] < 1.0


def test_fig7_amazon_like(run_once, amazon_config):
    result = run_once(
        figure7_sampled_softmax, amazon_config, cores=44, paper_dims=AMAZON_PAPER_DIMS
    )
    _report(result, "Amazon-670K-like")
    assert result["final_accuracy"]["SLIDE CPU"] > result["final_accuracy"]["TF-GPU SSM"]
