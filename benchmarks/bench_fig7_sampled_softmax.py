"""Figure 7 — SLIDE vs TF-GPU Sampled Softmax.

Paper finding: static sampled softmax (even with 20 % of all classes sampled,
40x more neurons than SLIDE's ~0.5 %) saturates at a visibly lower accuracy
than SLIDE's input-adaptive LSH sampling.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS, DELICIOUS_PAPER_DIMS
from repro.harness.figures import figure7_sampled_softmax
from repro.harness.report import format_series, format_table


def _report(result, name):
    print()
    print(
        format_table(
            [
                {
                    "framework": framework,
                    "final_accuracy": accuracy,
                    "active_fraction": result["active_fraction"][framework],
                }
                for framework, accuracy in result["final_accuracy"].items()
            ],
            title=f"Figure 7 summary ({name})",
        )
    )
    print(format_series("time_s", "precision@1", result["time_series"], title="Time vs accuracy"))
    print(
        format_series(
            "iteration", "precision@1", result["iteration_series"], title="Iteration vs accuracy"
        )
    )


def test_fig7_delicious_like(run_once, delicious_config):
    result = run_once(
        figure7_sampled_softmax, delicious_config, cores=44, paper_dims=DELICIOUS_PAPER_DIMS
    )
    _report(result, "Delicious-200K-like")
    # SLIDE converges to a higher accuracy while sampling far fewer neurons.
    assert result["final_accuracy"]["SLIDE CPU"] > result["final_accuracy"]["TF-GPU SSM"]
    assert result["active_fraction"]["SLIDE CPU"] < 1.0


def test_fig7_amazon_like(run_once, amazon_config):
    result = run_once(
        figure7_sampled_softmax, amazon_config, cores=44, paper_dims=AMAZON_PAPER_DIMS
    )
    _report(result, "Amazon-670K-like")
    assert result["final_accuracy"]["SLIDE CPU"] > result["final_accuracy"]["TF-GPU SSM"]


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig7_sampled_softmax"
# ----------------------------------------------------------------------
def _side_run(name: str, scale: float, epochs: int, seed: int, cores: int, dims) -> dict:
    from repro.harness.experiment import small_experiment_config
    from repro.harness.report import series_payload

    config = small_experiment_config(dataset=name, scale=scale, epochs=epochs, seed=seed)
    result = figure7_sampled_softmax(config, cores=cores, paper_dims=dims)
    slide_acc = float(result["final_accuracy"]["SLIDE CPU"])
    ssm_acc = float(result["final_accuracy"]["TF-GPU SSM"])
    return {
        "final_accuracy": {"slide": slide_acc, "sampled_softmax": ssm_acc},
        "active_fraction": {
            "slide": float(result["active_fraction"]["SLIDE CPU"]),
            "sampled_softmax": float(result["active_fraction"]["TF-GPU SSM"]),
        },
        "accuracy_advantage": slide_acc - ssm_acc,
        "time_series": series_payload(result["time_series"], "time_s", "precision_at_1"),
        "iteration_series": series_payload(
            result["iteration_series"], "iteration", "precision_at_1"
        ),
    }


def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (MODELLED wall-clock)."""
    p = dict(params or {})
    epochs = int(p.get("epochs", 2))
    cores = int(p.get("cores", 44))
    seed = int(p.get("seed", 0))
    return {
        "config": {"epochs": epochs, "cores": cores, "seed": seed},
        "delicious": _side_run(
            "delicious",
            float(p.get("scale_delicious", 1.0 / 1024.0)),
            epochs,
            seed,
            cores,
            DELICIOUS_PAPER_DIMS,
        ),
        "amazon": _side_run(
            "amazon",
            float(p.get("scale_amazon", 1.0 / 2048.0)),
            epochs,
            seed,
            cores,
            AMAZON_PAPER_DIMS,
        ),
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """SLIDE beats static sampled softmax while sampling far fewer neurons."""
    problems = []
    for name in ("delicious", "amazon"):
        side = payload[name]
        if side["accuracy_advantage"] <= 0:
            problems.append(f"{name}: SLIDE should out-converge TF-GPU sampled softmax")
        if side["active_fraction"]["slide"] >= 1.0:
            problems.append(f"{name}: SLIDE active fraction should stay below 1.0")
    return problems


def print_report(payload: dict) -> None:
    for name in ("delicious", "amazon"):
        side = payload[name]
        print(
            f"{name}: SLIDE p@1 {side['final_accuracy']['slide']:.3f} vs "
            f"SSM {side['final_accuracy']['sampled_softmax']:.3f} "
            f"(advantage {side['accuracy_advantage']:+.3f}, "
            f"active fraction {side['active_fraction']['slide']:.3f})"
        )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig7_sampled_softmax"))


if __name__ == "__main__":
    main()
