"""Table 2 — CPU core utilisation of TF-CPU vs SLIDE, measured and modelled.

Two complementary sections:

* **Measured** — run the process-HOGWILD trainer
  (:mod:`repro.parallel.sharedmem`) at several worker counts and compute the
  real utilisation of the cores it occupied: total worker CPU seconds
  divided by ``wall x processes`` (via ``getrusage``).  SLIDE's claim is
  that lock-free asynchronous workers keep their cores busy — utilisation
  should stay high as workers are added, unlike TF-CPU's sync-barrier drop.
  Utilisation, unlike speedup, remains meaningful even when worker counts
  exceed the machine's cores (time-shared workers still occupy their share).
* **Calibrated + mechanistic model** — the paper's printed Table 2 numbers
  (TF-CPU 45 %→32 % from 8 to 32 threads; SLIDE stable at ~82-85 %)
  reproduced by :func:`repro.harness.tables.table2_core_utilization`.

Results land in ``BENCH_table2_core_utilization.json``.

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_table2_core_utilization.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.harness.report import format_table
from repro.harness.scaling import available_cores, measure_process_scaling
from repro.harness.tables import table2_core_utilization

_REPO_ROOT = Path(__file__).parent.parent
DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_table2_core_utilization.json"

# Table 2 as printed in the paper.
PAPER_TABLE2 = {
    8: {"tf": 0.45, "slide": 0.82},
    16: {"tf": 0.35, "slide": 0.81},
    32: {"tf": 0.32, "slide": 0.85},
}


def measured_utilization_rows(
    process_counts: tuple[int, ...] = (1, 2, 4),
    scale: float = 1.0 / 512.0,
    epochs: int = 2,
    seed: int = 0,
) -> dict[str, object]:
    """Real per-core utilisation of the process-HOGWILD trainer."""
    measured = measure_process_scaling(
        process_counts=process_counts, scale=scale, epochs=epochs, seed=seed
    )
    rows = [
        {
            "processes": row["processes"],
            "SLIDE_utilization_measured": row["cpu_utilization"],
            "wall_time_s": row["wall_time_s"],
            "speedup_vs_1": row["speedup_vs_1"],
        }
        for row in measured["rows"]
    ]
    return {
        "available_cores": measured["available_cores"],
        "workload": measured["workload"],
        "rows": rows,
    }


def build_report(
    process_counts: tuple[int, ...] = (1, 2, 4),
    scale: float = 1.0 / 512.0,
    epochs: int = 2,
    threads: tuple[int, ...] = (8, 16, 32),
) -> dict[str, object]:
    return {
        "measured": measured_utilization_rows(
            process_counts=process_counts, scale=scale, epochs=epochs
        ),
        "calibrated_model": table2_core_utilization(threads=threads),
        "paper_table2": {str(k): v for k, v in PAPER_TABLE2.items()},
    }


def write_report(report: dict[str, object], output: Path = DEFAULT_OUTPUT) -> None:
    output.write_text(json.dumps(report, indent=2) + "\n")


# ----------------------------------------------------------------------
# pytest bench harness entry points
# ----------------------------------------------------------------------
def test_table2_core_utilization(run_once):
    rows = run_once(table2_core_utilization, threads=(8, 16, 32))
    print()
    print(format_table(rows, title="Table 2: Core utilisation (calibrated + mechanistic model)"))
    for row in rows:
        paper = PAPER_TABLE2[int(row["threads"])]
        # The calibrated curve reproduces the paper's numbers directly; the
        # mechanistic model must reproduce the *relationship* (SLIDE high and
        # stable, TF-CPU low and degrading).
        assert abs(row["TF-CPU_utilization_calibrated"] - paper["tf"]) < 0.02
        assert abs(row["SLIDE_utilization_calibrated"] - paper["slide"]) < 0.02
        assert row["SLIDE_utilization_model"] > row["TF-CPU_utilization_model"]


def test_table2_measured_utilization(run_once):
    measured = run_once(
        measured_utilization_rows,
        process_counts=(1, 2),
        scale=1.0 / 1024.0,
        epochs=1,
    )
    print()
    print(
        format_table(
            measured["rows"],
            title=(
                "Table 2 (measured): process-HOGWILD core utilisation "
                f"({measured['available_cores']} usable cores)"
            ),
        )
    )
    by_count = {int(row["processes"]): row for row in measured["rows"]}
    # The single-process run keeps its core essentially saturated (compute
    # bound, no waiting); allow slack for interpreter overhead + accounting.
    assert by_count[1]["SLIDE_utilization_measured"] > 0.5
    # Utilisation is a fraction of the occupied cores.
    for row in measured["rows"]:
        assert 0.0 < row["SLIDE_utilization_measured"] <= 1.1


# ----------------------------------------------------------------------
# Standalone CLI
# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny config for CI")
    parser.add_argument("--processes", type=int, nargs="+", default=None)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args()

    if args.smoke:
        process_counts = tuple(args.processes or (1, 2))
        scale, epochs = 1.0 / 2048.0, 1
    else:
        process_counts = tuple(args.processes or (1, 2, 4))
        scale, epochs = 1.0 / 512.0, 2

    report = build_report(process_counts=process_counts, scale=scale, epochs=epochs)
    print(
        format_table(
            report["measured"]["rows"],
            title=(
                "Table 2 (measured): process-HOGWILD core utilisation "
                f"({report['measured']['available_cores']} usable cores)"
            ),
        )
    )
    print(
        format_table(
            report["calibrated_model"],
            title="Table 2 (model): calibrated + mechanistic utilisation",
        )
    )
    write_report(report, args.out)
    print(f"wrote {args.out} (cores available: {available_cores()})")

    utilization = report["measured"]["rows"][0]["SLIDE_utilization_measured"]
    if utilization <= 0.0:
        raise SystemExit("measured utilisation was zero — rusage accounting broke")


if __name__ == "__main__":
    main()
