"""Table 2 — CPU core utilisation of TF-CPU vs SLIDE at 8/16/32 threads."""

from repro.harness.report import format_table
from repro.harness.tables import table2_core_utilization

# Table 2 as printed in the paper.
PAPER_TABLE2 = {
    8: {"tf": 0.45, "slide": 0.82},
    16: {"tf": 0.35, "slide": 0.81},
    32: {"tf": 0.32, "slide": 0.85},
}


def test_table2_core_utilization(run_once):
    rows = run_once(table2_core_utilization, threads=(8, 16, 32))
    print()
    print(format_table(rows, title="Table 2: Core utilisation (calibrated + mechanistic model)"))
    for row in rows:
        paper = PAPER_TABLE2[int(row["threads"])]
        # The calibrated curve reproduces the paper's numbers directly; the
        # mechanistic model must reproduce the *relationship* (SLIDE high and
        # stable, TF-CPU low and degrading).
        assert abs(row["TF-CPU_utilization_calibrated"] - paper["tf"]) < 0.02
        assert abs(row["SLIDE_utilization_calibrated"] - paper["slide"]) < 0.02
        assert row["SLIDE_utilization_model"] > row["TF-CPU_utilization_model"]
