"""Table 2 — CPU core utilisation of TF-CPU vs SLIDE, measured and modelled.

Two complementary sections:

* **Measured** — run the process-HOGWILD trainer
  (:mod:`repro.parallel.sharedmem`) at several worker counts and compute the
  real utilisation of the cores it occupied: total worker CPU seconds
  divided by ``wall x processes`` (via ``getrusage``).  SLIDE's claim is
  that lock-free asynchronous workers keep their cores busy — utilisation
  should stay high as workers are added, unlike TF-CPU's sync-barrier drop.
  Utilisation, unlike speedup, remains meaningful even when worker counts
  exceed the machine's cores (time-shared workers still occupy their share).
* **Calibrated + mechanistic model** — the paper's printed Table 2 numbers
  (TF-CPU 45 %→32 % from 8 to 32 threads; SLIDE stable at ~82-85 %)
  reproduced by :func:`repro.harness.tables.table2_core_utilization`.

The registry (``python -m repro.reports --run table2_core_utilization``)
writes ``BENCH_table2_core_utilization.json``.

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_table2_core_utilization.py [--smoke]
"""

from __future__ import annotations

from repro.harness.report import format_table
from repro.harness.scaling import available_cores, measure_process_scaling
from repro.harness.tables import table2_core_utilization

# Table 2 as printed in the paper.
PAPER_TABLE2 = {
    8: {"tf": 0.45, "slide": 0.82},
    16: {"tf": 0.35, "slide": 0.81},
    32: {"tf": 0.32, "slide": 0.85},
}


def measured_utilization_rows(
    process_counts: tuple[int, ...] = (1, 2, 4),
    scale: float = 1.0 / 512.0,
    epochs: int = 2,
    seed: int = 0,
) -> dict[str, object]:
    """Real per-core utilisation of the process-HOGWILD trainer."""
    measured = measure_process_scaling(
        process_counts=process_counts, scale=scale, epochs=epochs, seed=seed
    )
    rows = [
        {
            "processes": row["processes"],
            "SLIDE_utilization_measured": row["cpu_utilization"],
            "wall_time_s": row["wall_time_s"],
            "speedup_vs_1": row["speedup_vs_1"],
        }
        for row in measured["rows"]
    ]
    return {
        "available_cores": measured["available_cores"],
        "workload": measured["workload"],
        "rows": rows,
    }


def build_report(
    process_counts: tuple[int, ...] = (1, 2, 4),
    scale: float = 1.0 / 512.0,
    epochs: int = 2,
    threads: tuple[int, ...] = (8, 16, 32),
) -> dict[str, object]:
    return {
        "measured": measured_utilization_rows(
            process_counts=process_counts, scale=scale, epochs=epochs
        ),
        "calibrated_model": table2_core_utilization(threads=threads),
        "paper_table2": {str(k): v for k, v in PAPER_TABLE2.items()},
    }


# ----------------------------------------------------------------------
# pytest bench harness entry points
# ----------------------------------------------------------------------
def test_table2_core_utilization(run_once):
    rows = run_once(table2_core_utilization, threads=(8, 16, 32))
    print()
    print(format_table(rows, title="Table 2: Core utilisation (calibrated + mechanistic model)"))
    for row in rows:
        paper = PAPER_TABLE2[int(row["threads"])]
        # The calibrated curve reproduces the paper's numbers directly; the
        # mechanistic model must reproduce the *relationship* (SLIDE high and
        # stable, TF-CPU low and degrading).
        assert abs(row["TF-CPU_utilization_calibrated"] - paper["tf"]) < 0.02
        assert abs(row["SLIDE_utilization_calibrated"] - paper["slide"]) < 0.02
        assert row["SLIDE_utilization_model"] > row["TF-CPU_utilization_model"]


def test_table2_measured_utilization(run_once):
    measured = run_once(
        measured_utilization_rows,
        process_counts=(1, 2),
        scale=1.0 / 1024.0,
        epochs=1,
    )
    print()
    print(
        format_table(
            measured["rows"],
            title=(
                "Table 2 (measured): process-HOGWILD core utilisation "
                f"({measured['available_cores']} usable cores)"
            ),
        )
    )
    by_count = {int(row["processes"]): row for row in measured["rows"]}
    # The single-process run keeps its core essentially saturated (compute
    # bound, no waiting); allow slack for interpreter overhead + accounting.
    assert by_count[1]["SLIDE_utilization_measured"] > 0.5
    # Utilisation is a fraction of the occupied cores.
    for row in measured["rows"]:
        assert 0.0 < row["SLIDE_utilization_measured"] <= 1.1


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "table2_core_utilization"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    return build_report(
        process_counts=tuple(int(n) for n in p.get("process_counts", (1, 2, 4))),
        scale=float(p.get("scale", 1.0 / 512.0)),
        epochs=int(p.get("epochs", 2)),
        threads=tuple(int(t) for t in p.get("threads", (8, 16, 32))),
    )


def check(payload: dict, smoke: bool) -> list[str]:
    """Calibrated model matches the printed Table 2; rusage accounting works."""
    problems = []
    for row in payload["calibrated_model"]:
        paper = PAPER_TABLE2.get(int(row["threads"]))
        if paper is None:
            continue
        if abs(row["TF-CPU_utilization_calibrated"] - paper["tf"]) >= 0.02:
            problems.append(f"TF-CPU calibrated utilisation drifted at {row['threads']} threads")
        if abs(row["SLIDE_utilization_calibrated"] - paper["slide"]) >= 0.02:
            problems.append(f"SLIDE calibrated utilisation drifted at {row['threads']} threads")
        if row["SLIDE_utilization_model"] <= row["TF-CPU_utilization_model"]:
            problems.append(
                f"mechanistic model lost the SLIDE>TF-CPU ordering at {row['threads']} threads"
            )
    rows = payload["measured"]["rows"]
    if rows[0]["SLIDE_utilization_measured"] <= 0.0:
        problems.append("measured utilisation was zero — rusage accounting broke")
    for row in rows:
        if not 0.0 < row["SLIDE_utilization_measured"] <= 1.1:
            problems.append(
                f"{row['processes']}-process utilisation "
                f"{row['SLIDE_utilization_measured']} is not a core fraction"
            )
    return problems


def print_report(payload: dict) -> None:
    print(
        format_table(
            payload["measured"]["rows"],
            title=(
                "Table 2 (measured): process-HOGWILD core utilisation "
                f"({payload['measured']['available_cores']} usable cores)"
            ),
        )
    )
    print(
        format_table(
            payload["calibrated_model"],
            title="Table 2 (model): calibrated + mechanistic utilisation",
        )
    )
    print(f"cores available: {available_cores()}")


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("table2_core_utilization"))


if __name__ == "__main__":
    main()
