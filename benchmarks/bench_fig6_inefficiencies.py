"""Figure 6 — distribution of CPU pipeline inefficiencies (top-down analysis).

Paper finding: memory-bound stalls dominate for both frameworks; they *grow*
with thread count for TF-CPU and *shrink* for SLIDE.
"""

from repro.harness.figures import figure6_inefficiency_breakdown
from repro.harness.report import format_table


def test_fig6_inefficiency_breakdown(run_once):
    rows = run_once(figure6_inefficiency_breakdown, threads=(8, 16, 32))
    print()
    print(format_table(rows, title="Figure 6: CPU usage inefficiency breakdown"))

    tf_rows = [r for r in rows if r["framework"] == "Tensorflow-CPU"]
    slide_rows = [r for r in rows if r["framework"] == "SLIDE"]

    # Memory-bound is the dominant inefficiency everywhere.
    for row in rows:
        assert row["memory_bound"] >= row["front_end_bound"]
        assert row["memory_bound"] >= row["core_bound"]
    # Opposite trends with increasing threads.
    assert tf_rows[0]["memory_bound"] < tf_rows[-1]["memory_bound"]
    assert slide_rows[0]["memory_bound"] > slide_rows[-1]["memory_bound"]


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig6_inefficiencies"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (MODELLED breakdown)."""
    p = dict(params or {})
    threads = tuple(int(t) for t in p.get("threads", (8, 16, 32)))
    rows = figure6_inefficiency_breakdown(threads=threads)
    return {"config": {"threads": list(threads)}, "rows": rows}


def check(payload: dict, smoke: bool) -> list[str]:
    """Memory-bound dominates everywhere; trends oppose with thread count."""
    rows = payload["rows"]
    problems = []
    for row in rows:
        if row["memory_bound"] < max(row["front_end_bound"], row["core_bound"]):
            problems.append(
                f"{row['framework']} @ {row['threads']} threads: memory-bound "
                "stalls should dominate the breakdown"
            )
    tf_rows = [r for r in rows if r["framework"] == "Tensorflow-CPU"]
    slide_rows = [r for r in rows if r["framework"] == "SLIDE"]
    if tf_rows and tf_rows[0]["memory_bound"] >= tf_rows[-1]["memory_bound"]:
        problems.append("TF-CPU memory-bound share should grow with threads")
    if slide_rows and slide_rows[0]["memory_bound"] <= slide_rows[-1]["memory_bound"]:
        problems.append("SLIDE memory-bound share should shrink with threads")
    return problems


def print_report(payload: dict) -> None:
    print(format_table(payload["rows"], title="Figure 6: CPU usage inefficiency breakdown"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig6_inefficiencies"))


if __name__ == "__main__":
    main()
