"""Figure 6 — distribution of CPU pipeline inefficiencies (top-down analysis).

Paper finding: memory-bound stalls dominate for both frameworks; they *grow*
with thread count for TF-CPU and *shrink* for SLIDE.
"""

from repro.harness.figures import figure6_inefficiency_breakdown
from repro.harness.report import format_table


def test_fig6_inefficiency_breakdown(run_once):
    rows = run_once(figure6_inefficiency_breakdown, threads=(8, 16, 32))
    print()
    print(format_table(rows, title="Figure 6: CPU usage inefficiency breakdown"))

    tf_rows = [r for r in rows if r["framework"] == "Tensorflow-CPU"]
    slide_rows = [r for r in rows if r["framework"] == "SLIDE"]

    # Memory-bound is the dominant inefficiency everywhere.
    for row in rows:
        assert row["memory_bound"] >= row["front_end_bound"]
        assert row["memory_bound"] >= row["core_bound"]
    # Opposite trends with increasing threads.
    assert tf_rows[0]["memory_bound"] < tf_rows[-1]["memory_bound"]
    assert slide_rows[0]["memory_bound"] > slide_rows[-1]["memory_bound"]
