"""Ablation — hash family choice (SimHash vs DWTA vs WTA vs DOPH vs MinHash).

The paper uses SimHash for Delicious-200K and DWTA for Amazon-670K; this
ablation trains the same scaled network with each supported family and
reports final accuracy and the measured active-set size, confirming that the
pipeline works end to end with every family (DESIGN.md §5).
"""

from repro.harness.experiment import HeadToHeadExperiment
from repro.harness.report import format_table

FAMILIES = ("simhash", "dwta", "wta", "doph", "minhash")


def test_ablation_hash_families(run_once, delicious_config):
    def sweep():
        rows = []
        for family in FAMILIES:
            experiment = HeadToHeadExperiment(delicious_config)
            run = experiment.run_slide(hash_family=family)
            rows.append(
                {
                    "hash_family": family,
                    "final_accuracy": run.final_accuracy,
                    "avg_active_output": run.avg_active_output,
                    "active_fraction": run.avg_active_output
                    / delicious_config.dataset.label_dim,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(rows, title="Ablation: hash family choice (Delicious-200K-like)"))

    random_baseline = 1.0 / delicious_config.dataset.label_dim
    for row in rows:
        # Every family must actually learn (well above random) and keep the
        # output layer sparse.
        assert row["final_accuracy"] > 5 * random_baseline, row["hash_family"]
        assert row["active_fraction"] < 0.9, row["hash_family"]


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "ablation_hash_families"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    from repro.harness.experiment import small_experiment_config

    p = dict(params or {})
    families = tuple(str(f) for f in p.get("families", FAMILIES))
    config = small_experiment_config(
        dataset="delicious",
        scale=float(p.get("scale", 1.0 / 1024.0)),
        epochs=int(p.get("epochs", 2)),
        seed=int(p.get("seed", 0)),
    )
    rows = []
    for family in families:
        experiment = HeadToHeadExperiment(config)
        run_result = experiment.run_slide(hash_family=family)
        rows.append(
            {
                "hash_family": family,
                "final_accuracy": run_result.final_accuracy,
                "avg_active_output": run_result.avg_active_output,
                "active_fraction": run_result.avg_active_output / config.dataset.label_dim,
            }
        )
    return {
        "config": {"families": list(families), "label_dim": config.dataset.label_dim},
        "rows": rows,
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """Every family learns well above random while keeping the output sparse."""
    random_baseline = 1.0 / int(payload["config"]["label_dim"])
    problems = []
    for row in payload["rows"]:
        if row["final_accuracy"] <= 5 * random_baseline:
            problems.append(f"{row['hash_family']}: accuracy no better than random")
        if row["active_fraction"] >= 0.9:
            problems.append(f"{row['hash_family']}: output layer not kept sparse")
    return problems


def print_report(payload: dict) -> None:
    print(format_table(payload["rows"], title="Ablation: hash family choice"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("ablation_hash_families"))


if __name__ == "__main__":
    main()
