"""Ablation — hash family choice (SimHash vs DWTA vs WTA vs DOPH vs MinHash).

The paper uses SimHash for Delicious-200K and DWTA for Amazon-670K; this
ablation trains the same scaled network with each supported family and
reports final accuracy and the measured active-set size, confirming that the
pipeline works end to end with every family (DESIGN.md §5).
"""

from repro.harness.experiment import HeadToHeadExperiment
from repro.harness.report import format_table

FAMILIES = ("simhash", "dwta", "wta", "doph", "minhash")


def test_ablation_hash_families(run_once, delicious_config):
    def sweep():
        rows = []
        for family in FAMILIES:
            experiment = HeadToHeadExperiment(delicious_config)
            run = experiment.run_slide(hash_family=family)
            rows.append(
                {
                    "hash_family": family,
                    "final_accuracy": run.final_accuracy,
                    "avg_active_output": run.avg_active_output,
                    "active_fraction": run.avg_active_output
                    / delicious_config.dataset.label_dim,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(rows, title="Ablation: hash family choice (Delicious-200K-like)"))

    random_baseline = 1.0 / delicious_config.dataset.label_dim
    for row in rows:
        # Every family must actually learn (well above random) and keep the
        # output layer sparse.
        assert row["final_accuracy"] > 5 * random_baseline, row["hash_family"]
        assert row["active_fraction"] < 0.9, row["hash_family"]
