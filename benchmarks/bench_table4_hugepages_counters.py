"""Table 4 — CPU-counter metrics with and without Transparent Hugepages."""

from repro.harness.report import format_table
from repro.harness.tables import table4_hugepages_counters


def test_table4_hugepages_counters(run_once):
    rows = run_once(table4_hugepages_counters)
    print()
    print(format_table(rows, title="Table 4: CPU counters with / without Transparent Hugepages"))

    by_metric = {row["metric"]: row for row in rows}
    # Every counter improves with hugepages (the paper's Table 4 shows strictly
    # lower values in the hugepages column for every row).
    for row in rows:
        assert row["with_hugepages"] <= row["without_hugepages"]
    # The dTLB miss-rate improvement is dramatic (paper: 5.12% -> 0.25%).
    dtlb = by_metric["dTLB load miss rate"]
    assert dtlb["improvement_factor"] > 5.0
    # The iTLB miss rate with 4KB pages is severe (paper: 56%).
    itlb = by_metric["iTLB load miss rate"]
    assert itlb["without_hugepages"] > 0.3


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "table4_hugepages_counters"
#
# These counters come from the paper's published Table 4 values applied to a
# modelled memory footprint — not from perf counters on this host — so the
# artifact is stamped ``measured: false`` and excluded from trend gating.
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (MODELLED counters)."""
    p = dict(params or {})
    kwargs = {
        key: type(default)(p.get(key, default))
        for key, default in (
            ("input_dim", 135_909),
            ("hidden_dim", 128),
            ("output_dim", 670_091),
            ("batch_size", 256),
            ("avg_active_output", 3000.0),
            ("iterations_per_second", 10.0),
        )
    }
    rows = table4_hugepages_counters(**kwargs)
    return {"config": kwargs, "rows": rows}


def check(payload: dict, smoke: bool) -> list[str]:
    """Every counter improves with hugepages; dTLB improvement is dramatic."""
    rows = payload["rows"]
    problems = []
    for row in rows:
        if row["with_hugepages"] > row["without_hugepages"]:
            problems.append(f"{row['metric']}: hugepages should not make the counter worse")
    by_metric = {row["metric"]: row for row in rows}
    dtlb = by_metric.get("dTLB load miss rate")
    if dtlb is not None:
        factor = dtlb["improvement_factor"]
        if not (isinstance(factor, (int, float)) and factor > 5.0):
            problems.append(f"dTLB miss-rate improvement {factor!r} should exceed 5x")
    return problems


def print_report(payload: dict) -> None:
    print(
        format_table(
            payload["rows"], title="Table 4: CPU counters with / without Transparent Hugepages"
        )
    )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("table4_hugepages_counters"))


if __name__ == "__main__":
    main()
