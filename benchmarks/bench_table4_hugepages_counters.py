"""Table 4 — CPU-counter metrics with and without Transparent Hugepages."""

from repro.harness.report import format_table
from repro.harness.tables import table4_hugepages_counters


def test_table4_hugepages_counters(run_once):
    rows = run_once(table4_hugepages_counters)
    print()
    print(format_table(rows, title="Table 4: CPU counters with / without Transparent Hugepages"))

    by_metric = {row["metric"]: row for row in rows}
    # Every counter improves with hugepages (the paper's Table 4 shows strictly
    # lower values in the hugepages column for every row).
    for row in rows:
        assert row["with_hugepages"] <= row["without_hugepages"]
    # The dTLB miss-rate improvement is dramatic (paper: 5.12% -> 0.25%).
    dtlb = by_metric["dTLB load miss rate"]
    assert dtlb["improvement_factor"] > 5.0
    # The iTLB miss rate with 4KB pages is severe (paper: 56%).
    itlb = by_metric["iTLB load miss rate"]
    assert itlb["without_hugepages"] > 0.3
