"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md §4
for the index and EXPERIMENTS.md for paper-vs-measured numbers).  Bench
functions print the regenerated artefact with ``repro.harness.report`` so the
captured output can be compared against the paper, and time the driver with
pytest-benchmark (single round — these are experiment drivers, not
micro-benchmarks).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.experiment import ExperimentConfig, small_experiment_config  # noqa: E402


def _bench_config(dataset: str) -> ExperimentConfig:
    """Benchmark-scale head-to-head config (a few hundred labels, 2 epochs)."""
    scale = 1.0 / 1024.0 if dataset == "delicious" else 1.0 / 2048.0
    return small_experiment_config(dataset=dataset, scale=scale, epochs=2, seed=0)


@pytest.fixture(scope="session")
def delicious_config() -> ExperimentConfig:
    return _bench_config("delicious")


@pytest.fixture(scope="session")
def amazon_config() -> ExperimentConfig:
    return _bench_config("amazon")


@pytest.fixture
def run_once(benchmark):
    """Run an experiment driver exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
