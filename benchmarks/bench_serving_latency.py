"""Serving under sustained load: QPS sweep, load shedding, hot-reload blip.

Not a paper figure — the deployment-side evidence for the paper's thesis
that CPU SLIDE is *servable*, not just trainable.  The bench trains a SLIDE
network, publishes it into a :class:`CheckpointStore`, and drives an
:class:`~repro.serving.runtime.OnlineRuntime` with the open-loop generator
from :mod:`repro.serving.loadgen`:

1. **Capacity probe** — flood the runtime (shed admission) and take the
   achieved completion rate as its sustainable capacity.
2. **Sustained-QPS sweep** — offered load from a fraction of capacity to
   2x beyond it.  The overload contract under test: shed rate rises with
   offered load while the p99 of *admitted* requests stays bounded by the
   deadline (graceful degradation, not collapse).
3. **Hot reload under live traffic** — while the generator runs, the
   trainer publishes two more checkpoint versions (auto-pruned via
   ``keep_last``); each is hot-swapped in through the incremental LSH
   ``update(dirty)`` path.  Asserted: zero failed non-shed requests, every
   swap incremental (no full rebuild), and the write-lock hold time — the
   reload "blip" — measured per swap.
4. **Parity** — after both swaps the resident engine's top-k must be
   *bitwise* identical to a cold load of the same checkpoint.

The registry (``python -m repro.reports --run serving_latency``) writes
``BENCH_serving_latency.json``.  Runs under the pytest bench harness or
standalone::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py [--smoke]
"""

from __future__ import annotations

import threading
import time
from tempfile import TemporaryDirectory

import numpy as np

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    ServingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.harness.report import format_table
from repro.serving import (
    CheckpointStore,
    OnlineRuntime,
    SparseInferenceEngine,
    load_checkpoint,
    run_open_loop,
)

# Per-request deadline for the sweep: the bound "graceful degradation" is
# measured against — admitted requests must finish within it plus compute.
DEADLINE_MS = 250.0


def _train_network(scale: float, seed: int = 0):
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    label_dim = dataset.config.label_dim
    # bucket_size >= label_dim: no FIFO bucket can ever overflow, which is
    # the precondition for bitwise hot-swap parity (overflow eviction order
    # is the one piece of table state an incremental patch does not carry).
    lsh = LSHConfig(hash_family="simhash", k=4, l=24, bucket_size=max(96, label_dim))
    layers = (
        LayerConfig(size=64, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(
                strategy="vanilla",
                target_active=max(16, label_dim // 12),
                min_active=16,
            ),
            rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(input_dim=dataset.config.feature_dim, layers=layers, seed=seed)
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=64,
            epochs=1,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=seed,
        ),
    )
    t0 = time.monotonic()
    trainer.train(dataset.train, dataset.test)
    train_s = time.monotonic() - t0
    return network, dataset, trainer, train_s


def build_report(
    scale: float = 1.0 / 1024.0,
    probe_s: float = 2.0,
    sweep_s: float = 3.0,
    load_fractions: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    reload_s: float = 5.0,
    num_swaps: int = 2,
    seed: int = 0,
) -> dict:
    network, dataset, trainer, train_s = _train_network(scale=scale, seed=seed)
    budget = max(16, int(0.15 * network.output_dim))
    examples = list(dataset.test)

    with TemporaryDirectory(prefix="bench-serving-store-") as tmp:
        store = CheckpointStore(tmp)
        store.save(network, trainer.optimizer, keep_last=3)
        config = ServingConfig(
            engine="sparse",
            active_budget=budget,
            top_k=5,
            max_batch_size=16,
            max_wait_ms=1.0,
            num_workers=2,
            queue_capacity=256,
            admission_policy="shed",
            deadline_ms=DEADLINE_MS,
            reload_poll_s=3600.0,  # swaps are driven synchronously below
        )
        runtime = OnlineRuntime(store, config).start()
        try:
            # ------------------------------------------------------ phase 1
            # The probe rate must exceed what the runtime can sustain or
            # "capacity" is just the probe rate echoed back; 10k/s is past
            # what the single-threaded generator + queue can clear here.
            probe = run_open_loop(runtime, examples, qps=10_000.0, duration_s=probe_s, k=5)
            capacity = max(probe.achieved_qps, 1.0)

            # ------------------------------------------------------ phase 2
            sweep_rows = []
            for fraction in load_fractions:
                time.sleep(0.3)  # let the previous point's backlog drain
                report = run_open_loop(
                    runtime,
                    examples,
                    qps=max(fraction * capacity, 1.0),
                    duration_s=sweep_s,
                    k=5,
                )
                row = report.to_dict()
                row["load_fraction"] = fraction
                sweep_rows.append(row)

            # ------------------------------------------------------ phase 3
            time.sleep(0.3)
            reload_qps = max(0.6 * capacity, 1.0)
            # Each publish retrains one epoch before swapping; size the
            # traffic window off the measured epoch time so *every* swap
            # lands while the generator is still sending (the post-swap
            # generations must carry live traffic, not just exist).
            reload_window_s = max(reload_s, num_swaps * (1.5 * train_s + 0.6) + 1.2)
            reload_reports: list[dict] = []
            loadgen_result: list = []

            def client() -> None:
                loadgen_result.append(
                    run_open_loop(
                        runtime, examples, qps=reload_qps, duration_s=reload_window_s, k=5
                    )
                )

            thread = threading.Thread(target=client, daemon=True)
            thread.start()
            for _ in range(num_swaps):
                time.sleep(0.4)
                trainer.train(dataset.train)
                store.save(network, trainer.optimizer, keep_last=3)
                swap = runtime.watcher.poll_once()
                assert swap is not None, "watcher must pick up the new version"
                reload_reports.append(
                    {
                        "version": swap.version,
                        "blip_ms": swap.duration_s * 1e3,
                        "changed_rows": swap.changed_rows,
                        "update_items": swap.update_items,
                        "moved_entries": swap.moved_entries,
                        "full_rebuild": swap.full_rebuild,
                        "generation": swap.generation,
                    }
                )
            thread.join(timeout=120.0)
            reload_traffic = loadgen_result[0].to_dict()

            # ------------------------------------------------------ phase 4
            latest = store.latest()
            cold = SparseInferenceEngine(
                load_checkpoint(latest, load_optimizer=False).network,
                active_budget=budget,
            )
            resident = runtime.engine
            swapped_preds = resident.predict_batch(examples, k=5)
            cold_preds = cold.predict_batch(examples, k=5)
            parity = all(
                np.array_equal(a.class_ids, b.class_ids)
                and np.array_equal(a.scores, b.scores)
                for a, b in zip(swapped_preds, cold_preds)
            )
            stats = runtime.stats()
        finally:
            runtime.stop()

    return {
        "config": {
            "scale": scale,
            "active_budget": budget,
            "num_workers": config.num_workers,
            "queue_capacity": config.queue_capacity,
            "deadline_ms": DEADLINE_MS,
            "input_dim": network.input_dim,
            "output_dim": network.output_dim,
            "sweep_duration_s": sweep_s,
        },
        "capacity": {
            "probe_offered_qps": probe.offered_qps,
            "sustained_qps": capacity,
            "probe_shed_rate": probe.shed_rate,
        },
        "qps_sweep": sweep_rows,
        "hot_reload": {
            "num_swaps": num_swaps,
            "window_s": reload_window_s,
            "swaps": reload_reports,
            "incremental_swaps": sum(1 for r in reload_reports if not r["full_rebuild"]),
            "traffic": reload_traffic,
            "reloads_recorded": stats["reloads"],
            "reload_failures": stats["reload_failures"],
        },
        "parity": {
            "bitwise_topk_equal_to_cold_load": bool(parity),
            "checkpoint_version": latest.name,
            "requests_compared": len(examples),
        },
    }


def check_report(report: dict) -> list[str]:
    """Acceptance invariants; returns human-readable failures (empty = pass)."""
    failures: list[str] = []
    sweep = report["qps_sweep"]
    hot = report["hot_reload"]
    bound_ms = report["config"]["deadline_ms"] + 500.0

    for row in sweep:
        if row["errors"]:
            failures.append(f"{row['errors']} hard errors at {row['offered_qps']:.0f} qps")
        # Graceful degradation: admitted requests stay bounded by the
        # deadline (+compute/settle slack) even at 2x overload.
        if row["completed"] and row["latency_ms"]["p99"] > bound_ms:
            failures.append(
                f"admitted p99 {row['latency_ms']['p99']:.0f}ms exceeds "
                f"{bound_ms:.0f}ms at {row['load_fraction']}x load"
            )
    # Overload must actually shed, and shedding must grow with offered load.
    if sweep[-1]["shed_rate"] < sweep[0]["shed_rate"]:
        failures.append("shed rate did not rise with offered load")
    if sweep[-1]["load_fraction"] >= 1.5 and sweep[-1]["shed_rate"] == 0.0:
        failures.append("no shedding at overload — admission control inert")

    if hot["traffic"]["errors"]:
        failures.append(f"hot reload failed {hot['traffic']['errors']} live requests")
    if hot["incremental_swaps"] < 1:
        failures.append("no incremental (non-full-rebuild) LSH patch recorded")
    if any(r["full_rebuild"] for r in hot["swaps"]):
        failures.append("a swap fell back to a full table rebuild")
    if len(hot["traffic"]["generations"]) < hot["num_swaps"] + 1:
        failures.append(
            f"traffic spanned {len(hot['traffic']['generations'])} weight "
            f"generations, expected {hot['num_swaps'] + 1} (every swap under load)"
        )
    if not report["parity"]["bitwise_topk_equal_to_cold_load"]:
        failures.append("post-swap engine diverges from cold-loaded checkpoint")
    return failures


def _print_report(report: dict) -> None:
    rows = [
        {
            "load": f"{row['load_fraction']}x",
            "offered_qps": round(row["offered_qps"], 1),
            "achieved_qps": round(row["achieved_qps"], 1),
            "p50_ms": round(row["latency_ms"]["p50"], 2),
            "p99_ms": round(row["latency_ms"]["p99"], 2),
            "p999_ms": round(row["latency_ms"]["p999"], 2),
            "shed_rate": round(row["shed_rate"], 3),
            "errors": row["errors"],
        }
        for row in report["qps_sweep"]
    ]
    print(
        format_table(
            rows,
            title=(
                f"Sustained-QPS sweep (capacity "
                f"{report['capacity']['sustained_qps']:.0f} rps, "
                f"deadline {report['config']['deadline_ms']:.0f}ms)"
            ),
        )
    )
    print()
    swap_rows = [
        {
            "version": r["version"],
            "blip_ms": round(r["blip_ms"], 2),
            "changed_rows": r["changed_rows"],
            "moved_entries": r["moved_entries"],
            "full_rebuild": r["full_rebuild"],
        }
        for r in report["hot_reload"]["swaps"]
    ]
    print(format_table(swap_rows, title="Hot reload under live traffic"))
    traffic = report["hot_reload"]["traffic"]
    print(
        f"reload-phase traffic: {traffic['completed']} completed, "
        f"{traffic['errors']} errors, shed rate {traffic['shed_rate']:.3f}, "
        f"generations {sorted(traffic['generations'])}"
    )
    print(
        "parity (post-swap vs cold load): "
        f"{report['parity']['bitwise_topk_equal_to_cold_load']}"
    )


def test_serving_latency_bench_smoke(run_once):
    report = run_once(
        build_report,
        scale=1.0 / 2048.0,
        probe_s=0.6,
        sweep_s=0.8,
        load_fractions=(0.5, 1.5),
        reload_s=1.5,
    )
    print()
    _print_report(report)
    failures = check_report(report)
    assert not failures, "\n".join(failures)


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "serving_latency"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    if p.get("smoke", False):
        # The 2x point stays in the smoke sweep: the committed baseline's
        # overload p99 / shed rate are the trend-gated metrics.
        return build_report(
            scale=float(p.get("scale", 1.0 / 2048.0)),
            probe_s=0.8,
            sweep_s=1.0,
            load_fractions=(0.5, 1.0, 2.0),
            reload_s=2.0,
        )
    return build_report(scale=float(p.get("scale", 1.0 / 1024.0)))


def check(payload: dict, smoke: bool) -> list[str]:
    """Graceful-degradation + hot-reload acceptance invariants."""
    return check_report(payload)


def print_report(payload: dict) -> None:
    _print_report(payload)


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("serving_latency"))


if __name__ == "__main__":
    main()
