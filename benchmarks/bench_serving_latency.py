"""Serving latency/throughput: sparse (LSH-budgeted) vs dense engines.

Not a paper figure — the serving-side extension of the paper's thesis: the
same hash tables that make *training* sub-linear bound the number of output
neurons scored per request.  The bench trains one SLIDE network, then drives
both engines across client batch sizes, printing per-request latency
quantiles (measured with the :mod:`repro.perf.latency` histogram) and
throughput, plus the accuracy-vs-latency budget sweep from
:mod:`repro.harness.serving_sweep`.

At this bench's toy scale (a few hundred labels) the dense engine's single
BLAS matmul is *faster* than the per-request Python LSH probing — the table
makes the constant-factor honest.  The sparse engine's win is the
``mean_candidates`` column: work per request is bounded by the budget, not
the output width, which is what matters at the paper's 670K-label scale.

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py
"""

from __future__ import annotations

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.harness.report import format_table
from repro.harness.serving_sweep import measure_engine, serving_accuracy_latency_sweep
from repro.serving.engine import DenseInferenceEngine, SparseInferenceEngine


def _train_network(scale: float = 1.0 / 1024.0, seed: int = 0):
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    label_dim = dataset.config.label_dim
    lsh = LSHConfig(hash_family="simhash", k=4, l=24, bucket_size=96)
    layers = (
        LayerConfig(size=64, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=lsh,
            sampling=SamplingConfig(
                strategy="vanilla",
                target_active=max(16, label_dim // 12),
                min_active=16,
            ),
            rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
        ),
    )
    network = SlideNetwork(
        SlideNetworkConfig(input_dim=dataset.config.feature_dim, layers=layers, seed=seed)
    )
    trainer = SlideTrainer(
        network,
        TrainingConfig(
            batch_size=64,
            epochs=1,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=seed,
        ),
    )
    trainer.train(dataset.train, dataset.test)
    return network, dataset


def serving_latency_comparison(
    batch_sizes: tuple[int, ...] = (1, 8, 32),
    active_budget_fraction: float = 0.15,
    scale: float = 1.0 / 1024.0,
    trained: tuple | None = None,
) -> list[dict[str, object]]:
    """Latency/throughput rows for both engines across client batch sizes.

    ``trained`` accepts a pre-built ``(network, dataset)`` pair so callers
    that also run the budget sweep train only once.
    """
    network, dataset = trained if trained is not None else _train_network(scale=scale)
    budget = max(16, int(active_budget_fraction * network.output_dim))
    engines = [
        ("dense", DenseInferenceEngine(network)),
        (f"sparse(b={budget})", SparseInferenceEngine(network, active_budget=budget)),
    ]
    rows: list[dict[str, object]] = []
    for name, engine in engines:
        for batch_size in batch_sizes:
            _, histogram, throughput, _ = measure_engine(
                engine, dataset.test, k=5, batch_size=batch_size
            )
            summary = histogram.summary()
            rows.append(
                {
                    "engine": name,
                    "batch_size": batch_size,
                    "requests": len(dataset.test),
                    "p50_ms": round(summary["p50_s"] * 1e3, 3),
                    "p95_ms": round(summary["p95_s"] * 1e3, 3),
                    "p99_ms": round(summary["p99_s"] * 1e3, 3),
                    "throughput_rps": round(throughput, 1),
                }
            )
    return rows


def test_serving_latency_table(run_once):
    rows = run_once(serving_latency_comparison)
    print()
    print(
        format_table(
            rows, title="Serving latency/throughput: sparse vs dense engines"
        )
    )
    # Both engines served every request and recorded real latencies.
    assert all(row["p50_ms"] > 0 for row in rows)
    assert all(row["throughput_rps"] > 0 for row in rows)
    # Batching amortises per-request cost for the dense engine.
    dense = [row for row in rows if row["engine"] == "dense"]
    assert dense[-1]["throughput_rps"] > dense[0]["throughput_rps"]


def main() -> None:
    network, dataset = _train_network()
    rows = serving_latency_comparison(trained=(network, dataset))
    print(format_table(rows, title="Serving latency/throughput: sparse vs dense engines"))
    print()
    budgets = (None, network.output_dim // 4, network.output_dim // 8, 32)
    sweep = serving_accuracy_latency_sweep(network, dataset.test, budgets=budgets, k=1)
    print(
        format_table(
            [result.as_row() for result in sweep],
            title="Accuracy vs latency across active budgets",
        )
    )


if __name__ == "__main__":
    main()
