"""Ablation — sampling strategy choice in end-to-end training.

Appendix C: "the difference between iteration wise convergence of the tasks
with TopK Thresholding and Vanilla Sampling are negligible", which is why the
cheap Vanilla strategy is the default.  This ablation verifies the accuracy
side of that claim (the overhead side is Figure 4's bench).
"""

from repro.harness.experiment import HeadToHeadExperiment
from repro.harness.report import format_table

STRATEGIES = ("vanilla", "topk", "hard_threshold")


def test_ablation_sampling_strategies(run_once, delicious_config):
    def sweep():
        rows = []
        for strategy in STRATEGIES:
            experiment = HeadToHeadExperiment(delicious_config)
            run = experiment.run_slide(sampling_strategy=strategy)
            rows.append(
                {
                    "strategy": strategy,
                    "final_accuracy": run.final_accuracy,
                    "avg_active_output": run.avg_active_output,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(rows, title="Ablation: sampling strategy (Delicious-200K-like)"))

    accuracies = {row["strategy"]: row["final_accuracy"] for row in rows}
    # Vanilla's convergence is within a small margin of the more expensive
    # TopK aggregation — the paper's justification for using it by default.
    assert accuracies["vanilla"] >= accuracies["topk"] - 0.1
    for strategy, accuracy in accuracies.items():
        assert accuracy > 5.0 / delicious_config.dataset.label_dim, strategy
