"""Ablation — sampling strategy choice in end-to-end training.

Appendix C: "the difference between iteration wise convergence of the tasks
with TopK Thresholding and Vanilla Sampling are negligible", which is why the
cheap Vanilla strategy is the default.  This ablation verifies the accuracy
side of that claim (the overhead side is Figure 4's bench).
"""

from repro.harness.experiment import HeadToHeadExperiment
from repro.harness.report import format_table

STRATEGIES = ("vanilla", "topk", "hard_threshold")


def test_ablation_sampling_strategies(run_once, delicious_config):
    def sweep():
        rows = []
        for strategy in STRATEGIES:
            experiment = HeadToHeadExperiment(delicious_config)
            run = experiment.run_slide(sampling_strategy=strategy)
            rows.append(
                {
                    "strategy": strategy,
                    "final_accuracy": run.final_accuracy,
                    "avg_active_output": run.avg_active_output,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(rows, title="Ablation: sampling strategy (Delicious-200K-like)"))

    accuracies = {row["strategy"]: row["final_accuracy"] for row in rows}
    # Vanilla's convergence is within a small margin of the more expensive
    # TopK aggregation — the paper's justification for using it by default.
    assert accuracies["vanilla"] >= accuracies["topk"] - 0.1
    for strategy, accuracy in accuracies.items():
        assert accuracy > 5.0 / delicious_config.dataset.label_dim, strategy


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "ablation_sampling_strategies"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    from repro.harness.experiment import small_experiment_config

    p = dict(params or {})
    strategies = tuple(str(s) for s in p.get("strategies", STRATEGIES))
    config = small_experiment_config(
        dataset="delicious",
        scale=float(p.get("scale", 1.0 / 1024.0)),
        epochs=int(p.get("epochs", 2)),
        seed=int(p.get("seed", 0)),
    )
    rows = []
    for strategy in strategies:
        experiment = HeadToHeadExperiment(config)
        run_result = experiment.run_slide(sampling_strategy=strategy)
        rows.append(
            {
                "strategy": strategy,
                "final_accuracy": run_result.final_accuracy,
                "avg_active_output": run_result.avg_active_output,
            }
        )
    return {
        "config": {"strategies": list(strategies), "label_dim": config.dataset.label_dim},
        "rows": rows,
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """Vanilla converges within a small margin of the expensive TopK."""
    accuracies = {row["strategy"]: row["final_accuracy"] for row in payload["rows"]}
    problems = []
    if "vanilla" in accuracies and "topk" in accuracies:
        if accuracies["vanilla"] < accuracies["topk"] - 0.1:
            problems.append("vanilla sampling lost more than 0.1 precision@1 vs topk")
    random_baseline = 5.0 / int(payload["config"]["label_dim"])
    for strategy, accuracy in accuracies.items():
        if accuracy <= random_baseline:
            problems.append(f"{strategy}: accuracy no better than random")
    return problems


def print_report(payload: dict) -> None:
    print(format_table(payload["rows"], title="Ablation: sampling strategy"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("ablation_sampling_strategies"))


if __name__ == "__main__":
    main()
