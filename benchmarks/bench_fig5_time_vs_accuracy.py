"""Figure 5 — SLIDE vs TF-GPU vs TF-CPU, time- and iteration-wise accuracy.

The paper's headline: SLIDE on a 44-core CPU reaches any accuracy level
1.8x (Delicious-200K) / 2.7x (Amazon-670K) faster than TF on a V100, and
roughly 8x faster than TF on the same CPU, while iteration-wise convergence
matches the full-softmax baseline.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS, DELICIOUS_PAPER_DIMS
from repro.harness.figures import figure5_time_vs_accuracy
from repro.harness.report import format_comparison, format_series, format_table


def _report(result, dataset_name, paper_speedup_gpu, paper_speedup_cpu):
    print()
    print(format_table(result["summary"], title=f"Figure 5 summary ({dataset_name})"))
    print(
        format_series(
            "time_s", "precision@1", result["time_series"], title="Time vs accuracy"
        )
    )
    print(
        format_series(
            "iteration",
            "precision@1",
            result["iteration_series"],
            title="Iteration vs accuracy",
        )
    )
    print(format_comparison(paper_speedup_gpu, result["speedup_vs_gpu"], "speed-up vs TF-GPU", "x"))
    print(format_comparison(paper_speedup_cpu, result["speedup_vs_cpu"], "speed-up vs TF-CPU", "x"))


def test_fig5_delicious_like(run_once, delicious_config):
    result = run_once(
        figure5_time_vs_accuracy, delicious_config, cores=44, paper_dims=DELICIOUS_PAPER_DIMS
    )
    _report(result, "Delicious-200K-like", paper_speedup_gpu=1.8, paper_speedup_cpu=8.0)
    # Shape checks: SLIDE wins against both baselines at 44 cores, and the
    # CPU baseline is the slowest of the three.
    assert result["speedup_vs_gpu"] > 1.0
    assert result["speedup_vs_cpu"] > result["speedup_vs_gpu"]


def test_fig5_amazon_like(run_once, amazon_config):
    result = run_once(
        figure5_time_vs_accuracy, amazon_config, cores=44, paper_dims=AMAZON_PAPER_DIMS
    )
    _report(result, "Amazon-670K-like", paper_speedup_gpu=2.7, paper_speedup_cpu=10.0)
    assert result["speedup_vs_gpu"] > 1.0
    assert result["speedup_vs_cpu"] > result["speedup_vs_gpu"]


def test_fig5_iteration_wise_parity(run_once, delicious_config):
    """Iteration-wise, SLIDE's convergence must not trail the full softmax:
    adaptive sampling costs no accuracy per iteration."""
    result = run_once(
        figure5_time_vs_accuracy, delicious_config, cores=44, paper_dims=DELICIOUS_PAPER_DIMS
    )
    slide_iters, slide_acc = result["iteration_series"]["SLIDE CPU"]
    gpu_iters, gpu_acc = result["iteration_series"]["TF-GPU"]
    assert slide_acc[-1] >= gpu_acc[-1] - 0.05


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig5_time_accuracy"
# ----------------------------------------------------------------------
def _side_payload(result: dict) -> dict:
    from repro.harness.report import series_payload

    return {
        "summary": result["summary"],
        "speedup_vs_gpu": result["speedup_vs_gpu"],
        "speedup_vs_cpu": result["speedup_vs_cpu"],
        "common_target_accuracy": result["common_target_accuracy"],
        "time_series": series_payload(result["time_series"], "time_s", "precision_at_1"),
        "iteration_series": series_payload(
            result["iteration_series"], "iteration", "precision_at_1"
        ),
    }


def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (MODELLED wall-clock)."""
    from repro.harness.experiment import small_experiment_config

    p = dict(params or {})
    epochs = int(p.get("epochs", 2))
    cores = int(p.get("cores", 44))
    seed = int(p.get("seed", 0))
    sides = {}
    for name, scale_key, default_scale, dims in (
        ("delicious", "scale_delicious", 1.0 / 1024.0, DELICIOUS_PAPER_DIMS),
        ("amazon", "scale_amazon", 1.0 / 2048.0, AMAZON_PAPER_DIMS),
    ):
        config = small_experiment_config(
            dataset=name, scale=float(p.get(scale_key, default_scale)), epochs=epochs, seed=seed
        )
        sides[name] = _side_payload(
            figure5_time_vs_accuracy(config, cores=cores, paper_dims=dims)
        )
    return {
        "config": {
            "epochs": epochs,
            "cores": cores,
            "seed": seed,
            "scale_delicious": float(p.get("scale_delicious", 1.0 / 1024.0)),
            "scale_amazon": float(p.get("scale_amazon", 1.0 / 2048.0)),
        },
        "delicious": sides["delicious"],
        "amazon": sides["amazon"],
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """SLIDE wins against both baselines; TF-CPU is the slowest of the three."""
    problems = []
    for name in ("delicious", "amazon"):
        side = payload[name]
        gpu, cpu = side["speedup_vs_gpu"], side["speedup_vs_cpu"]
        if not (isinstance(gpu, (int, float)) and gpu > 1.0):
            problems.append(f"{name}: modelled speedup vs TF-GPU is {gpu!r}, expected > 1")
        if not (isinstance(cpu, (int, float)) and isinstance(gpu, (int, float)) and cpu > gpu):
            problems.append(f"{name}: TF-CPU should be slower than TF-GPU ({cpu!r} vs {gpu!r})")
    return problems


def print_report(payload: dict) -> None:
    for name in ("delicious", "amazon"):
        side = payload[name]
        print(format_table(side["summary"], title=f"Figure 5 summary ({name}-like)"))
        print(
            f"  modelled speedups: vs TF-GPU {side['speedup_vs_gpu']}, "
            f"vs TF-CPU {side['speedup_vs_cpu']}"
        )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig5_time_accuracy"))


if __name__ == "__main__":
    main()
