"""Figure 5 — SLIDE vs TF-GPU vs TF-CPU, time- and iteration-wise accuracy.

The paper's headline: SLIDE on a 44-core CPU reaches any accuracy level
1.8x (Delicious-200K) / 2.7x (Amazon-670K) faster than TF on a V100, and
roughly 8x faster than TF on the same CPU, while iteration-wise convergence
matches the full-softmax baseline.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS, DELICIOUS_PAPER_DIMS
from repro.harness.figures import figure5_time_vs_accuracy
from repro.harness.report import format_comparison, format_series, format_table


def _report(result, dataset_name, paper_speedup_gpu, paper_speedup_cpu):
    print()
    print(format_table(result["summary"], title=f"Figure 5 summary ({dataset_name})"))
    print(
        format_series(
            "time_s", "precision@1", result["time_series"], title="Time vs accuracy"
        )
    )
    print(
        format_series(
            "iteration",
            "precision@1",
            result["iteration_series"],
            title="Iteration vs accuracy",
        )
    )
    print(format_comparison(paper_speedup_gpu, result["speedup_vs_gpu"], "speed-up vs TF-GPU", "x"))
    print(format_comparison(paper_speedup_cpu, result["speedup_vs_cpu"], "speed-up vs TF-CPU", "x"))


def test_fig5_delicious_like(run_once, delicious_config):
    result = run_once(
        figure5_time_vs_accuracy, delicious_config, cores=44, paper_dims=DELICIOUS_PAPER_DIMS
    )
    _report(result, "Delicious-200K-like", paper_speedup_gpu=1.8, paper_speedup_cpu=8.0)
    # Shape checks: SLIDE wins against both baselines at 44 cores, and the
    # CPU baseline is the slowest of the three.
    assert result["speedup_vs_gpu"] > 1.0
    assert result["speedup_vs_cpu"] > result["speedup_vs_gpu"]


def test_fig5_amazon_like(run_once, amazon_config):
    result = run_once(
        figure5_time_vs_accuracy, amazon_config, cores=44, paper_dims=AMAZON_PAPER_DIMS
    )
    _report(result, "Amazon-670K-like", paper_speedup_gpu=2.7, paper_speedup_cpu=10.0)
    assert result["speedup_vs_gpu"] > 1.0
    assert result["speedup_vs_cpu"] > result["speedup_vs_gpu"]


def test_fig5_iteration_wise_parity(run_once, delicious_config):
    """Iteration-wise, SLIDE's convergence must not trail the full softmax:
    adaptive sampling costs no accuracy per iteration."""
    result = run_once(
        figure5_time_vs_accuracy, delicious_config, cores=44, paper_dims=DELICIOUS_PAPER_DIMS
    )
    slide_iters, slide_acc = result["iteration_series"]["SLIDE CPU"]
    gpu_iters, gpu_acc = result["iteration_series"]["TF-GPU"]
    assert slide_acc[-1] >= gpu_acc[-1] - 0.05
