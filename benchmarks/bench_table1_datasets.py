"""Table 1 — dataset statistics (paper datasets vs synthetic stand-ins)."""

from repro.harness.report import format_table
from repro.harness.tables import table1_dataset_statistics


def test_table1_dataset_statistics(run_once):
    rows = run_once(table1_dataset_statistics, scale=1.0 / 1024.0)
    print()
    print(format_table(rows, title="Table 1: Statistics of the datasets"))
    # Sanity: the synthetic stand-ins keep examples genuinely sparse.  The
    # absolute density cannot match the paper's 0.04-0.06 % because the
    # feature dimension is scaled down by ~1000x while each example still
    # needs enough non-zeros to be learnable; what must hold is that examples
    # stay a small fraction of the feature space (and the Delicious-like
    # stand-in, whose feature dimension shrinks less dramatically relative to
    # its non-zeros, stays under 10 %).
    synthetic = {r["dataset"]: r for r in rows if r["source"] == "synthetic"}
    assert all(r["feature_sparsity_%"] < 35.0 for r in synthetic.values())
    delicious_like = next(v for k, v in synthetic.items() if "delicious" in k)
    assert delicious_like["feature_sparsity_%"] < 10.0
    assert len(rows) == 4


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "table1_datasets"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    scale = float(p.get("scale", 1.0 / 1024.0))
    seed = int(p.get("seed", 0))
    rows = table1_dataset_statistics(scale=scale, seed=seed)
    return {"config": {"scale": scale, "seed": seed}, "rows": rows}


def check(payload: dict, smoke: bool) -> list[str]:
    """Synthetic stand-ins keep examples genuinely sparse (see test above)."""
    rows = payload["rows"]
    problems = []
    if len(rows) != 4:
        problems.append(f"expected 4 rows (2 paper + 2 synthetic), got {len(rows)}")
    synthetic = [r for r in rows if r["source"] == "synthetic"]
    for row in synthetic:
        if row["feature_sparsity_%"] >= 35.0:
            problems.append(
                f"{row['dataset']}: feature sparsity {row['feature_sparsity_%']:.1f}% "
                "should stay a small fraction of the feature space"
            )
    return problems


def print_report(payload: dict) -> None:
    print(format_table(payload["rows"], title="Table 1: Statistics of the datasets"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("table1_datasets"))


if __name__ == "__main__":
    main()
