"""Figure 8 — effect of batch size (SLIDE vs TF-GPU vs Sampled Softmax).

Paper finding: SLIDE outperforms TF-GPU at every batch size, and the gap
widens as the batch grows (SLIDE processes all samples of a batch in
parallel with asynchronous updates).
"""

from collections import defaultdict

from repro.harness.experiment import AMAZON_PAPER_DIMS
from repro.harness.figures import figure8_batch_size_effect
from repro.harness.report import format_table


def test_fig8_batch_size_effect(run_once, amazon_config):
    rows = run_once(
        figure8_batch_size_effect,
        amazon_config,
        batch_sizes=(16, 32, 64),
        cores=44,
        paper_dims=AMAZON_PAPER_DIMS,
    )
    print()
    print(format_table(rows, title="Figure 8: batch-size effect (Amazon-670K-like)"))

    by_batch: dict[int, dict[str, float]] = defaultdict(dict)
    for row in rows:
        by_batch[int(row["batch_size"])][str(row["framework"])] = float(
            row["convergence_time_s"]
        )
    # SLIDE beats TF-GPU at every batch size (the paper's headline for Fig 8).
    for batch_size, times in by_batch.items():
        assert times["SLIDE CPU"] < times["TF-GPU"], f"batch={batch_size}"
