"""Figure 8 — effect of batch size (SLIDE vs TF-GPU vs Sampled Softmax).

Paper finding: SLIDE outperforms TF-GPU at every batch size, and the gap
widens as the batch grows (SLIDE processes all samples of a batch in
parallel with asynchronous updates).
"""

from collections import defaultdict

from repro.harness.experiment import AMAZON_PAPER_DIMS
from repro.harness.figures import figure8_batch_size_effect
from repro.harness.report import format_table


def test_fig8_batch_size_effect(run_once, amazon_config):
    rows = run_once(
        figure8_batch_size_effect,
        amazon_config,
        batch_sizes=(16, 32, 64),
        cores=44,
        paper_dims=AMAZON_PAPER_DIMS,
    )
    print()
    print(format_table(rows, title="Figure 8: batch-size effect (Amazon-670K-like)"))

    by_batch: dict[int, dict[str, float]] = defaultdict(dict)
    for row in rows:
        by_batch[int(row["batch_size"])][str(row["framework"])] = float(
            row["convergence_time_s"]
        )
    # SLIDE beats TF-GPU at every batch size (the paper's headline for Fig 8).
    for batch_size, times in by_batch.items():
        assert times["SLIDE CPU"] < times["TF-GPU"], f"batch={batch_size}"


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig8_batch_size"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (MODELLED wall-clock)."""
    from repro.harness.experiment import small_experiment_config

    p = dict(params or {})
    batch_sizes = tuple(int(b) for b in p.get("batch_sizes", (16, 32, 64)))
    cores = int(p.get("cores", 44))
    config = small_experiment_config(
        dataset="amazon",
        scale=float(p.get("scale", 1.0 / 2048.0)),
        epochs=int(p.get("epochs", 2)),
        seed=int(p.get("seed", 0)),
    )
    rows = figure8_batch_size_effect(
        config, batch_sizes=batch_sizes, cores=cores, paper_dims=AMAZON_PAPER_DIMS
    )
    return {"config": {"batch_sizes": list(batch_sizes), "cores": cores}, "rows": rows}


def check(payload: dict, smoke: bool) -> list[str]:
    """SLIDE beats TF-GPU at every batch size (the paper's Fig 8 headline)."""
    by_batch: dict[int, dict[str, float]] = defaultdict(dict)
    for row in payload["rows"]:
        by_batch[int(row["batch_size"])][str(row["framework"])] = float(
            row["convergence_time_s"]
        )
    problems = []
    for batch_size, times in sorted(by_batch.items()):
        if times["SLIDE CPU"] >= times["TF-GPU"]:
            problems.append(
                f"batch={batch_size}: SLIDE ({times['SLIDE CPU']:.3g}s) should "
                f"converge before TF-GPU ({times['TF-GPU']:.3g}s)"
            )
    return problems


def print_report(payload: dict) -> None:
    print(format_table(payload["rows"], title="Figure 8: batch-size effect (Amazon-670K-like)"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig8_batch_size"))


if __name__ == "__main__":
    main()
