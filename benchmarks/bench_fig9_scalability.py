"""Figures 9 and 13 — scalability with CPU core count.

Paper findings: SLIDE's convergence time falls steeply with added cores
(near-linear), TF-CPU's flattens after ~16 cores, TF-GPU is oblivious to CPU
cores, and SLIDE overtakes TF-GPU somewhere between 8 and 32 cores.
"""

from repro.harness.experiment import AMAZON_PAPER_DIMS, DELICIOUS_PAPER_DIMS
from repro.harness.figures import figure9_scalability, figure13_scalability_ratio
from repro.harness.report import format_table

CORE_COUNTS = (2, 4, 8, 16, 32, 44)


def _crossover(rows, column):
    """Smallest core count at which SLIDE beats the given baseline column."""
    for row in rows:
        if row["SLIDE_convergence_s"] < row[column]:
            return int(row["cores"])
    return None


def _run(run_once, config, dims, name):
    rows = run_once(figure9_scalability, config, core_counts=CORE_COUNTS, paper_dims=dims)
    print()
    print(format_table(rows, title=f"Figure 9: convergence time vs cores ({name})"))
    ratios = figure13_scalability_ratio(rows)
    print(format_table(ratios, title=f"Figure 13: ratio to best convergence time ({name})"))
    return rows, ratios


def test_fig9_delicious_like(run_once, delicious_config):
    rows, ratios = _run(run_once, delicious_config, DELICIOUS_PAPER_DIMS, "Delicious-200K-like")
    # SLIDE improves monotonically with cores; at 44 cores it beats the GPU.
    slide_times = [r["SLIDE_convergence_s"] for r in rows]
    assert all(b < a for a, b in zip(slide_times, slide_times[1:]))
    assert rows[-1]["SLIDE_convergence_s"] < rows[-1]["TF-GPU_convergence_s"]
    # A GPU crossover exists and is not at the minimum core count (paper:
    # between 16 and 32 cores).
    gpu_crossover = _crossover(rows, "TF-GPU_convergence_s")
    print(f"GPU crossover at {gpu_crossover} cores (paper: between 16 and 32)")
    assert gpu_crossover is not None and gpu_crossover > 2
    # SLIDE scales better than TF-CPU: its ratio-to-best falls faster (Fig 13).
    assert ratios[0]["SLIDE_ratio"] > ratios[0]["TF-CPU_ratio"] * 0.9


def test_fig9_amazon_like(run_once, amazon_config):
    rows, _ = _run(run_once, amazon_config, AMAZON_PAPER_DIMS, "Amazon-670K-like")
    assert rows[-1]["SLIDE_convergence_s"] < rows[-1]["TF-GPU_convergence_s"]
    # Against TF-CPU, SLIDE wins from a very small core count (paper: 2).
    cpu_crossover = _crossover(rows, "TF-CPU_convergence_s")
    print(f"TF-CPU crossover at {cpu_crossover} cores (paper: 2)")
    assert cpu_crossover is not None and cpu_crossover <= 8
