"""Figures 9 and 13 — scalability with CPU cores, **measured** and projected.

The paper's headline systems claim is that SLIDE's lock-free HOGWILD design
scales near-linearly with CPU cores (Figure 9, Table 2).  This bench now
backs that claim with real processes instead of a model:

* **Measured section** — trains the synthetic XC workload through
  :class:`repro.parallel.sharedmem.ProcessHogwildTrainer` at several worker
  process counts (shared-memory parameters, disjoint
  :class:`~repro.data.ShardedDataset` shards per worker, private per-worker
  LSH indexes) and records real wall-clock speedup, parallel efficiency,
  CPU utilisation and gradient-conflict counts.  The 1-process run *is*
  today's fused synchronous path, so it doubles as the precision baseline.
* **Projection section** — the calibrated device-model extrapolation to the
  paper's 44-core Xeon (the previous content of this bench, unchanged in
  spirit): SLIDE vs TF-CPU vs TF-GPU convergence-time curves and the
  Figure 13 ratio view.

The registry (``python -m repro.reports --run fig9_scalability``) writes
``BENCH_fig9_scalability.json``.  Measured speedup is
hardware-bounded: the JSON records ``available_cores`` and the assertions
only demand speedup the machine can physically deliver (a 1-core container
cannot run 4 processes faster than 1 — the projection section carries the
paper-scale story there).

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_fig9_scalability.py [--smoke]
"""

from __future__ import annotations

from repro.harness.experiment import AMAZON_PAPER_DIMS, DELICIOUS_PAPER_DIMS
from repro.harness.figures import figure9_scalability, figure13_scalability_ratio
from repro.harness.report import format_table
from repro.harness.scaling import available_cores, measure_process_scaling

PROCESS_COUNTS = (1, 2, 4)
CORE_COUNTS = (2, 4, 8, 16, 32, 44)
# Acceptance bars for the measured section: the async multi-process runs
# must stay within one precision point of the fused single-process baseline,
# and — when the machine actually has >= 4 usable cores — deliver >= 1.5x
# wall-clock speedup at 4 processes.  The smoke/pytest configs use a much
# looser precision bar: their eval sets are ~100-200 examples (one flipped
# prediction is already ~0.5-1%) and HOGWILD run-to-run variance on a
# seconds-long workload spans a few points.  The smoke bar exists to catch
# divergence-class regressions — e.g. the shared-moment tearing bug showed
# up as a 40-60 point collapse — not to relitigate noise.
PRECISION_TOLERANCE = 0.01
SMOKE_PRECISION_TOLERANCE = 0.05
SPEEDUP_AT_4_BAR = 1.5


def _crossover(rows, column):
    """Smallest core count at which SLIDE beats the given baseline column."""
    for row in rows:
        if row["SLIDE_convergence_s"] < row[column]:
            return int(row["cores"])
    return None


def paper_projection(config, dims) -> dict[str, object]:
    """The calibrated device-model section (SLIDE/TF-CPU/TF-GPU vs cores)."""
    rows = figure9_scalability(config, core_counts=CORE_COUNTS, paper_dims=dims)
    ratios = figure13_scalability_ratio(rows)
    return {
        "paper_dims": dims.name,
        "rows": rows,
        "figure13_ratios": ratios,
        "tf_cpu_crossover_cores": _crossover(rows, "TF-CPU_convergence_s"),
        "tf_gpu_crossover_cores": _crossover(rows, "TF-GPU_convergence_s"),
    }


def precision_gaps(measured: dict[str, object]) -> dict[int, float]:
    """Absolute precision@1 gap of each multi-process run vs the baseline."""
    baseline = float(measured["baseline_precision_at_1"])
    return {
        int(row["processes"]): abs(float(row["precision_at_1"]) - baseline)
        for row in measured["rows"]
        if int(row["processes"]) > 1
    }


def build_report(
    process_counts: tuple[int, ...] = PROCESS_COUNTS,
    scale: float = 1.0 / 256.0,
    epochs: int = 5,
    batch_size: int = 32,
    seed: int = 0,
    start_method: str | None = None,
    include_projection: bool = True,
) -> dict[str, object]:
    """Measured process scaling plus (optionally) the paper-scale projection."""
    measured = measure_process_scaling(
        process_counts=process_counts,
        scale=scale,
        epochs=epochs,
        batch_size=batch_size,
        seed=seed,
        start_method=start_method,
    )
    report: dict[str, object] = {
        "measured": measured,
        "precision_gap_vs_baseline": {
            str(processes): round(gap, 4)
            for processes, gap in sorted(precision_gaps(measured).items())
        },
    }
    if include_projection:
        from repro.harness.experiment import small_experiment_config

        delicious = small_experiment_config(
            dataset="delicious", scale=1.0 / 1024.0, epochs=2, seed=seed
        )
        report["projection"] = paper_projection(delicious, DELICIOUS_PAPER_DIMS)
    return report


def check_measured(
    report: dict[str, object],
    precision_tolerance: float = PRECISION_TOLERANCE,
    require_speedup: bool = True,
) -> list[str]:
    """Hardware-aware acceptance checks; returns human-readable failures.

    ``require_speedup=False`` is for smoke/pytest configs: their workloads
    are deliberately sub-second, so fixed per-process costs (fork/spawn,
    network construction, LSH re-hash) dominate and a speedup bar would
    only measure overhead, not scaling.  Precision parity is always checked.
    """
    measured = report["measured"]
    rows = {int(row["processes"]): row for row in measured["rows"]}
    cores = int(measured["available_cores"])
    failures: list[str] = []
    for processes, gap in precision_gaps(measured).items():
        if gap > precision_tolerance:
            failures.append(
                f"{processes}-process precision@1 deviates {gap:.4f} from the "
                f"fused baseline (tolerance {precision_tolerance})"
            )
    if not require_speedup:
        return failures
    if 4 in rows and cores >= 4:
        speedup = float(rows[4]["speedup_vs_1"])
        if speedup < SPEEDUP_AT_4_BAR:
            failures.append(
                f"4-process speedup {speedup:.2f}x below the "
                f"{SPEEDUP_AT_4_BAR}x bar on a {cores}-core machine"
            )
    elif 2 in rows and cores >= 2:
        speedup = float(rows[2]["speedup_vs_1"])
        if speedup < 1.2:
            failures.append(
                f"2-process speedup {speedup:.2f}x below 1.2x on a "
                f"{cores}-core machine"
            )
    return failures


# ----------------------------------------------------------------------
# pytest bench harness entry points
# ----------------------------------------------------------------------
def test_fig9_measured_process_scaling(run_once):
    report = run_once(
        build_report,
        process_counts=(1, 2),
        scale=1.0 / 1024.0,
        epochs=3,
        include_projection=False,
    )
    measured = report["measured"]
    print()
    print(
        format_table(
            measured["rows"],
            title=(
                "Figure 9 (measured): process-HOGWILD scaling "
                f"({measured['available_cores']} usable cores)"
            ),
        )
    )
    failures = check_measured(
        report,
        precision_tolerance=SMOKE_PRECISION_TOLERANCE,
        require_speedup=False,
    )
    assert not failures, "\n".join(failures)
    # The async run really trained: every worker applied updates and the
    # conflict counters saw the output layer.
    two_proc = next(r for r in measured["rows"] if r["processes"] == 2)
    assert two_proc["neurons_updated"] > 0
    workload = measured["workload"]
    assert two_proc["samples"] == workload["num_train"] * workload["epochs"]


def test_fig9_projection_delicious_like(run_once, delicious_config):
    projection = run_once(paper_projection, delicious_config, DELICIOUS_PAPER_DIMS)
    rows = projection["rows"]
    print()
    print(format_table(rows, title="Figure 9 (projected): convergence vs cores (Delicious-200K)"))
    print(
        format_table(
            projection["figure13_ratios"],
            title="Figure 13: ratio to best convergence time (Delicious-200K)",
        )
    )
    # SLIDE improves monotonically with cores; at 44 cores it beats the GPU.
    slide_times = [r["SLIDE_convergence_s"] for r in rows]
    assert all(b < a for a, b in zip(slide_times, slide_times[1:]))
    assert rows[-1]["SLIDE_convergence_s"] < rows[-1]["TF-GPU_convergence_s"]
    # A GPU crossover exists and is not at the minimum core count (paper:
    # between 16 and 32 cores).
    assert projection["tf_gpu_crossover_cores"] is not None
    assert projection["tf_gpu_crossover_cores"] > 2


def test_fig9_projection_amazon_like(run_once, amazon_config):
    projection = run_once(paper_projection, amazon_config, AMAZON_PAPER_DIMS)
    rows = projection["rows"]
    print()
    print(format_table(rows, title="Figure 9 (projected): convergence vs cores (Amazon-670K)"))
    assert rows[-1]["SLIDE_convergence_s"] < rows[-1]["TF-GPU_convergence_s"]
    # Against TF-CPU, SLIDE wins from a very small core count (paper: 2).
    crossover = projection["tf_cpu_crossover_cores"]
    assert crossover is not None and crossover <= 8


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig9_scalability"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    return build_report(
        process_counts=tuple(int(n) for n in p.get("process_counts", PROCESS_COUNTS)),
        scale=float(p.get("scale", 1.0 / 256.0)),
        epochs=int(p.get("epochs", 5)),
        batch_size=int(p.get("batch_size", 32)),
        seed=int(p.get("seed", 0)),
        include_projection=bool(p.get("include_projection", True)),
    )


def check(payload: dict, smoke: bool) -> list[str]:
    """Hardware-aware acceptance: precision parity always, speedup when possible."""
    tolerance = SMOKE_PRECISION_TOLERANCE if smoke else PRECISION_TOLERANCE
    return check_measured(payload, precision_tolerance=tolerance, require_speedup=not smoke)


def print_report(payload: dict) -> None:
    measured = payload["measured"]
    print(
        format_table(
            measured["rows"],
            title=(
                "Figure 9 (measured): process-HOGWILD scaling "
                f"({measured['available_cores']} usable cores)"
            ),
        )
    )
    if "projection" in payload:
        print(
            format_table(
                payload["projection"]["rows"],
                title="Figure 9 (projected): convergence time vs cores",
            )
        )
    print(
        f"max measured speedup: {measured['max_measured_speedup']}x "
        f"(cores available: {available_cores()})"
    )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig9_scalability"))


if __name__ == "__main__":
    main()
