"""Ablation — hash-table rebuild schedule (exponential decay vs fixed period).

Section 4.2 motivates the exponentially decaying rebuild frequency: frequent
rebuilds early (weights move fast), rare rebuilds near convergence.  This
ablation compares the decayed schedule against a fixed-period schedule with
the same initial period, reporting accuracy and the number of rebuilds (the
overhead proxy).
"""

from repro.harness.experiment import HeadToHeadExperiment
from repro.harness.report import format_table


def test_ablation_rebuild_schedule(run_once, delicious_config):
    def sweep():
        rows = []
        for decay, label in ((0.5, "exponential decay (lambda=0.5)"), (0.0, "fixed period")):
            experiment = HeadToHeadExperiment(delicious_config)
            network = experiment.build_slide_network(rebuild_decay=decay)
            from repro.core.trainer import SlideTrainer

            trainer = SlideTrainer(network, experiment.training_config())
            trainer.train(experiment.dataset.train, experiment.dataset.test)
            rows.append(
                {
                    "schedule": label,
                    "final_accuracy": trainer.evaluate(experiment.dataset.test[:128]),
                    "rebuilds": network.output_layer.num_rebuilds,
                    "iterations": network.iteration,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(rows, title="Ablation: hash-table rebuild schedule (Delicious-200K-like)"))

    by_schedule = {row["schedule"]: row for row in rows}
    decayed = by_schedule["exponential decay (lambda=0.5)"]
    fixed = by_schedule["fixed period"]
    # The decayed schedule performs no more rebuilds than the fixed one while
    # keeping accuracy in the same range.
    assert decayed["rebuilds"] <= fixed["rebuilds"]
    assert decayed["final_accuracy"] >= fixed["final_accuracy"] - 0.1
