"""Ablation — hash-table rebuild schedule (exponential decay vs fixed period).

Section 4.2 motivates the exponentially decaying rebuild frequency: frequent
rebuilds early (weights move fast), rare rebuilds near convergence.  This
ablation compares the decayed schedule against a fixed-period schedule with
the same initial period, reporting accuracy and the number of rebuilds (the
overhead proxy).
"""

from repro.harness.experiment import HeadToHeadExperiment
from repro.harness.report import format_table


def test_ablation_rebuild_schedule(run_once, delicious_config):
    def sweep():
        rows = []
        for decay, label in ((0.5, "exponential decay (lambda=0.5)"), (0.0, "fixed period")):
            experiment = HeadToHeadExperiment(delicious_config)
            network = experiment.build_slide_network(rebuild_decay=decay)
            from repro.core.trainer import SlideTrainer

            trainer = SlideTrainer(network, experiment.training_config())
            trainer.train(experiment.dataset.train, experiment.dataset.test)
            rows.append(
                {
                    "schedule": label,
                    "final_accuracy": trainer.evaluate(experiment.dataset.test[:128]),
                    "rebuilds": network.output_layer.num_rebuilds,
                    "iterations": network.iteration,
                }
            )
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(rows, title="Ablation: hash-table rebuild schedule (Delicious-200K-like)"))

    by_schedule = {row["schedule"]: row for row in rows}
    decayed = by_schedule["exponential decay (lambda=0.5)"]
    fixed = by_schedule["fixed period"]
    # The decayed schedule performs no more rebuilds than the fixed one while
    # keeping accuracy in the same range.
    assert decayed["rebuilds"] <= fixed["rebuilds"]
    assert decayed["final_accuracy"] >= fixed["final_accuracy"] - 0.1


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "ablation_rebuild_schedule"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    from repro.core.trainer import SlideTrainer
    from repro.harness.experiment import small_experiment_config

    p = dict(params or {})
    config = small_experiment_config(
        dataset="delicious",
        scale=float(p.get("scale", 1.0 / 1024.0)),
        epochs=int(p.get("epochs", 2)),
        seed=int(p.get("seed", 0)),
    )
    rows = []
    for decay, label in ((0.5, "exponential_decay"), (0.0, "fixed_period")):
        experiment = HeadToHeadExperiment(config)
        network = experiment.build_slide_network(rebuild_decay=decay)
        trainer = SlideTrainer(network, experiment.training_config())
        trainer.train(experiment.dataset.train, experiment.dataset.test)
        rows.append(
            {
                "schedule": label,
                "final_accuracy": trainer.evaluate(experiment.dataset.test[:128]),
                "rebuilds": network.output_layer.num_rebuilds,
                "iterations": network.iteration,
            }
        )
    return {"config": {"decay": 0.5, "epochs": config.epochs}, "rows": rows}


def check(payload: dict, smoke: bool) -> list[str]:
    """Decayed schedule does no more rebuilds without giving up accuracy."""
    by_schedule = {row["schedule"]: row for row in payload["rows"]}
    decayed, fixed = by_schedule["exponential_decay"], by_schedule["fixed_period"]
    problems = []
    if decayed["rebuilds"] > fixed["rebuilds"]:
        problems.append(
            f"exponential decay performed {decayed['rebuilds']} rebuilds, more "
            f"than fixed period's {fixed['rebuilds']}"
        )
    if decayed["final_accuracy"] < fixed["final_accuracy"] - 0.1:
        problems.append("decayed schedule lost more than 0.1 precision@1 vs fixed period")
    return problems


def print_report(payload: dict) -> None:
    print(format_table(payload["rows"], title="Ablation: hash-table rebuild schedule"))


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("ablation_rebuild_schedule"))


if __name__ == "__main__":
    main()
