"""Table 3 — wall-clock of hash-table insertion schemes (reservoir vs FIFO).

Extended beyond the paper's table along the axis PR 3 optimises: each policy
row now compares three maintenance styles on identical fingerprints —

* ``per_item_insert_s`` — one scalar table touch per (neuron, table), the
  legacy maintenance pattern;
* ``insertion_to_ht_s`` — the batched ``insert_many`` placement;
* ``update_f*`` — the code-diff incremental ``update`` after re-drawing a
  fraction of the neuron weights, with the bucket moves actually applied.

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_table3_insertion.py [--smoke]

The registry (``python -m repro.reports --run table3_insertion``) writes
``BENCH_table3_insertion.json`` at the repository root and fails if the
batched build drops below the speedup bar (5x at the full 50K-neuron
config, parity at the CI smoke config).
"""

from __future__ import annotations

from repro.harness.report import format_table
from repro.harness.tables import table3_insertion_timing

UPDATE_FRACTIONS = (0.01, 0.1)


def _check_rows(rows: list[dict], min_speedup: float) -> list[str]:
    """Structural assertions shared by the pytest and standalone entry points.

    Returns a list of human-readable violations (empty = all good).
    """
    problems: list[str] = []
    for row in rows:
        policy = row["policy"]
        # (full_insertion_s = hash_s + insertion_to_ht_s by construction, so
        # only independently measured relations are asserted here.)
        if row["batched_speedup_vs_per_item"] < min_speedup:
            problems.append(
                f"{policy}: batched insert_many is only "
                f"{row['batched_speedup_vs_per_item']:.2f}x the per-item loop "
                f"(bar: {min_speedup}x)"
            )
        small, large = UPDATE_FRACTIONS
        if not row[f"update_f{small:g}_moved"] < row[f"update_f{large:g}_moved"]:
            problems.append(f"{policy}: smaller dirty set did not move fewer entries")
    return problems


def _report(rows: list[dict], num_neurons: int, min_speedup: float) -> dict:
    return {
        "config": {
            "num_neurons": num_neurons,
            "update_fractions": list(UPDATE_FRACTIONS),
            "min_speedup": min_speedup,
        },
        "rows": [
            {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in row.items()
            }
            for row in rows
        ],
        "min_batched_speedup_vs_per_item": round(
            min(row["batched_speedup_vs_per_item"] for row in rows), 2
        ),
    }


def test_table3_insertion_timing(run_once):
    # The paper inserts the 205,443 output neurons of Delicious-200K; 8,000
    # neurons keep the bench to a couple of minutes in pure Python while
    # preserving the relative ordering the table reports.
    rows = run_once(
        table3_insertion_timing,
        num_neurons=8_000,
        dim=128,
        k=6,
        l=20,
        bucket_size=64,
        update_fractions=UPDATE_FRACTIONS,
    )
    print()
    print(format_table(rows, title="Table 3: time taken by hash table insertion schemes"))

    by_policy = {row["policy"]: row for row in rows}
    reservoir = by_policy["Reservoir Sampling"]
    fifo = by_policy["FIFO"]
    assert reservoir["full_insertion_s"] > 0 and fifo["full_insertion_s"] > 0
    # The paper's structural finding — bucket placement is dwarfed by hash
    # computation, so the policy choice barely matters end to end — only
    # holds for the *batched* placement; the per-item loop is exactly the
    # overhead the flat tables remove.  Batched placement must beat the
    # per-item loop, and incremental update work must track the number of
    # changed fingerprints.
    problems = _check_rows(rows, min_speedup=1.0)
    assert not problems, "\n".join(problems)


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "table3_insertion"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    num_neurons = int(p.get("num_neurons", 50_000))
    min_speedup = float(p.get("min_speedup", 5.0))
    rows = table3_insertion_timing(
        num_neurons=num_neurons,
        dim=int(p.get("dim", 128)),
        k=int(p.get("k", 6)),
        l=int(p.get("l", 20)),
        bucket_size=int(p.get("bucket_size", 64)),
        update_fractions=UPDATE_FRACTIONS,
    )
    return _report(rows, num_neurons, min_speedup)


def check(payload: dict, smoke: bool) -> list[str]:
    """Batched placement beats the per-item loop at the declared bar."""
    return _check_rows(payload["rows"], min_speedup=float(payload["config"]["min_speedup"]))


def print_report(payload: dict) -> None:
    print(
        format_table(
            payload["rows"], title="Table 3: time taken by hash table insertion schemes"
        )
    )
    print(
        "min batched/per-item speedup: "
        f"{payload['min_batched_speedup_vs_per_item']}x "
        f"(bar: {payload['config']['min_speedup']}x)"
    )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("table3_insertion"))


if __name__ == "__main__":
    main()
