"""Table 3 — wall-clock of hash-table insertion policies (reservoir vs FIFO)."""

from repro.harness.report import format_table
from repro.harness.tables import table3_insertion_timing


def test_table3_insertion_timing(run_once):
    # The paper inserts the 205,443 output neurons of Delicious-200K; 8,000
    # neurons keep the bench to a couple of minutes in pure Python while
    # preserving the relative ordering the table reports.
    rows = run_once(
        table3_insertion_timing, num_neurons=8_000, dim=128, k=6, l=20, bucket_size=64
    )
    print()
    print(format_table(rows, title="Table 3: time taken by hash table insertion schemes"))

    by_policy = {row["policy"]: row for row in rows}
    reservoir = by_policy["Reservoir Sampling"]
    fifo = by_policy["FIFO"]
    # The paper's structural finding: the bucket-placement time is a small
    # fraction of the full insertion time (hash-code computation dominates),
    # so the choice of policy barely matters end to end.
    for row in rows:
        assert row["insertion_to_ht_s"] < row["full_insertion_s"]
    assert reservoir["full_insertion_s"] > 0 and fifo["full_insertion_s"] > 0
