"""Figure 11 — hard-thresholding selection probability trade-off (exact).

This figure is a closed-form plot of Equation (3); the reproduction is exact,
not approximate.
"""

import numpy as np

from repro.harness.figures import figure11_hard_threshold_tradeoff
from repro.harness.report import format_series


def test_fig11_hard_threshold_tradeoff(run_once):
    series = run_once(figure11_hard_threshold_tradeoff, k=1, l=10, thresholds=(1, 3, 5, 7, 9))
    print()
    print(
        format_series(
            "collision_p",
            "Pr(selected)",
            series,
            title="Figure 11: selection probability vs collision probability (L=10)",
        )
    )

    # Qualitative claims from the paper's discussion of Figure 11:
    # m=9 only retrieves neurons whose collision probability is high...
    _, m9 = series["m=9"]
    p_values, m1 = series["m=1"]
    low_p = p_values < 0.45
    assert np.all(m9[low_p] < 0.1)
    # ...while m=1 retrieves low-collision (bad) neurons with high probability.
    assert m1[np.argmin(np.abs(p_values - 0.2))] > 0.8
    # Curves are ordered: lower thresholds always select at least as often.
    for low, high in ((1, 3), (3, 5), (5, 7), (7, 9)):
        _, a = series[f"m={low}"]
        _, b = series[f"m={high}"]
        assert np.all(a >= b - 1e-12)


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig11_hard_threshold"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry (exact closed form)."""
    p = dict(params or {})
    k = int(p.get("k", 1))
    l = int(p.get("l", 10))
    thresholds = tuple(int(m) for m in p.get("thresholds", (1, 3, 5, 7, 9)))
    num_points = int(p.get("num_points", 17))
    series = figure11_hard_threshold_tradeoff(
        k=k, l=l, thresholds=thresholds, num_points=num_points
    )
    return {
        "config": {"k": k, "l": l, "thresholds": list(thresholds), "num_points": num_points},
        "series": {
            name: {
                "collision_p": [float(x) for x in p_values],
                "selection_p": [float(y) for y in selected],
            }
            for name, (p_values, selected) in series.items()
        },
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """Curves are ordered: lower thresholds always select at least as often."""
    series = payload["series"]
    problems = []
    ms = sorted(int(name.split("=")[1]) for name in series)
    for low, high in zip(ms, ms[1:]):
        a = np.asarray(series[f"m={low}"]["selection_p"])
        b = np.asarray(series[f"m={high}"]["selection_p"])
        if not np.all(a >= b - 1e-12):
            problems.append(f"selection curve m={low} should dominate m={high}")
    return problems


def print_report(payload: dict) -> None:
    print(
        format_series(
            "collision_p",
            "Pr(selected)",
            {
                name: (curve["collision_p"], curve["selection_p"])
                for name, curve in payload["series"].items()
            },
            title="Figure 11: selection probability vs collision probability",
        )
    )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig11_hard_threshold"))


if __name__ == "__main__":
    main()
