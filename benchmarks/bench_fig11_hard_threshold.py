"""Figure 11 — hard-thresholding selection probability trade-off (exact).

This figure is a closed-form plot of Equation (3); the reproduction is exact,
not approximate.
"""

import numpy as np

from repro.harness.figures import figure11_hard_threshold_tradeoff
from repro.harness.report import format_series


def test_fig11_hard_threshold_tradeoff(run_once):
    series = run_once(figure11_hard_threshold_tradeoff, k=1, l=10, thresholds=(1, 3, 5, 7, 9))
    print()
    print(
        format_series(
            "collision_p",
            "Pr(selected)",
            series,
            title="Figure 11: selection probability vs collision probability (L=10)",
        )
    )

    # Qualitative claims from the paper's discussion of Figure 11:
    # m=9 only retrieves neurons whose collision probability is high...
    _, m9 = series["m=9"]
    p_values, m1 = series["m=1"]
    low_p = p_values < 0.45
    assert np.all(m9[low_p] < 0.1)
    # ...while m=1 retrieves low-collision (bad) neurons with high probability.
    assert m1[np.argmin(np.abs(p_values - 0.2))] > 0.8
    # Curves are ordered: lower thresholds always select at least as often.
    for low, high in ((1, 3), (3, 5), (5, 7), (7, 9)):
        _, a = series[f"m={low}"]
        _, b = series[f"m={high}"]
        assert np.all(a >= b - 1e-12)
