"""Figures 4 and 12 — per-query overhead of the three sampling strategies."""

from collections import defaultdict

from repro.harness.figures import figure4_sampling_strategy_timing
from repro.harness.report import format_table


def test_fig4_sampling_strategy_timing(run_once):
    rows = run_once(
        figure4_sampling_strategy_timing,
        neuron_counts=(2000, 3000, 4000, 5000, 6000, 7000),
        dim=128,
        k=6,
        l=20,
        queries=10,
    )
    print()
    print(format_table(rows, title="Figure 4/12: sampling strategy time per query (seconds)"))

    # The paper's finding: TopK is the most expensive strategy (it aggregates
    # and sorts candidate frequencies across all L tables); Vanilla is the
    # cheapest.  Compare aggregate time across the sweep.
    totals = defaultdict(float)
    for row in rows:
        totals[row["strategy"]] += row["seconds_per_query"]
    assert totals["TopK Sampling"] > totals["Vanilla Sampling"]
