"""Figures 4 and 12 — per-query overhead of the three sampling strategies."""

from collections import defaultdict

from repro.harness.figures import figure4_sampling_strategy_timing
from repro.harness.report import format_table


def test_fig4_sampling_strategy_timing(run_once):
    rows = run_once(
        figure4_sampling_strategy_timing,
        neuron_counts=(2000, 3000, 4000, 5000, 6000, 7000),
        dim=128,
        k=6,
        l=20,
        queries=10,
    )
    print()
    print(format_table(rows, title="Figure 4/12: sampling strategy time per query (seconds)"))

    # The paper's finding: TopK is the most expensive strategy (it aggregates
    # and sorts candidate frequencies across all L tables); Vanilla is the
    # cheapest.  Compare aggregate time across the sweep.
    totals = defaultdict(float)
    for row in rows:
        totals[row["strategy"]] += row["seconds_per_query"]
    assert totals["TopK Sampling"] > totals["Vanilla Sampling"]


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fig4_sampling"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    neuron_counts = tuple(p.get("neuron_counts", (2000, 3000, 4000, 5000, 6000, 7000)))
    queries = int(p.get("queries", 20))
    rows = figure4_sampling_strategy_timing(
        neuron_counts=neuron_counts,
        dim=int(p.get("dim", 128)),
        k=int(p.get("k", 6)),
        l=int(p.get("l", 20)),
        queries=queries,
        seed=int(p.get("seed", 0)),
    )
    totals: dict[str, float] = defaultdict(float)
    for row in rows:
        totals[str(row["strategy"])] += float(row["seconds_per_query"])
    return {
        "config": {"neuron_counts": list(neuron_counts), "queries": queries},
        "rows": rows,
        "total_seconds_per_query": dict(totals),
    }


def check(payload: dict, smoke: bool) -> list[str]:
    """Invariant: TopK pays the frequency sort, Vanilla is cheapest."""
    totals = payload["total_seconds_per_query"]
    problems = []
    if totals["TopK Sampling"] <= totals["Vanilla Sampling"]:
        problems.append(
            "TopK sampling should be the most expensive strategy "
            f"(TopK {totals['TopK Sampling']:.2e}s <= Vanilla "
            f"{totals['Vanilla Sampling']:.2e}s)"
        )
    return problems


def print_report(payload: dict) -> None:
    print(
        format_table(
            payload["rows"], title="Figure 4/12: sampling strategy time per query (seconds)"
        )
    )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fig4_sampling"))


if __name__ == "__main__":
    main()
