"""Training throughput: dense vs per-sample sparse vs batched sparse kernels.

Not a paper figure — the perf-trajectory anchor for this repo.  The paper's
thesis is that adaptive sparsity beats hardware acceleration; this bench
keeps the *implementation* honest by measuring samples/sec for three ways of
training the same synthetic extreme-classification task:

* ``dense`` — the full-softmax baseline (one GEMM per layer per batch,
  touches every neuron);
* ``sparse_per_sample`` — SLIDE's HOGWILD loop: per-sample LSH hashing,
  gathers, GEMVs and optimiser steps (the paper's execution model);
* ``sparse_batched`` — the fused kernels (:mod:`repro.kernels`): batched
  hashing, one gather + GEMM per layer over the union active set, one
  accumulated optimiser step per layer per micro-batch.

The batched path must be at least 2x the per-sample path at matching
precision@1; the registry (``python -m repro.reports --run train_throughput``)
writes ``BENCH_train_throughput.json`` at the repository root so the
trajectory is trend-gated from PR to PR.

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py [--smoke]
"""

from __future__ import annotations

import time

from repro.baselines.dense import DenseNetwork, DenseNetworkConfig
from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.harness.report import format_table
from repro.types import SparseBatch
from repro.utils.rng import derive_rng

def _slide_config(dataset, seed: int) -> SlideNetworkConfig:
    label_dim = dataset.config.label_dim
    layers = (
        LayerConfig(size=64, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=LSHConfig(hash_family="simhash", k=4, l=24, bucket_size=96),
            sampling=SamplingConfig(
                strategy="vanilla",
                target_active=max(16, label_dim // 12),
                min_active=16,
            ),
            rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
        ),
    )
    return SlideNetworkConfig(
        input_dim=dataset.config.feature_dim, layers=layers, seed=seed
    )


def _train_slide(dataset, training: TrainingConfig, hogwild: bool, seed: int):
    network = SlideNetwork(_slide_config(dataset, seed))
    trainer = SlideTrainer(network, training, hogwild=hogwild)
    start = time.perf_counter()
    trainer.train(dataset.train)
    elapsed = time.perf_counter() - start
    samples = len(dataset.train) * training.epochs
    active = trainer.history.total_active_neurons()
    total_neurons = sum(layer.size for layer in network.layers)
    # Per-phase wall-clock: hash (vectorised table probe), select
    # (per-sample strategy), gather-GEMM and optimiser are recorded by the
    # fused kernels (batched mode only); rebuild is recorded on every mode.
    # Whatever the timer did not see is "other" (per-sample math, batch
    # assembly, Python overhead).
    phases = network.phase_timer.snapshot()
    phase_seconds = {name: round(seconds, 4) for name, seconds in phases.items()}
    phase_seconds["other"] = round(max(elapsed - sum(phases.values()), 0.0), 4)
    return {
        "samples_per_sec": samples / max(elapsed, 1e-9),
        "wall_time_s": elapsed,
        "precision_at_1": evaluate_precision_at_1(network, dataset.test),
        "active_fraction": active / max(samples * total_neurons, 1),
        "phase_seconds": phase_seconds,
        "rebuild_share": phases.get("rebuild", 0.0) / max(elapsed, 1e-9),
    }


def _train_dense(dataset, training: TrainingConfig, seed: int):
    network = DenseNetwork(
        DenseNetworkConfig(
            input_dim=dataset.config.feature_dim,
            hidden_dim=64,
            output_dim=dataset.config.label_dim,
            optimizer=training.optimizer,
            seed=seed,
        )
    )
    rng = derive_rng(training.seed, stream=31)
    start = time.perf_counter()
    for _epoch in range(training.epochs):
        order = rng.permutation(len(dataset.train))
        for begin in range(0, order.size, training.batch_size):
            chunk = [dataset.train[i] for i in order[begin : begin + training.batch_size]]
            batch = SparseBatch.from_examples(
                chunk,
                feature_dim=dataset.config.feature_dim,
                label_dim=dataset.config.label_dim,
            )
            network.train_batch(batch)
    elapsed = time.perf_counter() - start
    samples = len(dataset.train) * training.epochs
    return {
        "samples_per_sec": samples / max(elapsed, 1e-9),
        "wall_time_s": elapsed,
        "precision_at_1": evaluate_precision_at_1(network, dataset.test),
        "active_fraction": 1.0,
        "phase_seconds": {},
        "rebuild_share": 0.0,
    }


def measure_training_throughput(
    scale: float = 1.0 / 512.0,
    epochs: int = 6,
    batch_size: int = 32,
    seed: int = 0,
) -> dict[str, object]:
    """Throughput/precision rows for all three training paths."""
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    training = TrainingConfig(
        batch_size=batch_size,
        epochs=epochs,
        optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
        seed=seed,
    )
    measurements = {
        "dense": _train_dense(dataset, training, seed),
        "sparse_per_sample": _train_slide(dataset, training, hogwild=True, seed=seed),
        "sparse_batched": _train_slide(dataset, training, hogwild=False, seed=seed),
    }
    rows = [
        {
            "mode": mode,
            "samples_per_sec": round(result["samples_per_sec"], 1),
            "wall_time_s": round(result["wall_time_s"], 3),
            "precision_at_1": round(result["precision_at_1"], 4),
            "active_fraction": round(result["active_fraction"], 4),
            "rebuild_share": round(result["rebuild_share"], 4),
        }
        for mode, result in measurements.items()
    ]
    speedup = (
        measurements["sparse_batched"]["samples_per_sec"]
        / max(measurements["sparse_per_sample"]["samples_per_sec"], 1e-9)
    )
    return {
        "config": {
            "dataset": dataset.config.name,
            "feature_dim": dataset.config.feature_dim,
            "label_dim": dataset.config.label_dim,
            "num_train": len(dataset.train),
            "num_test": len(dataset.test),
            "batch_size": batch_size,
            "epochs": epochs,
            "seed": seed,
        },
        "rows": rows,
        # Where the time goes per mode (hash / rebuild / gather-GEMM /
        # optimiser / other), so the rebuild share is tracked across PRs.
        "phase_breakdown": {
            mode: result["phase_seconds"] for mode, result in measurements.items()
        },
        "speedup_batched_vs_per_sample": round(speedup, 2),
    }


def test_train_throughput_table(run_once):
    report = run_once(measure_training_throughput)
    print()
    print(
        format_table(
            report["rows"],
            title="Training throughput: dense vs per-sample vs batched sparse",
        )
    )
    by_mode = {row["mode"]: row for row in report["rows"]}
    # The phase breakdown must cover the batched run: the fused kernels and
    # the rebuild hook both record real time.
    batched_phases = report["phase_breakdown"]["sparse_batched"]
    assert batched_phases.get("hash", 0.0) > 0.0
    assert batched_phases.get("select", 0.0) > 0.0
    assert batched_phases.get("gather_gemm", 0.0) > 0.0
    assert batched_phases.get("optimiser", 0.0) > 0.0
    assert "rebuild" in batched_phases
    # The fused kernels must beat the per-sample hot path decisively...
    assert report["speedup_batched_vs_per_sample"] >= 2.0
    # ...without giving up accuracy (within 1% absolute precision@1).
    assert (
        by_mode["sparse_batched"]["precision_at_1"]
        >= by_mode["sparse_per_sample"]["precision_at_1"] - 0.01
    )
    # Sparsity claim: the sparse paths touch a small fraction of the neurons.
    assert by_mode["sparse_batched"]["active_fraction"] < 0.5


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "train_throughput"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    return measure_training_throughput(
        scale=float(p.get("scale", 1.0 / 512.0)),
        epochs=int(p.get("epochs", 6)),
        batch_size=int(p.get("batch_size", 32)),
        seed=int(p.get("seed", 0)),
    )


def check(payload: dict, smoke: bool) -> list[str]:
    """The fused batched kernels beat the per-sample path at matching p@1."""
    by_mode = {row["mode"]: row for row in payload["rows"]}
    problems = []
    threshold = 1.0 if smoke else 2.0
    speedup = payload["speedup_batched_vs_per_sample"]
    if speedup < threshold:
        problems.append(
            f"batched sparse path is below the {threshold}x throughput bar ({speedup}x)"
        )
    # Smoke scale trains a few-hundred-label toy for one epoch: per-sample vs
    # batched update ordering genuinely converges differently that early, and
    # the 16-neuron active floor is a large fraction of the tiny output
    # layer.  The precision-parity and sparsity bars therefore only bind at
    # full scale; smoke regressions in batched precision are still caught by
    # the registry's trend gate against the committed baseline.
    if not smoke:
        if (
            by_mode["sparse_batched"]["precision_at_1"]
            < by_mode["sparse_per_sample"]["precision_at_1"] - 0.01
        ):
            problems.append("batched kernels gave up more than 1% absolute precision@1")
        if by_mode["sparse_batched"]["active_fraction"] >= 0.5:
            problems.append("sparse path touched more than half the neurons")
    batched_phases = payload["phase_breakdown"]["sparse_batched"]
    for phase in ("hash", "select", "gather_gemm", "optimiser"):
        if batched_phases.get(phase, 0.0) <= 0.0:
            problems.append(f"phase breakdown missing time for {phase!r}")
    return problems


def print_report(payload: dict) -> None:
    print(
        format_table(
            payload["rows"],
            title="Training throughput: dense vs per-sample vs batched sparse",
        )
    )
    print(f"batched / per-sample speedup: {payload['speedup_batched_vs_per_sample']}x")


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("train_throughput"))


if __name__ == "__main__":
    main()
