"""Data pipeline: XC-text ingest and eager vs streamed/prefetched epochs.

Not a paper figure — the data-movement anchor for this repo.  The paper's
headline runs train on Delicious-200K / Amazon-670K from the Extreme
Classification Repository; getting those through the kernels is gated on the
input pipeline, not the math.  This bench measures, on a synthetic dataset
written out in the real XC text format:

* ``ingest``  — one-time streaming parse into mmap CSR shards
  (:mod:`repro.data.ingest`), examples/s and MB/s;
* ``eager``   — the legacy path: re-parse the text file with
  ``load_xc_file`` and assemble one epoch of shuffled batches from the
  object list;
* ``sharded`` — open the shard cache and stream one epoch through
  ``ShardedDataset.iter_batches`` + ``BatchPrefetcher``.

The streamed path must beat the eager path (it replaces text parsing with
mmap reads), and shard-cache training must match eager-loader training loss
bit-for-bit under the same seed.  The registry
(``python -m repro.reports --run data_pipeline``) writes
``BENCH_data_pipeline.json`` at the repository root.

Runs under the pytest bench harness or standalone::

    PYTHONPATH=src python benchmarks/bench_data_pipeline.py [--smoke]
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.data import BatchPrefetcher, ShardedDataset, ingest_xc_file
from repro.datasets.loaders import load_xc_file, write_xc_file
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.harness.report import format_table
from repro.types import SparseBatch
from repro.utils.rng import derive_rng

def _slide_network(feature_dim: int, label_dim: int, seed: int) -> SlideNetwork:
    layers = (
        LayerConfig(size=32, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=LSHConfig(hash_family="simhash", k=4, l=12, bucket_size=64),
            sampling=SamplingConfig(
                strategy="vanilla",
                target_active=max(16, label_dim // 12),
                min_active=16,
            ),
            rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
        ),
    )
    return SlideNetwork(
        SlideNetworkConfig(input_dim=feature_dim, layers=layers, seed=seed)
    )


def _eager_epoch(
    xc_path: Path, batch_size: int, seed: int
) -> tuple[float, int, int]:
    """Parse the text file and assemble one shuffled epoch of batches."""
    started = time.perf_counter()
    examples, feature_dim, label_dim = load_xc_file(xc_path)
    rng = derive_rng(seed, stream=47)
    order = rng.permutation(len(examples))
    batches = 0
    for start in range(0, len(examples), batch_size):
        chunk = [examples[i] for i in order[start : start + batch_size]]
        batch = SparseBatch.from_examples(
            chunk, feature_dim=feature_dim, label_dim=label_dim
        )
        batch.to_dense_features()
        batches += 1
    return time.perf_counter() - started, len(examples), batches


def _sharded_epoch(
    cache_dir: Path, batch_size: int, seed: int, depth: int
) -> tuple[float, int, int, int]:
    """Stream one shard-shuffled epoch through the prefetcher."""
    started = time.perf_counter()
    dataset = ShardedDataset(cache_dir, seed=seed)
    examples = 0
    batches = 0
    max_open = 0
    with BatchPrefetcher(dataset.iter_batches(batch_size, epoch=0), depth=depth) as queue:
        for batch in queue:
            batch.to_dense_features()
            examples += len(batch)
            batches += 1
            max_open = max(max_open, dataset.open_shard_count())
    return time.perf_counter() - started, examples, batches, max_open


def _training_losses(
    source, feature_dim: int, label_dim: int, training: TrainingConfig, depth: int
) -> np.ndarray:
    network = _slide_network(feature_dim, label_dim, seed=training.seed)
    trainer = SlideTrainer(network, training, hogwild=False, prefetch_depth=depth)
    return trainer.train(source).losses()


def measure_data_pipeline(
    scale: float = 1.0 / 512.0,
    batch_size: int = 64,
    shard_size: int = 256,
    prefetch_depth: int = 4,
    seed: int = 0,
) -> dict[str, object]:
    """Ingest + epoch-throughput rows plus the bit-for-bit training parity."""
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    feature_dim = dataset.config.feature_dim
    label_dim = dataset.config.label_dim

    workdir = Path(tempfile.mkdtemp(prefix="bench-data-pipeline-"))
    try:
        xc_path = write_xc_file(
            workdir / "train.txt", dataset.train, feature_dim, label_dim
        )
        file_mb = xc_path.stat().st_size / 1e6

        started = time.perf_counter()
        manifest = ingest_xc_file(xc_path, workdir / "shards", shard_size=shard_size)
        ingest_s = time.perf_counter() - started

        eager_s, num_examples, eager_batches = _eager_epoch(xc_path, batch_size, seed)
        sharded_s, streamed, sharded_batches, max_open = _sharded_epoch(
            workdir / "shards", batch_size, seed, prefetch_depth
        )
        if streamed != num_examples:
            raise RuntimeError(
                f"streamed epoch covered {streamed} of {num_examples} examples"
            )

        training = TrainingConfig(
            batch_size=batch_size,
            epochs=1,
            optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
            seed=seed,
        )
        eager_losses = _training_losses(
            dataset.train, feature_dim, label_dim, training, depth=0
        )
        sharded_losses = _training_losses(
            ShardedDataset(workdir / "shards", seed=seed),
            feature_dim,
            label_dim,
            training,
            depth=prefetch_depth,
        )
        parity = bool(np.array_equal(eager_losses, sharded_losses))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    rows = [
        {
            "stage": "ingest",
            "wall_time_s": round(ingest_s, 3),
            "examples_per_sec": round(num_examples / max(ingest_s, 1e-9), 1),
            "mb_per_sec": round(file_mb / max(ingest_s, 1e-9), 2),
            "chunks": manifest.num_shards,  # shards written
        },
        {
            "stage": "eager_epoch",
            "wall_time_s": round(eager_s, 3),
            "examples_per_sec": round(num_examples / max(eager_s, 1e-9), 1),
            "mb_per_sec": round(file_mb / max(eager_s, 1e-9), 2),
            "chunks": eager_batches,  # batches assembled
        },
        {
            "stage": "sharded_epoch",
            "wall_time_s": round(sharded_s, 3),
            "examples_per_sec": round(streamed / max(sharded_s, 1e-9), 1),
            "mb_per_sec": round(file_mb / max(sharded_s, 1e-9), 2),
            "chunks": sharded_batches,  # batches assembled
        },
    ]
    return {
        "config": {
            "dataset": dataset.config.name,
            "feature_dim": feature_dim,
            "label_dim": label_dim,
            "num_examples": num_examples,
            "xc_file_mb": round(file_mb, 2),
            "batch_size": batch_size,
            "shard_size": shard_size,
            "num_shards": manifest.num_shards,
            "prefetch_depth": prefetch_depth,
            "seed": seed,
        },
        "rows": rows,
        "speedup_sharded_vs_eager": round(eager_s / max(sharded_s, 1e-9), 2),
        "max_open_shards_during_stream": max_open,
        "training_loss_parity_bitwise": parity,
    }


def test_data_pipeline_table(run_once):
    report = run_once(measure_data_pipeline)
    print()
    print(
        format_table(
            report["rows"],
            title="Data pipeline: ingest, eager epoch, sharded+prefetched epoch",
        )
    )
    # Streaming the shard cache must beat re-parsing the text file.
    assert report["speedup_sharded_vs_eager"] >= 1.0
    # One shard resident at a time (plus nothing lingering afterwards).
    assert report["max_open_shards_during_stream"] <= 2
    # Same seed, same losses — the streaming path is not allowed to change
    # the training trajectory at all.
    assert report["training_loss_parity_bitwise"]


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "data_pipeline"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    scale = float(p.get("scale", 1.0 / 512.0))
    shard_size = int(p.get("shard_size", 128 if scale <= 1.0 / 1024.0 else 256))
    return measure_data_pipeline(
        scale=scale,
        batch_size=int(p.get("batch_size", 64)),
        shard_size=shard_size,
        prefetch_depth=int(p.get("prefetch_depth", 4)),
        seed=int(p.get("seed", 0)),
    )


def check(payload: dict, smoke: bool) -> list[str]:
    """Streaming must beat re-parsing and must not change training at all."""
    problems = []
    if not payload["training_loss_parity_bitwise"]:
        problems.append("shard-cache training diverged from the eager loader")
    if payload["speedup_sharded_vs_eager"] < 1.0:
        problems.append(
            "sharded+prefetched epoch is slower than the eager loader "
            f"({payload['speedup_sharded_vs_eager']}x)"
        )
    if payload["max_open_shards_during_stream"] > 2:
        problems.append(
            f"{payload['max_open_shards_during_stream']} shards were resident at "
            "once; streaming should hold at most 2"
        )
    return problems


def print_report(payload: dict) -> None:
    print(
        format_table(
            payload["rows"],
            title="Data pipeline: ingest, eager epoch, sharded+prefetched epoch",
        )
    )
    print(f"sharded / eager epoch speedup: {payload['speedup_sharded_vs_eager']}x")
    print(f"training loss parity (bitwise): {payload['training_loss_parity_bitwise']}")


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("data_pipeline"))


if __name__ == "__main__":
    main()
