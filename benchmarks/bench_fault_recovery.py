"""Fault-recovery bench — chaos scenarios for the training runtime, measured.

A training system's fault story is only as good as its measurements.  This
bench runs two chaos scenarios end-to-end against the synthetic XC workload
and records what recovery actually cost:

* **Worker kill** — a 2-process supervised HOGWILD run in which worker 1 is
  ``SIGKILL``-ed mid-epoch by a deterministic
  :class:`~repro.faults.FaultPlan`.  The supervisor must detect the death,
  restart the slot, and finish the run; the report records the measured
  recovery latency (death detection → replacement launch), the batches whose
  telemetry died with the victim, and the final precision@1 against an
  uninterrupted baseline of the same seed (must stay within
  ``PRECISION_TOLERANCE``).
* **Parent kill + resume** — the whole training process is ``SIGKILL``-ed
  mid-run (no cleanup, no atexit) while it writes periodic checkpoints.  A
  fresh process then resumes from the surviving store and must reproduce the
  uninterrupted run's loss trajectory *bitwise* from the restored batch
  onward — the strongest statement that nothing about the crash leaked into
  the resumed model.

The registry (``python -m repro.reports --run fault_recovery``) writes
``BENCH_fault_recovery.json``.  Runs under the pytest bench harness or
standalone::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--smoke]
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import shutil
import signal
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import FaultToleranceConfig, OptimizerConfig, TrainingConfig
from repro.core.network import SlideNetwork
from repro.core.trainer import SlideTrainer
from repro.data.ingest import ingest_examples
from repro.data.shards import ShardedDataset
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.faults import FaultPlan
from repro.harness.report import format_table
from repro.harness.scaling import build_scaling_network_config
from repro.parallel.sharedmem import ProcessHogwildTrainer
from repro.serving import CheckpointStore

# The killed run loses at most a couple of batches of telemetry and retrains
# them after the restart; its converged precision must stay within a point of
# the uninterrupted baseline (the smoke config's tiny eval set gets the same
# looser bar the other process benches use).
PRECISION_TOLERANCE = 0.01
SMOKE_PRECISION_TOLERANCE = 0.05

# Inline checkpoint cadence for the parent-kill scenario.  Both the baseline
# and the victim run checkpoint on this cadence: saving canonicalises dirty
# LSH tables, so trajectory parity is defined over identically-checkpointed
# runs.
CHECKPOINT_EVERY_BATCHES = 5
_INLINE_FT = FaultToleranceConfig(
    checkpoint_every_batches=CHECKPOINT_EVERY_BATCHES, checkpoint_keep_last=8
)


def _training_config(batch_size: int, epochs: int, seed: int) -> TrainingConfig:
    return TrainingConfig(
        batch_size=batch_size,
        epochs=epochs,
        optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Scenario 1: SIGKILL a worker mid-epoch, supervised run completes
# ----------------------------------------------------------------------
def run_worker_kill_scenario(
    scale: float, epochs: int, batch_size: int, seed: int
) -> dict[str, object]:
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    training = _training_config(batch_size, epochs, seed)
    network_config = build_scaling_network_config(
        dataset.config.feature_dim, dataset.config.label_dim, seed
    )
    cache = tempfile.mkdtemp(prefix="fault-bench-shards-")
    try:
        ingest_examples(
            dataset.train,
            feature_dim=dataset.config.feature_dim,
            label_dim=dataset.config.label_dim,
            cache_dir=cache,
            shard_size=max(batch_size, len(dataset.train) // 8 or 1),
            source=dataset.config.name,
        )
        sharded = ShardedDataset(cache, seed=seed)
        total_batches = -(-len(dataset.train) // batch_size) * epochs
        # Mid-epoch for the victim: roughly halfway through its share of
        # the run (2 workers → ~total/2 batches each).
        kill_at_batch = max(2, total_batches // 4)
        supervision_config = FaultToleranceConfig(
            poll_interval_s=0.05,
            max_restarts=2,
            backoff_base_s=0.05,
            backoff_max_s=0.5,
        )

        def run(fault_plan):
            network = SlideNetwork(network_config)
            trainer = ProcessHogwildTrainer(
                network,
                training,
                num_processes=2,
                fault_tolerance=supervision_config,
                fault_plan=fault_plan,
            )
            return trainer.train(sharded, dataset.test)

        baseline = run(None)
        chaos = run(FaultPlan.kill_worker(1, at_batch=kill_at_batch))
    finally:
        shutil.rmtree(cache, ignore_errors=True)

    supervision = chaos.supervision
    latencies = supervision.recovery_latency_s if supervision else []
    return {
        "workload": {
            "dataset": dataset.config.name,
            "num_train": len(dataset.train),
            "num_test": len(dataset.test),
            "batch_size": batch_size,
            "epochs": epochs,
            "total_batches": total_batches,
            "seed": seed,
        },
        "kill_at_worker_batch": kill_at_batch,
        "baseline": {
            "wall_time_s": round(baseline.wall_time_s, 3),
            "samples": baseline.samples,
            "precision_at_1": round(baseline.final_accuracy() or 0.0, 4),
        },
        "killed": {
            "wall_time_s": round(chaos.wall_time_s, 3),
            "samples": chaos.samples,
            "precision_at_1": round(chaos.final_accuracy() or 0.0, 4),
            "restarts": supervision.restarts if supervision else 0,
            "lost_batches": supervision.lost_batches if supervision else 0,
            "reassigned_items": supervision.reassigned_items if supervision else 0,
            "failure_events": [
                {"kind": e.kind, "worker": e.worker_id, "detail": e.detail}
                for e in (supervision.failures if supervision else [])
            ],
            "recovery_latency_s": [round(v, 4) for v in latencies],
            "mean_recovery_latency_s": round(
                float(np.mean(latencies)), 4
            ) if latencies else None,
        },
        "precision_gap": round(
            abs(
                (chaos.final_accuracy() or 0.0)
                - (baseline.final_accuracy() or 0.0)
            ),
            4,
        ),
    }


# ----------------------------------------------------------------------
# Scenario 2: SIGKILL the whole training process, resume from checkpoints
# ----------------------------------------------------------------------
def _parent_kill_victim(network_config, training, examples, store_dir) -> None:
    """Child-process body: train inline with periodic checkpoints until
    killed from outside (or until completion, if the killer is too slow)."""
    trainer = SlideTrainer(
        SlideNetwork(network_config),
        training,
        hogwild=False,
        checkpoint_dir=store_dir,
        fault_tolerance=_INLINE_FT,
    )
    trainer.train(examples)


def run_parent_kill_scenario(
    scale: float, epochs: int, batch_size: int, seed: int
) -> dict[str, object]:
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    training = _training_config(batch_size, epochs, seed)
    network_config = build_scaling_network_config(
        dataset.config.feature_dim, dataset.config.label_dim, seed
    )
    batches_per_epoch = -(-len(dataset.train) // batch_size)
    total_batches = batches_per_epoch * epochs

    work_root = Path(tempfile.mkdtemp(prefix="fault-bench-resume-"))
    try:
        # Uninterrupted baseline, checkpointing on the same cadence.
        baseline_network = SlideNetwork(network_config)
        baseline = SlideTrainer(
            baseline_network,
            training,
            hogwild=False,
            checkpoint_dir=work_root / "baseline",
            fault_tolerance=_INLINE_FT,
        )
        baseline_losses = baseline.train(dataset.train).losses()

        # The victim: same run in a child process, SIGKILL-ed (no cleanup,
        # no flush) as soon as its first mid-run checkpoint lands.
        store_dir = work_root / "victim"
        context = mp.get_context("fork")
        victim = context.Process(
            target=_parent_kill_victim,
            args=(network_config, training, dataset.train, store_dir),
            daemon=True,
        )
        victim.start()
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and victim.is_alive():
            try:
                if CheckpointStore(store_dir).versions():
                    break
            except OSError:  # pragma: no cover - store mid-mkdir
                pass
            time.sleep(0.002)
        killed_mid_run = victim.is_alive()
        if killed_mid_run:
            os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30.0)

        # Resume in a fresh "process": new network, new trainer, the same
        # checkpoint cadence, restored from the survivor store's newest
        # intact version.
        store = CheckpointStore(store_dir)
        resume_version = store.latest_valid()
        manifest = json.loads((resume_version / "manifest.json").read_text())
        state = manifest["metadata"]["train_state"]
        position = int(state["epoch"]) * batches_per_epoch + int(
            state["batches_done"]
        )

        resumed_network = SlideNetwork(network_config)
        resumed = SlideTrainer(
            resumed_network,
            training,
            hogwild=False,
            checkpoint_dir=work_root / "resumed",
            fault_tolerance=_INLINE_FT,
        )
        recovery_start = time.monotonic()
        resumed_losses = resumed.train(dataset.train, resume=store_dir).losses()
        recovery_wall_s = time.monotonic() - recovery_start
    finally:
        shutil.rmtree(work_root, ignore_errors=True)

    expected_suffix = baseline_losses[position:]
    trajectory_matches = bool(
        len(resumed_losses) == len(expected_suffix)
        and np.array_equal(resumed_losses, expected_suffix)
    )
    max_loss_divergence = (
        float(np.max(np.abs(resumed_losses - expected_suffix)))
        if len(resumed_losses) == len(expected_suffix) and len(expected_suffix)
        else None
    )
    weights_match = all(
        np.array_equal(base_layer.weights, res_layer.weights)
        and np.array_equal(base_layer.biases, res_layer.biases)
        for base_layer, res_layer in zip(
            baseline_network.layers, resumed_network.layers
        )
    )
    return {
        "workload": {
            "dataset": dataset.config.name,
            "num_train": len(dataset.train),
            "batch_size": batch_size,
            "epochs": epochs,
            "total_batches": total_batches,
            "checkpoint_every_batches": CHECKPOINT_EVERY_BATCHES,
            "seed": seed,
        },
        "killed_mid_run": killed_mid_run,
        "victim_exit_code": victim.exitcode,
        "resume_position_batches": position,
        "retrained_batches": len(resumed_losses),
        "recovery_wall_s": round(recovery_wall_s, 3),
        "loss_trajectory_matches": trajectory_matches,
        "max_loss_divergence": max_loss_divergence,
        "final_weights_match": weights_match,
    }


# ----------------------------------------------------------------------
# Report assembly and acceptance checks
# ----------------------------------------------------------------------
def build_report(
    scale: float = 1.0 / 512.0,
    epochs: int = 3,
    batch_size: int = 32,
    seed: int = 0,
) -> dict[str, object]:
    return {
        "worker_kill": run_worker_kill_scenario(scale, epochs, batch_size, seed),
        "parent_kill_resume": run_parent_kill_scenario(
            scale, epochs, batch_size, seed
        ),
    }


def check_report(
    report: dict[str, object],
    precision_tolerance: float = PRECISION_TOLERANCE,
) -> list[str]:
    """Acceptance checks; returns human-readable failures (empty = pass)."""
    failures: list[str] = []
    kill = report["worker_kill"]
    if kill["killed"]["restarts"] < 1:
        failures.append("worker-kill run recorded no restart")
    if not kill["killed"]["recovery_latency_s"]:
        failures.append("worker-kill run recorded no recovery latency")
    if kill["killed"]["samples"] <= 0:
        failures.append("worker-kill run trained no samples")
    if float(kill["precision_gap"]) > precision_tolerance:
        failures.append(
            f"killed-run precision@1 deviates {kill['precision_gap']} from the "
            f"uninterrupted baseline (tolerance {precision_tolerance})"
        )
    resume = report["parent_kill_resume"]
    if not resume["loss_trajectory_matches"]:
        failures.append(
            "resumed run diverged from the uninterrupted loss trajectory "
            f"(max divergence {resume['max_loss_divergence']})"
        )
    if not resume["final_weights_match"]:
        failures.append("resumed final weights differ from the baseline's")
    if resume["killed_mid_run"] and resume["retrained_batches"] <= 0:
        failures.append("mid-run kill left no batches to retrain — bad cadence?")
    return failures


def _summary_rows(report: dict[str, object]) -> list[dict[str, object]]:
    kill = report["worker_kill"]
    resume = report["parent_kill_resume"]
    return [
        {
            "scenario": "worker SIGKILL",
            "completed": True,
            "restarts": kill["killed"]["restarts"],
            "lost_batches": kill["killed"]["lost_batches"],
            "recovery_s": kill["killed"]["mean_recovery_latency_s"],
            "precision_gap": kill["precision_gap"],
        },
        {
            "scenario": "parent SIGKILL + resume",
            "completed": bool(resume["loss_trajectory_matches"]),
            "restarts": 1 if resume["killed_mid_run"] else 0,
            "lost_batches": resume["retrained_batches"],
            "recovery_s": resume["recovery_wall_s"],
            "precision_gap": 0.0 if resume["final_weights_match"] else None,
        },
    ]


# ----------------------------------------------------------------------
# pytest bench harness entry point
# ----------------------------------------------------------------------
def test_fault_recovery_chaos(run_once):
    report = run_once(
        build_report, scale=1.0 / 2048.0, epochs=2, batch_size=32, seed=0
    )
    print()
    print(format_table(_summary_rows(report), title="Fault recovery (chaos smoke)"))
    failures = check_report(
        report, precision_tolerance=SMOKE_PRECISION_TOLERANCE
    )
    assert not failures, "\n".join(failures)


# ----------------------------------------------------------------------
# Registry generator (see repro.reports): bench id "fault_recovery"
# ----------------------------------------------------------------------
def run(params: dict | None = None) -> dict:
    """Pure payload generator for the report registry."""
    p = dict(params or {})
    if p.get("smoke", False):
        scale, epochs = 1.0 / 2048.0, 2
    else:
        scale, epochs = 1.0 / 512.0, 3
    return build_report(
        scale=float(p.get("scale", scale)),
        epochs=int(p.get("epochs", epochs)),
        batch_size=int(p.get("batch_size", 32)),
        seed=int(p.get("seed", 0)),
    )


def check(payload: dict, smoke: bool) -> list[str]:
    """Both chaos scenarios recovered within the precision/parity bars."""
    tolerance = SMOKE_PRECISION_TOLERANCE if smoke else PRECISION_TOLERANCE
    return check_report(payload, precision_tolerance=tolerance)


def print_report(payload: dict) -> None:
    print(format_table(_summary_rows(payload), title="Fault recovery"))
    kill = payload["worker_kill"]
    print(
        f"worker kill: {kill['killed']['restarts']} restart(s), mean recovery "
        f"{kill['killed']['mean_recovery_latency_s']}s, precision gap "
        f"{kill['precision_gap']}"
    )
    resume = payload["parent_kill_resume"]
    print(
        f"parent kill: resumed at batch {resume['resume_position_batches']}/"
        f"{resume['workload']['total_batches']}, trajectory match: "
        f"{resume['loss_trajectory_matches']}"
    )


def main() -> None:
    from repro.reports.cli import bench_main

    raise SystemExit(bench_main("fault_recovery"))


if __name__ == "__main__":
    main()
