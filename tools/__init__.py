"""Repository tooling: contract checkers run by CI and the tier-1 suite.

``tools.lint`` is the static-analysis framework (``python -m tools.lint``);
``tools.check_docs`` is the documentation checker it registers as DOC001.
"""
