#!/usr/bin/env python
"""Documentation checker: internal links, heading anchors, and doctests.

Validates the repository's Markdown documentation without any third-party
dependencies, so CI and the tier-1 suite can run it anywhere:

* **Links** — every relative ``[text](target)`` must point at a file or
  directory that exists (anchors are stripped; ``http(s)``/``mailto``
  targets are skipped).
* **Anchors** — ``#fragment`` links (same-file or cross-file to another
  Markdown file) must match a heading's GitHub-style slug.
* **Doctests** — ``>>>`` examples embedded in the checked files run under
  :mod:`doctest` with ``src`` on ``sys.path`` (the same thing
  ``python -m doctest <file>`` would execute).
* **Registry sync** — ``docs/paper_map.md``'s generated measured-vs-modelled
  status table must match the report registry, and every registered bench id
  must be mentioned (``repro.reports.docs_sync.check_paper_map``).

Usage::

    python tools/check_docs.py                 # default file set
    python tools/check_docs.py README.md docs/*.md
    python tools/check_docs.py --no-doctest    # links/anchors only

Exits non-zero listing every failure.
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/paper_map.md",
    "docs/static_analysis.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close-enough approximation)."""
    # Inline code/emphasis markers do not contribute to the slug.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_fences(markdown: str) -> str:
    """Remove fenced code blocks (their contents are not link targets)."""
    out: list[str] = []
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def heading_slugs(path: Path) -> set[str]:
    text = _strip_fences(path.read_text(encoding="utf-8"))
    return {github_slug(match.group(2)) for match in _HEADING_RE.finditer(text)}


def check_links(path: Path) -> list[str]:
    """Link/anchor failures for one Markdown file."""
    failures: list[str] = []
    text = _strip_fences(path.read_text(encoding="utf-8"))
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                failures.append(f"{path}: broken link -> {target}")
                continue
            anchor_file = resolved
        else:
            anchor_file = path
        if anchor:
            if anchor_file.suffix.lower() not in (".md", ".markdown"):
                continue
            if github_slug(anchor) not in heading_slugs(anchor_file):
                failures.append(
                    f"{path}: anchor #{anchor} not found in {anchor_file.name}"
                )
    return failures


def run_doctests(path: Path) -> list[str]:
    """Doctest failures for one file (empty example set passes)."""
    try:
        results = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
            verbose=False,
        )
    except Exception as exc:  # noqa: BLE001 - report, do not crash the checker
        return [f"{path}: doctest run crashed: {type(exc).__name__}: {exc}"]
    if results.failed:
        return [f"{path}: {results.failed}/{results.attempted} doctest(s) failed"]
    return []


def check_registry_docs() -> list[str]:
    """Registry↔paper-map drift (stale status table, undocumented bench ids)."""
    from repro.reports.docs_sync import check_paper_map

    return check_paper_map()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        default=list(DEFAULT_FILES),
        help="Markdown files to check (relative to the repository root)",
    )
    parser.add_argument(
        "--no-doctest", action="store_true", help="skip the doctest pass"
    )
    args = parser.parse_args(argv)

    # Doctests import the package; make the src layout importable without
    # requiring an install.
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    failures: list[str] = []
    checked = 0
    for name in args.files:
        path = (REPO_ROOT / name).resolve() if not Path(name).is_absolute() else Path(name)
        if not path.exists():
            failures.append(f"{name}: file does not exist")
            continue
        checked += 1
        failures.extend(check_links(path))
        if not args.no_doctest:
            failures.extend(run_doctests(path))

    failures.extend(check_registry_docs())

    if failures:
        print(f"docs check FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"docs check OK: {checked} file(s), links+anchors+doctests+registry clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
