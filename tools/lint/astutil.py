"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted",
    "call_func_dotted",
    "keyword_arg",
    "iter_blocks",
    "walk_without_functions",
]


def dotted(node: ast.AST) -> str:
    """Best-effort dotted-source rendering of an expression.

    ``self._swap_lock`` -> ``"self._swap_lock"``; anything unrenderable
    (subscripts, calls, literals) falls back to :func:`ast.unparse`.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted(node.value)}.{node.attr}"
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"


def call_func_dotted(call: ast.Call) -> str:
    """Dotted name of a call's callee (``np.random.rand`` for that call)."""
    return dotted(call.func)


def keyword_arg(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def iter_blocks(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    """Yield every statement list in the tree (bodies, orelse, finalbody)."""
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def walk_without_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree but do not descend into nested function/class defs.

    Used for "inside this block" questions (e.g. calls made while a lock is
    held): a nested ``def`` merely *defines* code, it does not run it here.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))
