"""Core of the repo-native static analyser (``repro-lint``).

The framework is deliberately small: a :class:`ModuleSource` wraps one
parsed Python file (source text, AST, and ``# repro: allow[...]`` pragma
map); a :class:`Rule` inspects either one module at a time
(:meth:`Rule.check_module`) or the repository as a whole
(:meth:`Rule.check_project`) and yields :class:`Violation` records; the
:func:`run_rules` driver applies pragma suppression and returns the sorted
survivors.

Rules encode *this repository's* concurrency/determinism/resource
contracts (lock discipline, seeded-RNG flow, multiprocessing hygiene, the
serving error taxonomy, config-schema sync, thread hygiene) — the classes
of invariant that previous PRs only caught by measurement (PR 5's torn
shared Adam moments, PR 6's seqlock generation protocol).  A generic linter
cannot know that ``predict`` under a write lock stalls every reader or that
``np.random`` outside :mod:`repro.utils.rng` breaks replay; these rules do.

Suppression is per line: a trailing (or immediately preceding) comment
``# repro: allow[TAG]`` silences a rule on that line, where ``TAG`` is the
rule code (``LCK001``) or one of the rule's short tags (``lock``,
``clock``, ``rng``, ``exc``, ``mp``, ``thread``).  Everything after the
closing bracket is free-form justification and is encouraged.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "ModuleSource",
    "Rule",
    "collect_sources",
    "run_rules",
    "REPO_ROOT",
]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\- ]+)\]")

# Directories never worth parsing.
_EXCLUDED_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
}


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a repo-relative file and line."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Keyed on (rule, file, source line content) rather than the line
        *number*, so unrelated edits moving code up or down a file do not
        invalidate baseline entries.
        """
        payload = f"{self.rule}::{self.path}::{self.snippet}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class ModuleSource:
    """One parsed Python source file plus its pragma map."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text)  # SyntaxError propagates to the caller
        self._pragmas: dict[int, set[str]] | None = None

    @classmethod
    def from_path(cls, path: Path, root: Path = REPO_ROOT) -> "ModuleSource":
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        return cls(path, rel, path.read_text(encoding="utf-8"))

    def line(self, lineno: int) -> str:
        """Stripped source of 1-indexed ``lineno`` (empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    @property
    def pragmas(self) -> dict[int, set[str]]:
        """1-indexed line -> lowered set of ``allow[...]`` tags on it."""
        if self._pragmas is None:
            found: dict[int, set[str]] = {}
            for number, raw in enumerate(self.lines, start=1):
                if "repro:" not in raw:
                    continue
                match = _PRAGMA_RE.search(raw)
                if match is None:
                    continue
                tags = {
                    tag.strip().lower()
                    for tag in match.group(1).split(",")
                    if tag.strip()
                }
                if tags:
                    found[number] = tags
            self._pragmas = found
        return self._pragmas

    def allowed(self, lineno: int, tags: Iterable[str]) -> bool:
        """Is a violation on ``lineno`` suppressed for any of ``tags``?

        A pragma counts when it sits on the violating line itself or on the
        line immediately above it (standalone-comment style).
        """
        wanted = {tag.lower() for tag in tags}
        for candidate in (lineno, lineno - 1):
            present = self.pragmas.get(candidate)
            if present and (present & wanted):
                return True
        return False


class Rule:
    """Base class for all checkers.

    Subclasses set ``code`` (``LCK001``), ``name``, ``description`` and
    optionally ``tags`` — extra pragma spellings accepted besides the code
    itself.  Per-file rules override :meth:`check_module`; whole-repo rules
    (config-schema sync, the docs checker) override :meth:`check_project`.
    ``default_enabled = False`` keeps a rule out of the default run (it
    still runs under ``--all`` or an explicit ``--select``).
    """

    code: str = "XXX000"
    name: str = ""
    description: str = ""
    tags: tuple[str, ...] = ()
    default_enabled: bool = True

    def suppression_tags(self) -> tuple[str, ...]:
        return (self.code.lower(), *self.tags)

    def check_module(self, module: ModuleSource) -> Iterator[Violation]:
        return iter(())

    def check_project(self, root: Path) -> Iterator[Violation]:
        return iter(())

    # Convenience constructor used by every concrete rule.
    def violation(
        self, module: ModuleSource, node: ast.AST | int, message: str
    ) -> Violation:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Violation(
            rule=self.code,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            snippet=module.line(line),
        )


def collect_sources(
    paths: Sequence[str | Path], root: Path = REPO_ROOT
) -> tuple[list[ModuleSource], list[Violation]]:
    """Parse every ``.py`` file under ``paths`` (files or directories).

    Returns ``(sources, errors)`` where errors are PARSE-rule violations
    for unreadable/unparseable files — the linter reports them instead of
    crashing mid-run.
    """
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not _EXCLUDED_DIR_NAMES.intersection(found.parts):
                    files.append(found)
        elif path.suffix == ".py":
            files.append(path)

    sources: list[ModuleSource] = []
    errors: list[Violation] = []
    seen: set[Path] = set()
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        rel = resolved.relative_to(root.resolve()).as_posix()
        try:
            sources.append(ModuleSource.from_path(resolved, root=root))
        except SyntaxError as exc:
            errors.append(
                Violation(
                    rule="PARSE",
                    path=rel,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
        except OSError as exc:
            errors.append(
                Violation(
                    rule="PARSE", path=rel, line=1, col=0,
                    message=f"file is unreadable: {exc}",
                )
            )
    return sources, errors


def run_rules(
    rules: Sequence[Rule],
    sources: Sequence[ModuleSource],
    root: Path = REPO_ROOT,
) -> list[Violation]:
    """Run every rule over every source, apply pragmas, sort the result."""
    survivors: list[Violation] = []
    by_rel = {module.rel: module for module in sources}
    for rule in rules:
        tags = rule.suppression_tags()
        for module in sources:
            for violation in rule.check_module(module):
                if not module.allowed(violation.line, tags):
                    survivors.append(violation)
        for violation in rule.check_project(root):
            # Project-level findings still honour pragmas when they point
            # into a file the run parsed.
            module = by_rel.get(violation.path)
            if module is not None and module.allowed(violation.line, tags):
                continue
            survivors.append(violation)
    return sorted(survivors, key=lambda v: v.sort_key)
