"""THR001 — thread hygiene.

Every ``threading.Thread(...)`` must be either daemonized
(``daemon=True``) or provably joined: a non-daemon thread that nobody
joins keeps the interpreter alive after ``main`` returns — the classic
"pytest hangs at the end of the suite" failure — and a thread that is
neither daemonized nor joined has no owner responsible for its shutdown.

The check is static and module-local: for a ``Thread(...)`` call without
``daemon=True``, the rule looks at what the thread object is assigned to
(``self._thread = threading.Thread(...)`` / ``thread = ...``) and searches
the same module for a ``<that name>.join(`` call.  Unassigned
fire-and-forget constructions (``threading.Thread(...).start()``) are
always flagged.

Suppress with ``# repro: allow[thread] <why>``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.lint.astutil import dotted, keyword_arg
from tools.lint.core import ModuleSource, Rule, Violation

__all__ = ["ThreadHygieneRule"]


class ThreadHygieneRule(Rule):
    code = "THR001"
    name = "thread-hygiene"
    description = "threads must be daemonized or joined in the same module"
    tags = ("thread",)

    def check_module(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            targets = self._thread_assignment(node)
            if targets is None:
                continue
            call, assigned_to = targets
            daemon = keyword_arg(call, "daemon")
            if isinstance(daemon, ast.Constant) and daemon.value is True:
                continue
            if assigned_to and any(
                self._joined_in_module(module, name) for name in assigned_to
            ):
                continue
            if assigned_to:
                names = ", ".join(assigned_to)
                yield self.violation(
                    module,
                    call,
                    f"thread assigned to {names} is neither daemon=True nor "
                    "joined anywhere in this module; daemonize it or own its "
                    "shutdown with .join()",
                )
            else:
                yield self.violation(
                    module,
                    call,
                    "fire-and-forget Thread(...) is neither daemon=True nor "
                    "joinable (never assigned); daemonize it or keep a "
                    "reference and join it",
                )

    @staticmethod
    def _thread_assignment(node: ast.AST) -> tuple[ast.Call, list[str]] | None:
        """``(call, assignment_targets)`` when node creates a Thread.

        Detects both ``x = threading.Thread(...)`` (targets from the
        assignment) and a bare ``threading.Thread(...)`` expression
        (empty target list).  Tuple-valued assignments like
        ``self._threads[i] = (thread, event)`` fall back to matching the
        subscripted container name.
        """
        call: ast.Call | None = None
        targets: list[str] = []
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            maybe = node.value
            if ThreadHygieneRule._is_thread_call(maybe):
                call = maybe
                for target in node.targets:
                    targets.append(dotted(target))
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            inner = node.value
            # threading.Thread(...).start() — the Call of interest is the
            # receiver of .start().
            if (
                isinstance(inner.func, ast.Attribute)
                and isinstance(inner.func.value, ast.Call)
                and ThreadHygieneRule._is_thread_call(inner.func.value)
            ):
                call = inner.func.value
            elif ThreadHygieneRule._is_thread_call(inner):
                call = inner
        if call is None:
            return None
        return call, targets

    @staticmethod
    def _is_thread_call(call: ast.Call) -> bool:
        return dotted(call.func).rsplit(".", 1)[-1] == "Thread"

    @staticmethod
    def _joined_in_module(module: ModuleSource, assigned_to: str) -> bool:
        # `self._thread = Thread(...)` is joined by `self._thread.join(...)`
        # but also commonly via a local alias (`thread, _ = self._threads[i]`);
        # accept a join on the final attribute name as well.
        tail = assigned_to.rsplit(".", 1)[-1]
        patterns = [
            re.escape(assigned_to) + r"\.join\(",
            r"\b" + re.escape(tail.lstrip("_")) + r"\.join\(",
            r"\b" + re.escape(tail) + r"\.join\(",
        ]
        return any(re.search(pattern, module.text) for pattern in patterns)
