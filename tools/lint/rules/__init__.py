"""Rule registry for ``tools.lint``.

``ALL_RULES`` is the single source of truth: the CLI, the baseline
workflow and the docs rule-catalogue are all generated from it.  Adding a
rule means adding a module here and one entry to the list.
"""

from __future__ import annotations

from tools.lint.core import Rule
from tools.lint.rules.cfg001 import ConfigSchemaSyncRule
from tools.lint.rules.det001 import DeterminismRule
from tools.lint.rules.doc001 import DocsContractRule
from tools.lint.rules.exc001 import ExceptionDisciplineRule
from tools.lint.rules.lck001 import LockDisciplineRule
from tools.lint.rules.mpx001 import MultiprocessingHygieneRule
from tools.lint.rules.thr001 import ThreadHygieneRule

__all__ = ["ALL_RULES", "default_rules", "select_rules"]

ALL_RULES: tuple[Rule, ...] = (
    LockDisciplineRule(),
    DeterminismRule(),
    MultiprocessingHygieneRule(),
    ExceptionDisciplineRule(),
    ConfigSchemaSyncRule(),
    ThreadHygieneRule(),
    DocsContractRule(),
)


def default_rules() -> list[Rule]:
    """The rules a plain ``python -m tools.lint`` run executes."""
    return [rule for rule in ALL_RULES if rule.default_enabled]


def select_rules(codes: list[str]) -> list[Rule]:
    """Resolve ``--select`` codes (case-insensitive); unknown codes raise."""
    by_code = {rule.code.lower(): rule for rule in ALL_RULES}
    selected: list[Rule] = []
    for code in codes:
        rule = by_code.get(code.strip().lower())
        if rule is None:
            known = ", ".join(sorted(r.code for r in ALL_RULES))
            raise ValueError(f"unknown rule code {code!r}; known rules: {known}")
        if rule not in selected:
            selected.append(rule)
    return selected
