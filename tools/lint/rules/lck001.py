"""LCK001 — lock discipline.

Two contracts the serving/trainer code enforces only by convention:

1. **Release is guarded.**  A bare ``lock.acquire()`` /
   ``rwlock.acquire_read()`` / ``rwlock.acquire_write()`` statement must be
   release-guarded: either the very next statement is a ``try`` whose
   ``finally`` calls the matching release on the same object, or the
   acquire already sits inside a ``try`` body whose ``finally`` releases
   it.  (Context managers — ``with lock:``, ``with rw.read_locked():`` —
   are the preferred spelling and always pass.)  An unguarded acquire
   leaks the lock on the first exception and deadlocks every later
   acquirer: for the hot-swap ``ReadWriteLock`` that means readers block
   forever and serving stops.

2. **No blocking while holding a lock.**  Inside a ``with`` block whose
   context is lock-like, the following are flagged: ``time.sleep``,
   un-timed ``queue.get()``, file/socket I/O (``open``, ``socket.*``,
   ``.recv``/``.send``/``.connect``/``.accept``), and un-timed
   ``Future.result()``.  ``predict*`` calls are additionally flagged under
   an *exclusive* lock (a plain ``threading.Lock`` or the write side of the
   rw-lock) — under the *read* side they are the design (many concurrent
   readers), but under the write side one request would stall every other
   reader for its full inference latency, which is exactly the reload-blip
   regression PR 6 measured.

Suppress a legitimate case with ``# repro: allow[lock] <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import dotted, keyword_arg, walk_without_functions
from tools.lint.core import ModuleSource, Rule, Violation

__all__ = ["LockDisciplineRule"]

_ACQUIRE_TO_RELEASE = {
    "acquire": "release",
    "acquire_read": "release_read",
    "acquire_write": "release_write",
}

# Context-manager expressions that mean "a lock is held inside this block".
_READ_LOCK_MARKERS = ("read_locked",)
_EXCLUSIVE_LOCK_MARKERS = ("write_locked", "lock", "mutex", "_cond")

_BLOCKING_SOCKET_METHODS = {"recv", "send", "sendall", "connect", "accept"}


def _lock_kind(context_expr: ast.expr) -> str | None:
    """Classify a ``with`` context: 'read', 'exclusive', or None (not a lock)."""
    source = dotted(
        context_expr.func if isinstance(context_expr, ast.Call) else context_expr
    ).lower()
    tail = source.rsplit(".", 1)[-1]
    if any(marker in tail for marker in _READ_LOCK_MARKERS):
        return "read"
    # "locked"/"unlock" style helper names and open()-ish things are not
    # locks; require the marker to appear in the final attribute.
    if tail in ("open",):
        return None
    if any(marker in tail for marker in _EXCLUSIVE_LOCK_MARKERS):
        return "exclusive"
    return None


class LockDisciplineRule(Rule):
    code = "LCK001"
    name = "lock-discipline"
    description = (
        "acquire() must be release-guarded by a finally (or use a context "
        "manager); no blocking calls while holding a lock"
    )
    tags = ("lock",)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check_module(self, module: ModuleSource) -> Iterator[Violation]:
        yield from self._check_unguarded_acquires(module)
        yield from self._check_blocking_under_lock(module)

    # ------------------------------------------------------------------
    # Part 1: acquire/release pairing
    # ------------------------------------------------------------------
    def _check_unguarded_acquires(self, module: ModuleSource) -> Iterator[Violation]:
        yield from self._scan_block(module, list(ast.iter_child_nodes(module.tree)), frozenset())

    def _scan_block(
        self,
        module: ModuleSource,
        block: list[ast.AST],
        guarded: frozenset[tuple[str, str]],
    ) -> Iterator[Violation]:
        """Walk statements tracking which (target, release) pairs an
        enclosing ``finally`` already guarantees."""
        statements = [node for node in block if isinstance(node, ast.stmt)]
        for index, stmt in enumerate(statements):
            acquire = self._acquire_call(stmt)
            if acquire is not None:
                target, method = acquire
                release = _ACQUIRE_TO_RELEASE[method]
                follower = statements[index + 1] if index + 1 < len(statements) else None
                if (target, release) not in guarded and not (
                    isinstance(follower, ast.Try)
                    and self._releases(follower.finalbody, target, release)
                ):
                    yield self.violation(
                        module,
                        stmt,
                        f"{target}.{method}() is not release-guarded: follow it "
                        f"with try/finally calling {target}.{release}(), or use "
                        "the context-manager form",
                    )
            # Recurse with the right guard context per child block.
            if isinstance(stmt, ast.Try):
                extra = frozenset(
                    (target, release)
                    for target, release in self._release_calls(stmt.finalbody)
                )
                yield from self._scan_block(module, stmt.body, guarded | extra)
                for handler in stmt.handlers:
                    yield from self._scan_block(module, handler.body, guarded | extra)
                yield from self._scan_block(module, stmt.orelse, guarded | extra)
                yield from self._scan_block(module, stmt.finalbody, guarded)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A new frame: the outer finally does not guard code that
                # merely gets *defined* here.
                yield from self._scan_block(module, stmt.body, frozenset())
            elif isinstance(stmt, ast.ClassDef):
                yield from self._scan_block(module, stmt.body, frozenset())
            else:
                for attr in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, attr, None)
                    if isinstance(child, list):
                        yield from self._scan_block(module, child, guarded)

    @staticmethod
    def _acquire_call(stmt: ast.stmt) -> tuple[str, str] | None:
        """``(target_source, method)`` when stmt is a bare ``x.acquire*()``."""
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return None
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in _ACQUIRE_TO_RELEASE:
            return dotted(func.value), func.attr
        return None

    @classmethod
    def _release_calls(cls, block: list[ast.stmt]) -> list[tuple[str, str]]:
        calls: list[tuple[str, str]] = []
        for stmt in block:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ACQUIRE_TO_RELEASE.values()
                ):
                    calls.append((dotted(node.func.value), node.func.attr))
        return calls

    @classmethod
    def _releases(cls, block: list[ast.stmt], target: str, release: str) -> bool:
        return (target, release) in cls._release_calls(block)

    # ------------------------------------------------------------------
    # Part 2: blocking calls while a lock is held
    # ------------------------------------------------------------------
    def _check_blocking_under_lock(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            kinds = [
                (item, _lock_kind(item.context_expr)) for item in node.items
            ]
            held = [(item, kind) for item, kind in kinds if kind is not None]
            if not held:
                continue
            exclusive = any(kind == "exclusive" for _, kind in held)
            lock_desc = ", ".join(dotted(item.context_expr) for item, _ in held)
            for child in walk_without_functions(node):
                if not isinstance(child, ast.Call):
                    continue
                reason = self._blocking_reason(child, exclusive=exclusive)
                if reason is not None:
                    yield self.violation(
                        module,
                        child,
                        f"{reason} while holding {lock_desc}; blocking under a "
                        "lock stalls every other acquirer",
                    )

    @staticmethod
    def _blocking_reason(call: ast.Call, exclusive: bool) -> str | None:
        func = call.func
        source = dotted(func)
        tail = source.rsplit(".", 1)[-1]
        if source in ("time.sleep", "sleep"):
            return "time.sleep()"
        if tail == "open" and "." not in source:
            return "file I/O (open())"
        if source.startswith("socket.") or tail in _BLOCKING_SOCKET_METHODS:
            return f"socket I/O ({tail}())"
        if tail == "get" and isinstance(func, ast.Attribute):
            owner = dotted(func.value).lower()
            if "queue" in owner and keyword_arg(call, "timeout") is None and not call.args:
                return f"un-timed {dotted(func.value)}.get()"
        if tail == "result" and isinstance(func, ast.Attribute):
            owner = dotted(func.value).lower()
            if ("future" in owner or "fut" == owner) and keyword_arg(
                call, "timeout"
            ) is None and not call.args:
                return f"un-timed {dotted(func.value)}.result()"
        if exclusive and tail.startswith("predict"):
            return f"inference call {tail}() under an exclusive lock"
        return None
