"""EXC001 — exception discipline.

Three contracts:

1. **No bare ``except:``** anywhere — it swallows ``KeyboardInterrupt`` and
   ``SystemExit`` and turns a Ctrl-C into a hung worker.

2. **No silent swallows.**  An ``except``/``except Exception``/``except
   BaseException`` whose body is only ``pass``/``continue`` hides failures
   exactly where this repo can least afford it: worker loops and
   supervisor paths keep "running" while doing nothing.  Swallows that are
   genuinely best-effort (cleanup on teardown, an error response that
   still proves liveness) carry ``# repro: allow[exc] <why>``.

3. **Serving raises only its error taxonomy.**  The HTTP front-end maps
   :class:`repro.serving.errors.ServingError` subclasses to statuses by
   ``exc.http_status``; a ``raise RuntimeError(...)`` on a request path is
   a hole in that mapping (it surfaces as an opaque 500 with no cause
   counter).  Inside ``src/repro/serving/`` every ``raise RuntimeError``
   must either be replaced by a taxonomy error or carry
   ``# repro: allow[exc]`` with a justification (start()/stop() lifecycle
   misuse that can never reach a request).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.core import ModuleSource, Rule, Violation

__all__ = ["ExceptionDisciplineRule"]

_SERVING_PREFIX = "src/repro/serving/"
_SERVING_EXEMPT = ("src/repro/serving/errors.py",)

_BROAD_NAMES = {"Exception", "BaseException"}


class ExceptionDisciplineRule(Rule):
    code = "EXC001"
    name = "exception-discipline"
    description = (
        "no bare excepts; no silent except-pass swallows; serving raises "
        "only the repro.serving.errors taxonomy"
    )
    tags = ("exc",)

    def check_module(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(module, node)

    def _check_handler(
        self, module: ModuleSource, handler: ast.ExceptHandler
    ) -> Iterator[Violation]:
        if handler.type is None:
            yield self.violation(
                module,
                handler,
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch a concrete exception type",
            )
            return
        if self._is_broad(handler.type) and self._is_silent(handler.body):
            yield self.violation(
                module,
                handler,
                "silent broad except (body is only pass/continue) hides "
                "failures; handle, log, or justify with "
                "'# repro: allow[exc] <why>'",
            )

    def _check_raise(self, module: ModuleSource, node: ast.Raise) -> Iterator[Violation]:
        if not module.rel.startswith(_SERVING_PREFIX):
            return
        if module.rel in _SERVING_EXEMPT:
            return
        exc = node.exc
        if (
            isinstance(exc, ast.Call)
            and isinstance(exc.func, ast.Name)
            and exc.func.id == "RuntimeError"
        ):
            yield self.violation(
                module,
                node,
                "raise RuntimeError in serving code: use the typed "
                "repro.serving.errors taxonomy so the HTTP status mapping "
                "stays total",
            )

    @staticmethod
    def _is_broad(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in _BROAD_NAMES
        if isinstance(annotation, ast.Tuple):
            return any(
                isinstance(item, ast.Name) and item.id in _BROAD_NAMES
                for item in annotation.elts
            )
        return False

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        meaningful = [
            stmt
            for stmt in body
            # A docstring-style bare string constant explains nothing at
            # runtime; it does not rescue a swallow.
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        return all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in meaningful)
