"""MPX001 — multiprocessing hygiene.

Two failure classes the shared-memory trainer is exposed to:

1. **Unpicklable worker targets.**  Under the ``spawn`` start method a
   ``Process(target=...)`` must pickle its target; a lambda or a function
   defined inside another function fails at launch time on macOS/Windows
   (and under the repo's own ``start_method="spawn"`` runs) even though
   ``fork`` on the Linux CI box lets it slide.  Targets must be
   module-level callables.

2. **Leaked shared memory.**  Every ``SharedMemory(create=True)`` segment
   must eventually be both ``close()``-d and ``unlink()``-ed — a module
   that creates segments but never unlinks leaves ``/dev/shm`` garbage
   that outlives the process (the resource_tracker only warns).  The check
   is per-module: creation without any ``unlink()``/``close()`` call in
   the same file is flagged.

Suppress with ``# repro: allow[mp] <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import dotted, keyword_arg
from tools.lint.core import ModuleSource, Rule, Violation

__all__ = ["MultiprocessingHygieneRule"]


class MultiprocessingHygieneRule(Rule):
    code = "MPX001"
    name = "multiprocessing-hygiene"
    description = (
        "Process targets must be module-level (picklable under spawn); "
        "SharedMemory(create=True) needs close()/unlink() in the same module"
    )
    tags = ("mp",)

    def check_module(self, module: ModuleSource) -> Iterator[Violation]:
        module_level = self._module_level_names(module.tree)
        nested = self._nested_function_names(module.tree)

        shm_creates: list[ast.Call] = []
        has_unlink = False
        has_close = False

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted(node.func)
            tail = callee.rsplit(".", 1)[-1]

            if tail == "Process":
                target = keyword_arg(node, "target")
                if isinstance(target, ast.Lambda):
                    yield self.violation(
                        module,
                        node,
                        "Process target is a lambda: unpicklable under the "
                        "spawn start method; use a module-level function",
                    )
                elif (
                    isinstance(target, ast.Name)
                    and target.id in nested
                    and target.id not in module_level
                ):
                    yield self.violation(
                        module,
                        node,
                        f"Process target '{target.id}' is defined inside "
                        "another function: unpicklable under spawn; move it "
                        "to module level",
                    )

            if tail == "SharedMemory":
                create = keyword_arg(node, "create")
                if isinstance(create, ast.Constant) and create.value is True:
                    shm_creates.append(node)
            if tail == "unlink":
                has_unlink = True
            if tail == "close":
                has_close = True

        for create_call in shm_creates:
            if not has_close:
                yield self.violation(
                    module,
                    create_call,
                    "SharedMemory(create=True) but this module never calls "
                    "close(); the mapping leaks until process exit",
                )
            if not has_unlink:
                yield self.violation(
                    module,
                    create_call,
                    "SharedMemory(create=True) but this module never calls "
                    "unlink(); the segment outlives the process in /dev/shm",
                )

    @staticmethod
    def _module_level_names(tree: ast.Module) -> set[str]:  # type: ignore[type-arg]
        names: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
        return names

    @staticmethod
    def _nested_function_names(tree: ast.AST) -> set[str]:
        nested: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if (
                        child is not node
                        and isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    ):
                        nested.add(child.name)
        return nested
