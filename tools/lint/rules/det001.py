"""DET001 — determinism in seeded train/replay paths.

The reproduction's headline guarantees (bitwise batch parity between eager
and sharded loaders, bitwise checkpoint resume, 1-process ≡ fused parity)
all rest on one discipline: every random draw flows through
:mod:`repro.utils.rng` (explicit seed -> ``numpy.random.Generator``) and
every *recorded* clock is injectable.  One ``np.random.rand()`` hiding in a
train path silently couples results to global interpreter state; one
``time.time()`` baked into replayed data makes two identical runs diverge.

Flagged inside the seeded-path scope (core, kernels, parallel, data, lsh,
hashing, optim, datasets, and the checkpoint format):

* ``np.random.<fn>(...)`` for any module-level convenience function
  (``rand``, ``seed``, ``shuffle``, ...) — construction helpers
  (``default_rng``, ``SeedSequence``, ``Generator``, bit generators) are
  the sanctioned spellings;
* stdlib ``random.<fn>(...)`` module-state calls (``random.Random(seed)``
  instances are fine);
* ``time.time()`` / ``time.time_ns()`` — wall clocks; ``monotonic`` /
  ``perf_counter`` are measurement, not replayed state, and stay legal.

Legitimate uses carry a pragma: ``# repro: allow[clock] <why>`` (e.g.
checkpoint metadata timestamps) or ``# repro: allow[rng] <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.astutil import dotted
from tools.lint.core import ModuleSource, Rule, Violation

__all__ = ["DeterminismRule"]

# Repo-relative prefixes forming the seeded train/replay surface.
_SCOPE_PREFIXES = (
    "src/repro/core/",
    "src/repro/kernels/",
    "src/repro/parallel/",
    "src/repro/data/",
    "src/repro/lsh/",
    "src/repro/hashing/",
    "src/repro/optim/",
    "src/repro/datasets/",
    "src/repro/serving/checkpoint.py",
    "src/repro/utils/",
)

# np.random attributes that *construct* explicit generators (sanctioned).
_SAFE_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_WALL_CLOCKS = {"time.time", "time.time_ns"}


class DeterminismRule(Rule):
    code = "DET001"
    name = "determinism"
    description = (
        "seeded train/replay paths must route RNGs through repro.utils.rng "
        "and must not bake wall-clock time into replayed state"
    )
    tags = ("rng", "clock")

    def check_module(self, module: ModuleSource) -> Iterator[Violation]:
        if not module.rel.startswith(_SCOPE_PREFIXES):
            return
        imports_stdlib_random = self._imports_stdlib_random(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            source = dotted(node.func)
            # numpy global-state RNG: np.random.X(...) / numpy.random.X(...)
            parts = source.split(".")
            if len(parts) >= 3 and parts[-2] == "random" and parts[-3] in (
                "np",
                "numpy",
            ):
                if parts[-1] not in _SAFE_NP_RANDOM:
                    yield self.violation(
                        module,
                        node,
                        f"global-state RNG call {source}() in a seeded path; "
                        "derive a Generator via repro.utils.rng instead",
                    )
                continue
            # stdlib random module state: random.random(), random.seed(), ...
            if (
                imports_stdlib_random
                and len(parts) == 2
                and parts[0] == "random"
                and parts[1] != "Random"
            ):
                yield self.violation(
                    module,
                    node,
                    f"stdlib global-state RNG call {source}() in a seeded "
                    "path; use an explicit seeded generator",
                )
                continue
            if source in _WALL_CLOCKS:
                yield self.violation(
                    module,
                    node,
                    f"wall clock {source}() in a seeded path; inject the "
                    "clock (or justify with '# repro: allow[clock]')",
                )

    @staticmethod
    def _imports_stdlib_random(tree: ast.AST) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" and alias.asname in (None, "random"):
                        return True
        return False
