"""DOC001 — documentation contracts, folded into the lint CLI.

Wraps :mod:`tools.check_docs` (internal links, heading anchors, embedded
doctests) as a registered checker so ``python -m tools.lint --all`` runs
docs and code contracts under one CLI and one exit-code convention.
``tools/check_docs.py`` keeps its standalone CLI for the existing CI job
and ``tests/test_docs.py``; this rule reuses its functions directly.

Not part of the default (code-only) run: docs doctests import and execute
the package, which is a heavier pass than AST analysis.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator

from tools.lint.core import REPO_ROOT, Rule, Violation

__all__ = ["DocsContractRule"]


class DocsContractRule(Rule):
    code = "DOC001"
    name = "docs-contracts"
    description = (
        "README/docs internal links and anchors resolve; embedded "
        "doctests pass (tools.check_docs under the lint CLI)"
    )
    tags = ("docs",)
    default_enabled = False

    def check_project(self, root: Path) -> Iterator[Violation]:
        from tools import check_docs

        src = root / "src"
        if str(src) not in sys.path:  # doctests import the package
            sys.path.insert(0, str(src))

        for name in check_docs.DEFAULT_FILES:
            path = root / name
            if not path.exists():
                yield self._finding(name, f"checked file {name} does not exist")
                continue
            for failure in check_docs.check_links(path):
                yield self._finding(name, self._strip_path(failure, path))
            for failure in check_docs.run_doctests(path):
                yield self._finding(name, self._strip_path(failure, path))

    def _finding(self, rel: str, message: str) -> Violation:
        return Violation(
            rule=self.code,
            path=Path(rel).as_posix(),
            line=1,
            col=0,
            message=message,
        )

    @staticmethod
    def _strip_path(failure: str, path: Path) -> str:
        # check_docs prefixes failures with the (absolute) path; the
        # Violation already carries it.
        return re.sub(r"^" + re.escape(str(path)) + r":\s*", "", failure)
