"""CFG001 — config-schema sync.

Every ``*Config`` dataclass in :mod:`repro.config` feeds a persisted
format (checkpoint manifests, ``--config`` JSON files), so every one needs
a registered ``to_dict``/``from_dict`` codec that (a) covers **all**
fields — a knob added without serialization silently vanishes from
checkpoints — and (b) is **strict**: an unknown key must raise
``ValueError`` naming the field rather than being dropped (the PR 6
``workerz`` typo contract).

The rule imports ``repro.config`` and checks its ``CONFIG_CODECS``
registry against the module's dataclasses, then round-trips the
``config_examples()`` instances:

* every ``*Config`` dataclass appears in ``CONFIG_CODECS``;
* ``to_dict(example)`` emits exactly the dataclass's field names;
* ``from_dict(to_dict(example)) == example``;
* ``from_dict`` rejects an injected unknown key with ``ValueError``.

This is a project-level rule (it needs live imports, like the doctest
side of the docs checker); findings anchor to ``src/repro/config.py``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterator

from tools.lint.core import Rule, Violation

__all__ = ["ConfigSchemaSyncRule"]

_CONFIG_REL = "src/repro/config.py"


class ConfigSchemaSyncRule(Rule):
    code = "CFG001"
    name = "config-schema-sync"
    description = (
        "every *Config dataclass in repro.config has a strict, "
        "all-field to_dict/from_dict codec registered in CONFIG_CODECS"
    )
    tags = ("cfg",)

    def check_project(self, root: Path) -> Iterator[Violation]:
        try:
            import repro.config as config_module
        except Exception as exc:  # pragma: no cover - import environment broken
            yield self._finding(f"cannot import repro.config: {exc}")
            return

        config_classes = {
            name: obj
            for name, obj in vars(config_module).items()
            if isinstance(obj, type)
            and name.endswith("Config")
            and dataclasses.is_dataclass(obj)
        }
        codecs = getattr(config_module, "CONFIG_CODECS", None)
        if not isinstance(codecs, dict):
            yield self._finding(
                "repro.config.CONFIG_CODECS registry is missing; every "
                "*Config dataclass needs a registered to_dict/from_dict pair"
            )
            return
        examples_fn = getattr(config_module, "config_examples", None)
        examples = examples_fn() if callable(examples_fn) else {}

        for name, cls in sorted(config_classes.items()):
            if cls not in codecs:
                yield self._finding(
                    f"{name} has no to_dict/from_dict codec registered in "
                    "CONFIG_CODECS; its fields cannot round-trip through "
                    "checkpoints/config files"
                )
                continue
            to_dict, from_dict = codecs[cls]
            example = examples.get(cls)
            if example is None:
                yield self._finding(
                    f"{name} has no example instance in config_examples(); "
                    "the codec cannot be round-trip checked"
                )
                continue
            yield from self._check_codec(name, cls, to_dict, from_dict, example)

    def _check_codec(self, name, cls, to_dict, from_dict, example) -> Iterator[Violation]:
        try:
            data = to_dict(example)
        except Exception as exc:
            yield self._finding(f"{name} to_dict raised on the example: {exc!r}")
            return
        field_names = {f.name for f in dataclasses.fields(cls)}
        emitted = set(data)
        if emitted != field_names:
            missing = sorted(field_names - emitted)
            extra = sorted(emitted - field_names)
            detail = "; ".join(
                part
                for part in (
                    f"missing fields: {', '.join(missing)}" if missing else "",
                    f"unknown keys: {', '.join(extra)}" if extra else "",
                )
                if part
            )
            yield self._finding(f"{name} to_dict does not cover the schema ({detail})")
            return
        try:
            rebuilt = from_dict(data)
        except Exception as exc:
            yield self._finding(f"{name} from_dict(to_dict(x)) raised: {exc!r}")
            return
        if rebuilt != example:
            yield self._finding(
                f"{name} does not round-trip: from_dict(to_dict(x)) != x"
            )
        poisoned = dict(data)
        poisoned["__repro_lint_unknown__"] = 1
        try:
            from_dict(poisoned)
        except ValueError:
            pass  # strict, as required
        except Exception as exc:
            yield self._finding(
                f"{name} from_dict raises {type(exc).__name__} on an unknown "
                "key; it must raise ValueError naming the field"
            )
        else:
            yield self._finding(
                f"{name} from_dict silently accepts unknown keys; it must "
                "reject them with ValueError"
            )

    def _finding(self, message: str) -> Violation:
        return Violation(
            rule=self.code, path=_CONFIG_REL, line=1, col=0, message=message
        )
