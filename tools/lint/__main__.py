"""Entry point: ``python -m tools.lint``."""

from tools.lint.cli import main

raise SystemExit(main())
