"""``python -m tools.lint`` — the repo-native contract checker CLI.

Exit codes: 0 = clean against the baseline, 1 = new violations (or a
baseline problem), 2 = usage error.  ``--json`` emits a machine-readable
report (schema below) instead of human output.

Usage::

    python -m tools.lint                      # code rules over src/repro
    python -m tools.lint src tools            # explicit paths
    python -m tools.lint --all                # + docs contracts (DOC001)
    python -m tools.lint --select LCK001,DET001
    python -m tools.lint --json
    python -m tools.lint --update-baseline    # accept the current state
    python -m tools.lint --list-rules

JSON schema (stable, ``"version": 1``)::

    {"version": 1,
     "violations": [{"rule", "path", "line", "col", "message",
                     "snippet", "fingerprint", "baselined"}],
     "stale_baseline": [{"rule", "path", "snippet", "fingerprint"}],
     "summary": {"checked_files", "total", "new", "baselined", "stale"}}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.lint.baseline import Baseline, DEFAULT_BASELINE_PATH, split_by_baseline
from tools.lint.core import REPO_ROOT, collect_sources, run_rules
from tools.lint.rules import ALL_RULES, default_rules, select_rules

DEFAULT_PATHS = ("src/repro",)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--all",
        action="store_true",
        help="also run non-default checkers (DOC001 docs contracts)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (overrides the default set)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE_PATH,
        help="baseline file (default: tools/lint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every violation fails the run",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept the current violations "
        "(stale entries expire; surviving justifications are kept)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the catalogue")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    # Project rules (CFG001, DOC001 doctests) import the package.
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    if args.list_rules:
        for rule in ALL_RULES:
            marker = " " if rule.default_enabled else " (--all)"
            print(f"{rule.code}{marker}  {rule.name}: {rule.description}")
        return 0

    if args.select:
        try:
            rules = select_rules(args.select.split(","))
        except ValueError as exc:
            parser.error(str(exc))  # exits 2
    elif args.all:
        rules = list(ALL_RULES)
    else:
        rules = default_rules()

    sources, parse_errors = collect_sources(args.paths, root=REPO_ROOT)
    violations = parse_errors + run_rules(rules, sources, root=REPO_ROOT)

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    new, accepted = split_by_baseline(violations, baseline)
    stale = baseline.stale_entries(violations)

    if args.update_baseline:
        updated = Baseline.from_violations(violations, previous=baseline)
        updated.save(args.baseline)
        print(
            f"baseline updated: {len(updated.entries)} entr"
            f"{'y' if len(updated.entries) == 1 else 'ies'} "
            f"({len(stale)} expired) -> {args.baseline}"
        )
        return 0

    if args.json:
        report = {
            "version": 1,
            "violations": [
                {**violation.to_json(), "baselined": violation in baseline}
                for violation in violations
            ],
            "stale_baseline": [entry.to_json() for entry in stale],
            "summary": {
                "checked_files": len(sources),
                "total": len(violations),
                "new": len(new),
                "baselined": len(accepted),
                "stale": len(stale),
            },
        }
        print(json.dumps(report, indent=2))
        return 1 if new else 0

    rule_word = f"{len(rules)} rule{'s' if len(rules) != 1 else ''}"
    if new:
        print(f"repro-lint: {len(new)} new violation(s) ({rule_word}):")
        for violation in new:
            print(f"  {violation.format()}")
    if accepted:
        print(f"repro-lint: {len(accepted)} baselined violation(s) (accepted):")
        for violation in accepted:
            justification = baseline.justification_for(violation.fingerprint)
            suffix = f"  [{justification}]" if justification else ""
            print(f"  {violation.format()}{suffix}")
    if stale:
        print(
            f"repro-lint: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer fire(s); "
            "run --update-baseline to expire:"
        )
        for entry in stale:
            print(f"  {entry.path}: {entry.rule} {entry.snippet!r}")
    if not new:
        print(
            f"repro-lint OK: {len(sources)} file(s), {rule_word}, "
            f"{len(accepted)} baselined, 0 new"
        )
        return 0
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
