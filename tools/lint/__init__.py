"""Repo-native static analysis (``repro-lint``).

An AST-visitor rule framework plus repository-specific rules encoding the
contracts this codebase otherwise enforces only by convention: lock
discipline (LCK001), determinism of seeded paths (DET001),
multiprocessing hygiene (MPX001), exception discipline and the serving
error taxonomy (EXC001), config-schema sync (CFG001), thread hygiene
(THR001), and the docs contracts (DOC001, folded in from
``tools/check_docs.py``).

Run with ``python -m tools.lint`` — see :mod:`tools.lint.cli` for flags,
:mod:`tools.lint.baseline` for the only-new-violations CI workflow and
``docs/static_analysis.md`` for the rule catalogue and pragma syntax.
"""

from tools.lint.baseline import Baseline, BaselineEntry, split_by_baseline
from tools.lint.core import ModuleSource, Rule, Violation, collect_sources, run_rules
from tools.lint.rules import ALL_RULES, default_rules, select_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "ModuleSource",
    "Rule",
    "Violation",
    "collect_sources",
    "default_rules",
    "run_rules",
    "select_rules",
    "split_by_baseline",
]
