"""Baseline workflow: CI fails only on *new* violations.

The committed baseline (``tools/lint/baseline.json``) records accepted
pre-existing violations by fingerprint — ``(rule, file, source-line
content)`` — so line-number drift does not invalidate entries but any
edit to a baselined line re-surfaces it.  Entries may carry a
``justification`` string; ``--update-baseline`` preserves justifications
for fingerprints that survive and drops entries whose violation no longer
fires (expiry), so the baseline only ever shrinks on its own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from tools.lint.core import Violation

__all__ = ["Baseline", "BaselineEntry", "split_by_baseline", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    fingerprint: str
    justification: str = ""

    def to_json(self) -> dict[str, str]:
        data = {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
        if self.justification:
            data["justification"] = self.justification
        return data


class Baseline:
    """The set of accepted violations, keyed by fingerprint."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)
        self._by_fingerprint = {entry.fingerprint: entry for entry in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"baseline {path} must be an object with 'entries'")
        entries = [
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                snippet=str(entry.get("snippet", "")),
                fingerprint=str(entry["fingerprint"]),
                justification=str(entry.get("justification", "")),
            )
            for entry in data["entries"]
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                entry.to_json()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.snippet)
                )
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def __contains__(self, violation: Violation) -> bool:
        return violation.fingerprint in self._by_fingerprint

    def justification_for(self, fingerprint: str) -> str:
        entry = self._by_fingerprint.get(fingerprint)
        return entry.justification if entry is not None else ""

    def stale_entries(self, violations: Sequence[Violation]) -> list[BaselineEntry]:
        """Entries whose violation no longer fires (candidates for expiry)."""
        firing = {violation.fingerprint for violation in violations}
        return [
            entry for entry in self.entries if entry.fingerprint not in firing
        ]

    @classmethod
    def from_violations(
        cls,
        violations: Sequence[Violation],
        previous: "Baseline | None" = None,
    ) -> "Baseline":
        """Rebuild the baseline from a run, keeping surviving justifications."""
        entries = []
        for violation in violations:
            justification = (
                previous.justification_for(violation.fingerprint) if previous else ""
            )
            entries.append(
                BaselineEntry(
                    rule=violation.rule,
                    path=violation.path,
                    snippet=violation.snippet,
                    fingerprint=violation.fingerprint,
                    justification=justification,
                )
            )
        return cls(entries)


def split_by_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> tuple[list[Violation], list[Violation]]:
    """``(new, baselined)`` partition of a run's violations."""
    new: list[Violation] = []
    accepted: list[Violation] = []
    for violation in violations:
        (accepted if violation in baseline else new).append(violation)
    return new, accepted
