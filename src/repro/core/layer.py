"""A single fully connected SLIDE layer with optional LSH neuron sampling.

Responsibilities (paper Figure 2):

* own the weight matrix ``W`` (``size x fan_in``) and bias vector;
* own an :class:`~repro.lsh.index.LSHIndex` over the rows of ``W`` when LSH
  sampling is enabled for the layer;
* given a sparse input, choose the **active** output neurons (via the hash
  tables, or all of them when LSH is disabled) and compute only their
  activations;
* during backpropagation, update only the weights connecting active outputs
  to active inputs, and re-hash neurons on the layer's rebuild schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LayerConfig
from repro.core.activations import relu, relu_grad, softmax_rows, sparse_softmax
from repro.lsh.index import LSHIndex
from repro.lsh.scheduler import ExponentialDecaySchedule, RebuildSchedule
from repro.optim.base import Optimizer
from repro.sampling.strategies import SamplingStrategy, make_sampling_strategy
from repro.types import FloatArray, IntArray
from repro.utils.rng import derive_rng

__all__ = ["SlideLayer", "LayerForwardState"]


@dataclass
class LayerForwardState:
    """Per-sample bookkeeping produced by the forward pass of one layer.

    Mirrors the per-neuron arrays in Figure 2 of the paper (activation,
    active flag, accumulated gradient) but stores them sparsely: only the
    active neurons' entries exist.
    """

    active_in: IntArray
    input_values: FloatArray
    active_out: IntArray
    pre_activation: FloatArray
    activation: FloatArray
    # Filled in during backprop: gradient of the loss w.r.t. pre-activation.
    delta: FloatArray | None = None
    # Diagnostics for the cost model.
    sampled_from_tables: int = 0
    fallback_random: int = 0

    @property
    def num_active(self) -> int:
        return int(self.active_out.shape[0])

    @property
    def num_active_weights(self) -> int:
        return int(self.active_out.shape[0] * self.active_in.shape[0])


class SlideLayer:
    """One fully connected layer with adaptive-sparsity support."""

    def __init__(
        self,
        fan_in: int,
        config: LayerConfig,
        seed: int = 0,
        name: str = "layer",
    ) -> None:
        if fan_in <= 0:
            raise ValueError("fan_in must be positive")
        self.fan_in = int(fan_in)
        self.config = config
        self.size = int(config.size)
        self.activation_name = config.activation
        self.name = name
        self._rng = derive_rng(seed, stream=11)

        # He/Glorot-style initialisation scaled by fan-in keeps early logits
        # small enough for the softmax layer of extreme-classification nets.
        scale = np.sqrt(2.0 / self.fan_in)
        self.weights: FloatArray = self._rng.normal(
            scale=scale, size=(self.size, self.fan_in)
        )
        self.biases: FloatArray = np.zeros(self.size, dtype=np.float64)

        # LSH machinery (optional).
        self.lsh_index: LSHIndex | None = None
        self.sampler: SamplingStrategy | None = None
        self.rebuild_schedule: RebuildSchedule | None = None
        if config.uses_lsh:
            assert config.lsh is not None
            self.lsh_index = LSHIndex(input_dim=self.fan_in, config=config.lsh, seed=seed)
            self.sampler = make_sampling_strategy(config.sampling, rng=self._rng)
            self.rebuild_schedule = ExponentialDecaySchedule(
                initial_period=config.rebuild.initial_period,
                decay=config.rebuild.decay,
                max_period=config.rebuild.max_period,
            )
            self.lsh_index.build(self.weights)

        # Neurons whose weights changed since the last rebuild; only these are
        # re-hashed when the rebuild schedule fires.  Tracked as int64 id
        # chunks that are deduplicated lazily with one ``np.unique`` at
        # consolidation time: appending a chunk is O(active) per update (no
        # Python-level per-id set inserts, no per-call re-sort of the whole
        # accumulator), which matters on the per-sample HOGWILD hot path.
        self._dirty_chunks: list[IntArray] = []
        self._dirty_buffered = 0
        # Counters surfaced to the cost model / diagnostics.
        self.num_rebuilds = 0
        self.num_forward_calls = 0
        # Code-diff accounting for the most recent incremental rebuild: how
        # many neurons were dirty vs how many (neuron, table) bucket entries
        # actually moved — the measured O(changed) claim.
        self.last_rebuild_dirty = 0
        self.last_rebuild_moved = 0
        # Rows touched by the most recent gradient application (per-sample or
        # accumulated block).  Purely diagnostic: the process-parallel trainer
        # reads it to stamp each worker's update footprint into the shared
        # gradient-conflict counters.
        self.last_update_rows: IntArray | None = None

    # ------------------------------------------------------------------
    # Optimiser wiring
    # ------------------------------------------------------------------
    def register_parameters(self, optimizer: Optimizer) -> None:
        """Register this layer's weight and bias tensors with ``optimizer``."""
        optimizer.register(f"{self.name}.weights", self.weights.shape)
        optimizer.register(f"{self.name}.biases", self.biases.shape)

    # ------------------------------------------------------------------
    # Active-set selection
    # ------------------------------------------------------------------
    def select_active(
        self,
        input_indices: IntArray,
        input_values: FloatArray,
        forced_active: IntArray | None = None,
    ) -> tuple[IntArray, int, int]:
        """Choose the active output neurons for one sparse input.

        Returns ``(active_ids, sampled_from_tables, fallback_random)``.
        ``forced_active`` (e.g. the ground-truth labels of the sample) is
        always unioned into the result, matching the reference implementation.
        """
        if self.lsh_index is None or self.sampler is None:
            active = np.arange(self.size, dtype=np.int64)
            return active, 0, 0

        dense_query = np.zeros(self.fan_in, dtype=np.float64)
        dense_query[input_indices] = input_values
        target = self.config.sampling.target_active
        sampled = self.sampler.sample(self.lsh_index, dense_query, target)
        return self.finalize_active(sampled, forced_active)

    def finalize_active(
        self,
        sampled: IntArray,
        forced_active: IntArray | None = None,
    ) -> tuple[IntArray, int, int]:
        """Random-fallback padding and forced-id union for a sampled set.

        The tail half of :meth:`select_active`, shared with the batched
        selection kernel (:mod:`repro.kernels.active`) so both paths draw
        identical random padding from the layer's RNG.  The returned array is
        always sorted and unique — downstream ``searchsorted`` label matching
        relies on that.
        """
        from_tables = int(sampled.size)
        fallback = 0
        min_active = self.config.sampling.min_active
        if sampled.size < min_active and min_active > 0:
            # Early in training the tables can be nearly empty for a query;
            # pad with uniformly random neurons so learning never stalls.
            needed = min(min_active - sampled.size, self.size)
            extra = self._rng.choice(self.size, size=needed, replace=False)
            sampled = np.union1d(sampled, extra.astype(np.int64))
            fallback = int(needed)

        if forced_active is not None and forced_active.size:
            sampled = np.union1d(sampled, np.asarray(forced_active, dtype=np.int64))
        sampled = np.asarray(sampled, dtype=np.int64)
        if sampled.size > 1 and np.any(np.diff(sampled) <= 0):
            # Samplers return sorted unique ids; guard against a custom
            # strategy violating that contract rather than silently breaking
            # the sorted-active-set invariant.
            sampled = np.unique(sampled)
        return sampled, from_tables, fallback

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(
        self,
        input_indices: IntArray,
        input_values: FloatArray,
        forced_active: IntArray | None = None,
    ) -> LayerForwardState:
        """Sparse forward pass for one sample.

        Only the activations of the selected active neurons are computed;
        everything else is implicitly zero.
        """
        input_indices = np.asarray(input_indices, dtype=np.int64)
        input_values = np.asarray(input_values, dtype=np.float64)
        active_out, from_tables, fallback = self.select_active(
            input_indices, input_values, forced_active
        )

        if active_out.size and input_indices.size:
            block = self.weights[np.ix_(active_out, input_indices)]
            pre = block @ input_values + self.biases[active_out]
        else:
            pre = self.biases[active_out].copy() if active_out.size else np.zeros(0)

        if self.activation_name == "relu":
            act = relu(pre)
        elif self.activation_name == "softmax":
            act = sparse_softmax(pre)
        elif self.activation_name == "linear":
            act = pre.copy()
        else:  # pragma: no cover - config validation prevents this
            raise ValueError(f"unknown activation {self.activation_name!r}")

        self.num_forward_calls += 1
        return LayerForwardState(
            active_in=input_indices,
            input_values=input_values,
            active_out=active_out,
            pre_activation=pre,
            activation=act,
            sampled_from_tables=from_tables,
            fallback_random=fallback,
        )

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(
        self,
        state: LayerForwardState,
        upstream_delta: FloatArray,
    ) -> FloatArray:
        """Compute gradients for one sample and the delta for the layer below.

        ``upstream_delta`` is dL/d(pre-activation) for the *active* neurons of
        this layer.  The returned array is dL/d(activation of the previous
        layer), restricted to ``state.active_in``.
        """
        upstream_delta = np.asarray(upstream_delta, dtype=np.float64)
        if upstream_delta.shape[0] != state.active_out.shape[0]:
            raise ValueError("delta must align with the active output neurons")
        state.delta = upstream_delta
        if state.active_out.size == 0 or state.active_in.size == 0:
            return np.zeros(state.active_in.shape[0], dtype=np.float64)
        block = self.weights[np.ix_(state.active_out, state.active_in)]
        return block.T @ upstream_delta

    def gradient_blocks(
        self, state: LayerForwardState
    ) -> tuple[FloatArray, FloatArray]:
        """Weight-block and bias-block gradients implied by ``state.delta``.

        The weight gradient is the outer product of the active-neuron delta
        with the active-input values — exactly the ``s^2`` fraction of weights
        the paper says get updated.
        """
        if state.delta is None:
            raise ValueError("backward() must run before gradient_blocks()")
        weight_grad = np.outer(state.delta, state.input_values)
        bias_grad = state.delta.copy()
        return weight_grad, bias_grad

    def apply_gradients(
        self,
        optimizer: Optimizer,
        state: LayerForwardState,
        weight_grad: FloatArray,
        bias_grad: FloatArray,
    ) -> None:
        """Apply sparse gradient blocks through ``optimizer`` and mark dirty."""
        optimizer.sparse_step(
            f"{self.name}.weights",
            self.weights,
            state.active_out,
            state.active_in,
            weight_grad,
        )
        optimizer.sparse_step(
            f"{self.name}.biases",
            self.biases,
            state.active_out,
            None,
            bias_grad,
        )
        self.last_update_rows = state.active_out
        self.mark_dirty(state.active_out)

    def apply_gradient_block(
        self,
        optimizer: Optimizer,
        rows: IntArray,
        cols: IntArray | None,
        weight_grad: FloatArray,
        bias_grad: FloatArray,
    ) -> None:
        """Apply one accumulated ``(rows, cols)`` gradient block.

        The micro-batch counterpart of :meth:`apply_gradients`: the batched
        training path accumulates the whole batch's gradient into a single
        block per layer and applies it with one optimiser step instead of one
        per sample.
        """
        optimizer.sparse_step(
            f"{self.name}.weights", self.weights, rows, cols, weight_grad
        )
        optimizer.sparse_step(f"{self.name}.biases", self.biases, rows, None, bias_grad)
        self.last_update_rows = rows
        self.mark_dirty(rows)

    def mark_dirty(self, neuron_ids: IntArray) -> None:
        """Accumulate neurons awaiting a re-hash (no-op without LSH)."""
        if self.lsh_index is None:
            return
        neuron_ids = np.asarray(neuron_ids, dtype=np.int64)
        if neuron_ids.size == 0:
            return
        self._dirty_chunks.append(neuron_ids)
        self._dirty_buffered += int(neuron_ids.size)
        # Cap buffered duplicates: once the raw chunks hold several layers'
        # worth of ids, fold them into one sorted unique array (amortised —
        # consolidation cost is spread over the appends that triggered it).
        if self._dirty_buffered > max(4 * self.size, 8192):
            self._consolidate_dirty()

    def _consolidate_dirty(self) -> IntArray:
        """Fold the buffered id chunks into one sorted unique array."""
        if not self._dirty_chunks:
            return np.zeros(0, dtype=np.int64)
        if len(self._dirty_chunks) == 1:
            chunk = self._dirty_chunks[0]
            if chunk.size > 1 and np.any(np.diff(chunk) <= 0):
                chunk = np.unique(chunk)
        else:
            chunk = np.unique(np.concatenate(self._dirty_chunks))
        self._dirty_chunks = [chunk]
        self._dirty_buffered = int(chunk.size)
        return chunk

    def _clear_dirty(self) -> None:
        self._dirty_chunks = []
        self._dirty_buffered = 0

    # ------------------------------------------------------------------
    # Hash-table maintenance
    # ------------------------------------------------------------------
    def maybe_rebuild(self, iteration: int) -> bool:
        """Re-hash dirty neurons if the rebuild schedule says it is time."""
        if self.lsh_index is None or self.rebuild_schedule is None:
            return False
        if not self.rebuild_schedule.should_rebuild(iteration):
            return False
        self.rebuild(iteration)
        return True

    def rebuild(self, iteration: int | None = None) -> None:
        """Re-hash all neurons whose weights changed since the last rebuild.

        Delegates to the index's code-diff ``update``: dirty neurons whose
        fingerprints did not actually change stay in place, so the cost is
        O(changed bucket entries) rather than O(dirty neurons × L).
        """
        if self.lsh_index is None:
            return
        dirty = self._consolidate_dirty()
        if dirty.size:
            self._clear_dirty()
            moved_before = self.lsh_index.num_moved_entries
            self.lsh_index.update(dirty, self.weights[dirty])
            self.last_rebuild_dirty = int(dirty.size)
            self.last_rebuild_moved = int(
                self.lsh_index.num_moved_entries - moved_before
            )
        if self.rebuild_schedule is not None and iteration is not None:
            self.rebuild_schedule.record_rebuild(iteration)
        self.num_rebuilds += 1

    @property
    def dirty_neuron_count(self) -> int:
        """Number of distinct neurons awaiting a re-hash."""
        return int(self._consolidate_dirty().size)

    # ------------------------------------------------------------------
    # Dense helpers (used by inference and the parity tests)
    # ------------------------------------------------------------------
    def dense_forward(self, dense_input: FloatArray) -> FloatArray:
        """Full (non-sampled) forward pass for a dense input vector."""
        pre = self.weights @ dense_input + self.biases
        if self.activation_name == "relu":
            return relu(pre)
        if self.activation_name == "softmax":
            return sparse_softmax(pre)
        return pre

    def dense_forward_batch(self, dense_inputs: FloatArray) -> FloatArray:
        """Full forward pass for a ``(batch, fan_in)`` matrix of inputs.

        One matrix multiply replaces the per-example loop of
        :meth:`dense_forward`; activations are applied row-wise.
        """
        dense_inputs = np.asarray(dense_inputs, dtype=np.float64)
        if dense_inputs.ndim != 2 or dense_inputs.shape[1] != self.fan_in:
            raise ValueError(
                f"expected inputs of shape (batch, {self.fan_in}), "
                f"got {dense_inputs.shape}"
            )
        pre = dense_inputs @ self.weights.T + self.biases
        if self.activation_name == "relu":
            return relu(pre)
        if self.activation_name == "softmax":
            return softmax_rows(pre)
        return pre

    def relu_backward_mask(self, state: LayerForwardState) -> FloatArray:
        """ReLU derivative evaluated at this state's pre-activations."""
        return relu_grad(state.pre_activation)
