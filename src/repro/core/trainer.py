"""Training driver for SLIDE networks.

The trainer owns the epoch/batch loop, the optimiser, periodic evaluation and
— crucially for the benchmark harness — per-iteration records of the *work*
performed (active neurons, active weights, hash-table operations), which the
performance model in :mod:`repro.perf` converts into simulated wall-clock
times for the paper's time-vs-accuracy figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from repro.config import FaultToleranceConfig, TrainingConfig
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.types import SparseBatch, SparseExample
from repro.utils.rng import derive_rng

__all__ = [
    "IterationRecord",
    "TrainingHistory",
    "SlideTrainer",
    "capture_network_runtime_state",
    "restore_network_runtime_state",
]

# Any random-access example source works for training: a plain list, or the
# mmap-backed ``repro.data.ShardedDataset`` (same ``len``/``__getitem__``
# contract, so the global shuffle — and therefore every batch and loss —
# is bit-for-bit identical across the two).
ExampleSource = Sequence[SparseExample]


@dataclass
class IterationRecord:
    """Work and quality metrics for one training iteration (mini-batch)."""

    iteration: int
    loss: float
    batch_size: int
    active_neurons: int
    active_weights: int
    wall_time_s: float
    accuracy: float | None = None


@dataclass
class TrainingHistory:
    """Accumulated per-iteration records plus end-of-epoch evaluations."""

    records: list[IterationRecord] = field(default_factory=list)
    epoch_accuracy: list[float] = field(default_factory=list)

    def iterations(self) -> np.ndarray:
        return np.array([r.iteration for r in self.records], dtype=np.int64)

    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records], dtype=np.float64)

    def accuracies(self) -> list[tuple[int, float]]:
        """(iteration, accuracy) pairs for iterations that were evaluated."""
        return [(r.iteration, r.accuracy) for r in self.records if r.accuracy is not None]

    def total_active_neurons(self) -> int:
        return int(sum(r.active_neurons for r in self.records))

    def total_active_weights(self) -> int:
        return int(sum(r.active_weights for r in self.records))

    def total_wall_time(self) -> float:
        return float(sum(r.wall_time_s for r in self.records))

    def final_accuracy(self) -> float | None:
        evaluated = self.accuracies()
        if evaluated:
            return evaluated[-1][1]
        if self.epoch_accuracy:
            return self.epoch_accuracy[-1]
        return None


def capture_network_runtime_state(network: SlideNetwork) -> dict[str, Any]:
    """JSON-safe mutable runtime state of a network's layers.

    The checkpoint arrays carry weights, biases, optimiser moments and LSH
    codes — everything *positional*.  Bitwise resume additionally needs the
    *procedural* state that decides what the next batch does: each layer's
    private RNG (active-set padding, sampling tie-breaks) and its rebuild
    schedule position.  Both are tiny, so they ride in the checkpoint
    metadata rather than the array payload.
    """
    layers = []
    for layer in network.layers:
        entry: dict[str, Any] = {
            "rng_state": layer._rng.bit_generator.state,
            "num_rebuilds": int(layer.num_rebuilds),
        }
        if layer.rebuild_schedule is not None:
            entry["schedule"] = layer.rebuild_schedule.state_dict()
        layers.append(entry)
    return {"layers": layers}


def restore_network_runtime_state(
    network: SlideNetwork, state: dict[str, Any]
) -> None:
    """Restore state captured by :func:`capture_network_runtime_state`."""
    layers = state.get("layers", [])
    if len(layers) != len(network.layers):
        raise ValueError(
            f"runtime state covers {len(layers)} layers; "
            f"network has {len(network.layers)}"
        )
    for layer, entry in zip(network.layers, layers):
        layer._rng.bit_generator.state = entry["rng_state"]
        layer.num_rebuilds = int(entry["num_rebuilds"])
        schedule = entry.get("schedule")
        if schedule is not None and layer.rebuild_schedule is not None:
            layer.rebuild_schedule.load_state_dict(schedule)


class SlideTrainer:
    """Runs the SLIDE training loop over a list of sparse examples.

    ``hogwild=True`` (default) trains with per-sample asynchronous updates —
    the paper's execution model.  ``hogwild=False`` trains synchronously
    through the fused batched kernels (:mod:`repro.kernels`); pass
    ``batched=False`` to use the legacy per-sample synchronous loop instead
    (ablations / parity testing only).

    ``train_examples`` may be any random-access sequence — an eager list or
    a :class:`repro.data.ShardedDataset` — and ``prefetch_depth > 0`` moves
    batch assembly onto a background :class:`repro.data.BatchPrefetcher`
    thread.  Neither choice changes the training trajectory: the same
    ``TrainingConfig.seed`` produces the same batches and losses bit-for-bit.

    ``num_processes > 1`` hands the whole run to
    :class:`repro.parallel.sharedmem.ProcessHogwildTrainer`: weights,
    biases and optimiser moments move into shared memory and ``N`` worker
    processes train lock-free on disjoint data slices (process-level
    HOGWILD — the paper's scalability claim, for real).  In that mode the
    ``hogwild``/``batched``/``prefetch_depth`` knobs and periodic
    ``eval_every`` evaluation do not apply (workers run the fused batched
    step on their own batches), the run is not bit-reproducible (HOGWILD
    races), and the detailed report lands in :attr:`last_process_report`.
    ``num_processes=1`` never changes behaviour.
    """

    def __init__(
        self,
        network: SlideNetwork,
        training: TrainingConfig,
        hogwild: bool = True,
        batched: bool | None = None,
        prefetch_depth: int = 0,
        num_processes: int = 1,
        checkpoint_dir: str | Path | None = None,
        fault_tolerance: FaultToleranceConfig | None = None,
    ) -> None:
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        if num_processes < 1:
            raise ValueError("num_processes must be positive")
        self.network = network
        self.training = training
        self.hogwild = hogwild
        self.batched = batched
        self.prefetch_depth = int(prefetch_depth)
        self.num_processes = int(num_processes)
        self.optimizer = network.build_optimizer(training)
        self._rng = derive_rng(training.seed, stream=31)
        self.history = TrainingHistory()
        # Filled by multi-process runs: the ProcessTrainingReport with
        # per-worker stats and measured gradient-conflict counters.
        self.last_process_report = None
        # Mid-run checkpointing: when checkpoint_dir is set, resumable
        # versions land in a CheckpointStore there — every
        # fault_tolerance.checkpoint_every_batches batches plus at every
        # epoch boundary.  ``train(resume=...)`` picks a run back up.
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.fault_tolerance = fault_tolerance or FaultToleranceConfig()
        self._checkpoint_store = None
        self._last_saved_iteration = -1

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _iter_batches(
        self, examples: ExampleSource, skip_batches: int = 0
    ) -> Iterator[SparseBatch]:
        """One epoch of shuffled batches, assembled lazily.

        Only ``len(examples)`` and per-index access are required, so a
        mmap-backed dataset streams through without ever materialising the
        full example list.  ``skip_batches`` drops the first N batches of
        the epoch *after* the shuffle (the resume fast-forward: the RNG
        consumes exactly what it would have, but no assembly or training
        happens for batches a previous incarnation already applied).
        """
        order = np.arange(len(examples))
        if self.training.shuffle:
            self._rng.shuffle(order)
        gather = getattr(examples, "gather", None)
        start_offset = int(skip_batches) * self.training.batch_size
        for start in range(start_offset, len(examples), self.training.batch_size):
            chunk_ids = order[start : start + self.training.batch_size]
            if chunk_ids.size == 0:
                continue
            chunk = (
                gather(chunk_ids)
                if gather is not None
                else [examples[int(i)] for i in chunk_ids]
            )
            yield SparseBatch.from_examples(
                chunk,
                feature_dim=self.network.input_dim,
                label_dim=self.network.output_dim,
            )

    def _epoch_batches(self, examples: ExampleSource, skip_batches: int = 0):
        """The epoch's batch stream, prefetched when configured."""
        batches = self._iter_batches(examples, skip_batches=skip_batches)
        if self.prefetch_depth > 0:
            from repro.data.prefetch import BatchPrefetcher

            return BatchPrefetcher(batches, depth=self.prefetch_depth)
        return batches

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        train_examples: ExampleSource,
        eval_examples: ExampleSource | None = None,
        resume: str | Path | None = None,
    ) -> TrainingHistory:
        """Run ``training.epochs`` epochs and return the full history.

        ``resume`` continues a killed run from a checkpoint written by a
        trainer with ``checkpoint_dir`` set: pass either a specific
        checkpoint directory or a store root (the newest *intact* version
        is used, so a torn final write falls back to the previous one).
        The restored run replays the interrupted epoch's shuffle from the
        captured RNG state, fast-forwards past the batches already applied,
        and then produces the same batches, losses and rebuilds the
        uninterrupted run would have — pinned by the fault-tolerance tests.
        """
        if len(train_examples) == 0:
            raise ValueError("train_examples must not be empty")
        if self.num_processes > 1:
            return self._train_multiprocess(train_examples, eval_examples, resume)
        start_epoch, skip_batches = 0, 0
        if resume is not None:
            start_epoch, skip_batches = self._restore(resume)
        eval_pool = eval_examples if eval_examples is not None else []
        for epoch in range(start_epoch, self.training.epochs):
            # Captured *before* the shuffle draws from the stream, so a
            # checkpoint taken anywhere inside this epoch can regenerate
            # the epoch's exact batch order.
            self._epoch_rng_state = self._rng.bit_generator.state
            self._epoch = epoch
            self._epoch_batches_done = skip_batches
            batches = self._epoch_batches(train_examples, skip_batches=skip_batches)
            skip_batches = 0
            try:
                for batch in batches:
                    self._train_one_batch(batch, eval_pool)
                    self._epoch_batches_done += 1
                    self._maybe_checkpoint()
            finally:
                # Generator or BatchPrefetcher alike: stop assembly promptly
                # if an exception aborts the epoch mid-stream.
                batches.close()
            if len(eval_pool):
                self.history.epoch_accuracy.append(
                    evaluate_precision_at_1(self.network, eval_pool)
                )
            self._checkpoint_epoch_end(epoch)
        return self.history

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def _store(self):
        if self._checkpoint_store is None and self.checkpoint_dir is not None:
            from repro.serving.checkpoint import CheckpointStore

            self._checkpoint_store = CheckpointStore(self.checkpoint_dir)
        return self._checkpoint_store

    def _train_state(self, epoch: int, batches_done: int, rng_state) -> dict:
        return {
            "mode": "inline",
            "epoch": int(epoch),
            "batches_done": int(batches_done),
            "rng_state": rng_state,
            "seed": int(self.training.seed),
            "epochs": int(self.training.epochs),
            "batch_size": int(self.training.batch_size),
            "runtime": capture_network_runtime_state(self.network),
        }

    def _save_checkpoint(self, epoch: int, batches_done: int, rng_state) -> None:
        store = self._store()
        if store is None or self.network.iteration == self._last_saved_iteration:
            return
        # save_checkpoint canonicalises dirty layers itself, but that would
        # happen *after* the metadata below captured num_rebuilds; rebuild
        # first so the runtime state and the arrays describe the same model.
        for layer in self.network.layers:
            if layer.lsh_index is not None and layer.dirty_neuron_count:
                layer.rebuild()
        store.save(
            self.network,
            self.optimizer,
            metadata={
                "train_state": self._train_state(epoch, batches_done, rng_state)
            },
            keep_last=self.fault_tolerance.checkpoint_keep_last,
        )
        self._last_saved_iteration = self.network.iteration

    def _maybe_checkpoint(self) -> None:
        cadence = self.fault_tolerance.checkpoint_every_batches
        if cadence <= 0 or self.checkpoint_dir is None:
            return
        if self.network.iteration % cadence == 0:
            self._save_checkpoint(
                self._epoch, self._epoch_batches_done, self._epoch_rng_state
            )

    def _checkpoint_epoch_end(self, epoch: int) -> None:
        if self.checkpoint_dir is None:
            return
        # The epoch is complete: the resume point is the *next* epoch's
        # start, and the current RNG state is exactly that start state.
        self._save_checkpoint(epoch + 1, 0, self._rng.bit_generator.state)

    def _restore(self, resume: str | Path) -> tuple[int, int]:
        """Restore network/optimiser/RNG state; return (epoch, skip)."""
        from repro.serving.checkpoint import (
            CheckpointError,
            CheckpointStore,
            restore_checkpoint_into,
        )

        path = Path(resume)
        if not (path / "manifest.json").is_file():
            path = CheckpointStore(path).latest_valid()
        metadata = restore_checkpoint_into(path, self.network, self.optimizer)
        state = metadata.get("train_state")
        if not isinstance(state, dict) or state.get("mode") != "inline":
            raise CheckpointError(
                f"checkpoint {path} carries no inline training state; "
                "it cannot seed an inline resume"
            )
        if int(state["seed"]) != int(self.training.seed):
            raise CheckpointError(
                f"checkpoint {path} was trained with seed {state['seed']}; "
                f"this trainer uses seed {self.training.seed}"
            )
        self._rng.bit_generator.state = state["rng_state"]
        restore_network_runtime_state(self.network, state["runtime"])
        self._last_saved_iteration = self.network.iteration
        return int(state["epoch"]), int(state["batches_done"])

    def _train_multiprocess(
        self,
        train_examples: ExampleSource,
        eval_examples: ExampleSource | None,
        resume: str | Path | None = None,
    ) -> TrainingHistory:
        """Delegate the run to the shared-memory process trainer.

        Imported lazily: :mod:`repro.parallel.sharedmem` imports this module
        for its single-process fallback, so a module-level import would be
        circular.
        """
        from repro.parallel.sharedmem import ProcessHogwildTrainer

        process_trainer = ProcessHogwildTrainer(
            self.network,
            self.training,
            num_processes=self.num_processes,
            fault_tolerance=self.fault_tolerance,
            checkpoint_dir=self.checkpoint_dir,
        )
        report = process_trainer.train(train_examples, eval_examples, resume=resume)
        self.last_process_report = report
        # The workers trained through shared optimiser state built by the
        # process trainer; adopt it so checkpointing sees the real moments.
        if process_trainer.optimizer is not None:
            self.optimizer = process_trainer.optimizer
        self.history = report.history
        return self.history

    def train_batches(
        self,
        batches,
        eval_examples: ExampleSource | None = None,
    ) -> TrainingHistory:
        """Train on an externally produced batch stream (one pass).

        The streaming counterpart of :meth:`train`: accepts any iterable of
        :class:`~repro.types.SparseBatch` — e.g.
        ``ShardedDataset.iter_batches`` wrapped in a ``BatchPrefetcher`` —
        and leaves epoch/shuffle discipline to the producer.
        """
        eval_pool = eval_examples if eval_examples is not None else []
        for batch in batches:
            self._train_one_batch(batch, eval_pool)
        if len(eval_pool):
            self.history.epoch_accuracy.append(
                evaluate_precision_at_1(self.network, eval_pool)
            )
        return self.history

    def _train_one_batch(
        self, batch: SparseBatch, eval_pool: ExampleSource
    ) -> IterationRecord:
        start = time.perf_counter()
        metrics = self.network.train_batch(
            batch, self.optimizer, hogwild=self.hogwild, batched=self.batched
        )
        elapsed = time.perf_counter() - start

        accuracy = None
        if (
            self.training.eval_every
            and eval_pool
            and self.network.iteration % self.training.eval_every == 0
        ):
            subset = eval_pool[: self.training.eval_samples]
            accuracy = evaluate_precision_at_1(self.network, subset)

        record = IterationRecord(
            iteration=self.network.iteration,
            loss=metrics["loss"],
            batch_size=int(metrics["batch_size"]),
            active_neurons=int(metrics["active_neurons"]),
            active_weights=int(metrics["active_weights"]),
            wall_time_s=elapsed,
            accuracy=accuracy,
        )
        self.history.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def evaluate(self, examples: ExampleSource) -> float:
        """Precision@1 of the current model on ``examples``."""
        return evaluate_precision_at_1(self.network, examples)
