"""Training driver for SLIDE networks.

The trainer owns the epoch/batch loop, the optimiser, periodic evaluation and
— crucially for the benchmark harness — per-iteration records of the *work*
performed (active neurons, active weights, hash-table operations), which the
performance model in :mod:`repro.perf` converts into simulated wall-clock
times for the paper's time-vs-accuracy figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import TrainingConfig
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.types import SparseBatch, SparseExample
from repro.utils.rng import derive_rng

__all__ = ["IterationRecord", "TrainingHistory", "SlideTrainer"]


@dataclass
class IterationRecord:
    """Work and quality metrics for one training iteration (mini-batch)."""

    iteration: int
    loss: float
    batch_size: int
    active_neurons: int
    active_weights: int
    wall_time_s: float
    accuracy: float | None = None


@dataclass
class TrainingHistory:
    """Accumulated per-iteration records plus end-of-epoch evaluations."""

    records: list[IterationRecord] = field(default_factory=list)
    epoch_accuracy: list[float] = field(default_factory=list)

    def iterations(self) -> np.ndarray:
        return np.array([r.iteration for r in self.records], dtype=np.int64)

    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records], dtype=np.float64)

    def accuracies(self) -> list[tuple[int, float]]:
        """(iteration, accuracy) pairs for iterations that were evaluated."""
        return [(r.iteration, r.accuracy) for r in self.records if r.accuracy is not None]

    def total_active_neurons(self) -> int:
        return int(sum(r.active_neurons for r in self.records))

    def total_active_weights(self) -> int:
        return int(sum(r.active_weights for r in self.records))

    def total_wall_time(self) -> float:
        return float(sum(r.wall_time_s for r in self.records))

    def final_accuracy(self) -> float | None:
        evaluated = self.accuracies()
        if evaluated:
            return evaluated[-1][1]
        if self.epoch_accuracy:
            return self.epoch_accuracy[-1]
        return None


class SlideTrainer:
    """Runs the SLIDE training loop over a list of sparse examples.

    ``hogwild=True`` (default) trains with per-sample asynchronous updates —
    the paper's execution model.  ``hogwild=False`` trains synchronously
    through the fused batched kernels (:mod:`repro.kernels`); pass
    ``batched=False`` to use the legacy per-sample synchronous loop instead
    (ablations / parity testing only).
    """

    def __init__(
        self,
        network: SlideNetwork,
        training: TrainingConfig,
        hogwild: bool = True,
        batched: bool | None = None,
    ) -> None:
        self.network = network
        self.training = training
        self.hogwild = hogwild
        self.batched = batched
        self.optimizer = network.build_optimizer(training)
        self._rng = derive_rng(training.seed, stream=31)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _make_batches(self, examples: list[SparseExample]) -> list[SparseBatch]:
        order = np.arange(len(examples))
        if self.training.shuffle:
            self._rng.shuffle(order)
        batches = []
        for start in range(0, len(examples), self.training.batch_size):
            chunk = [examples[i] for i in order[start : start + self.training.batch_size]]
            if not chunk:
                continue
            batches.append(
                SparseBatch.from_examples(
                    chunk,
                    feature_dim=self.network.input_dim,
                    label_dim=self.network.output_dim,
                )
            )
        return batches

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        train_examples: list[SparseExample],
        eval_examples: list[SparseExample] | None = None,
    ) -> TrainingHistory:
        """Run ``training.epochs`` epochs and return the full history."""
        if not train_examples:
            raise ValueError("train_examples must not be empty")
        eval_pool = eval_examples or []
        for _epoch in range(self.training.epochs):
            for batch in self._make_batches(train_examples):
                self._train_one_batch(batch, eval_pool)
            if eval_pool:
                self.history.epoch_accuracy.append(
                    evaluate_precision_at_1(self.network, eval_pool)
                )
        return self.history

    def _train_one_batch(
        self, batch: SparseBatch, eval_pool: list[SparseExample]
    ) -> IterationRecord:
        start = time.perf_counter()
        metrics = self.network.train_batch(
            batch, self.optimizer, hogwild=self.hogwild, batched=self.batched
        )
        elapsed = time.perf_counter() - start

        accuracy = None
        if (
            self.training.eval_every
            and eval_pool
            and self.network.iteration % self.training.eval_every == 0
        ):
            subset = eval_pool[: self.training.eval_samples]
            accuracy = evaluate_precision_at_1(self.network, subset)

        record = IterationRecord(
            iteration=self.network.iteration,
            loss=metrics["loss"],
            batch_size=int(metrics["batch_size"]),
            active_neurons=int(metrics["active_neurons"]),
            active_weights=int(metrics["active_weights"]),
            wall_time_s=elapsed,
            accuracy=accuracy,
        )
        self.history.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def evaluate(self, examples: list[SparseExample]) -> float:
        """Precision@1 of the current model on ``examples``."""
        return evaluate_precision_at_1(self.network, examples)
