"""Training driver for SLIDE networks.

The trainer owns the epoch/batch loop, the optimiser, periodic evaluation and
— crucially for the benchmark harness — per-iteration records of the *work*
performed (active neurons, active weights, hash-table operations), which the
performance model in :mod:`repro.perf` converts into simulated wall-clock
times for the paper's time-vs-accuracy figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.config import TrainingConfig
from repro.core.inference import evaluate_precision_at_1
from repro.core.network import SlideNetwork
from repro.types import SparseBatch, SparseExample
from repro.utils.rng import derive_rng

__all__ = ["IterationRecord", "TrainingHistory", "SlideTrainer"]

# Any random-access example source works for training: a plain list, or the
# mmap-backed ``repro.data.ShardedDataset`` (same ``len``/``__getitem__``
# contract, so the global shuffle — and therefore every batch and loss —
# is bit-for-bit identical across the two).
ExampleSource = Sequence[SparseExample]


@dataclass
class IterationRecord:
    """Work and quality metrics for one training iteration (mini-batch)."""

    iteration: int
    loss: float
    batch_size: int
    active_neurons: int
    active_weights: int
    wall_time_s: float
    accuracy: float | None = None


@dataclass
class TrainingHistory:
    """Accumulated per-iteration records plus end-of-epoch evaluations."""

    records: list[IterationRecord] = field(default_factory=list)
    epoch_accuracy: list[float] = field(default_factory=list)

    def iterations(self) -> np.ndarray:
        return np.array([r.iteration for r in self.records], dtype=np.int64)

    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records], dtype=np.float64)

    def accuracies(self) -> list[tuple[int, float]]:
        """(iteration, accuracy) pairs for iterations that were evaluated."""
        return [(r.iteration, r.accuracy) for r in self.records if r.accuracy is not None]

    def total_active_neurons(self) -> int:
        return int(sum(r.active_neurons for r in self.records))

    def total_active_weights(self) -> int:
        return int(sum(r.active_weights for r in self.records))

    def total_wall_time(self) -> float:
        return float(sum(r.wall_time_s for r in self.records))

    def final_accuracy(self) -> float | None:
        evaluated = self.accuracies()
        if evaluated:
            return evaluated[-1][1]
        if self.epoch_accuracy:
            return self.epoch_accuracy[-1]
        return None


class SlideTrainer:
    """Runs the SLIDE training loop over a list of sparse examples.

    ``hogwild=True`` (default) trains with per-sample asynchronous updates —
    the paper's execution model.  ``hogwild=False`` trains synchronously
    through the fused batched kernels (:mod:`repro.kernels`); pass
    ``batched=False`` to use the legacy per-sample synchronous loop instead
    (ablations / parity testing only).

    ``train_examples`` may be any random-access sequence — an eager list or
    a :class:`repro.data.ShardedDataset` — and ``prefetch_depth > 0`` moves
    batch assembly onto a background :class:`repro.data.BatchPrefetcher`
    thread.  Neither choice changes the training trajectory: the same
    ``TrainingConfig.seed`` produces the same batches and losses bit-for-bit.

    ``num_processes > 1`` hands the whole run to
    :class:`repro.parallel.sharedmem.ProcessHogwildTrainer`: weights,
    biases and optimiser moments move into shared memory and ``N`` worker
    processes train lock-free on disjoint data slices (process-level
    HOGWILD — the paper's scalability claim, for real).  In that mode the
    ``hogwild``/``batched``/``prefetch_depth`` knobs and periodic
    ``eval_every`` evaluation do not apply (workers run the fused batched
    step on their own batches), the run is not bit-reproducible (HOGWILD
    races), and the detailed report lands in :attr:`last_process_report`.
    ``num_processes=1`` never changes behaviour.
    """

    def __init__(
        self,
        network: SlideNetwork,
        training: TrainingConfig,
        hogwild: bool = True,
        batched: bool | None = None,
        prefetch_depth: int = 0,
        num_processes: int = 1,
    ) -> None:
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        if num_processes < 1:
            raise ValueError("num_processes must be positive")
        self.network = network
        self.training = training
        self.hogwild = hogwild
        self.batched = batched
        self.prefetch_depth = int(prefetch_depth)
        self.num_processes = int(num_processes)
        self.optimizer = network.build_optimizer(training)
        self._rng = derive_rng(training.seed, stream=31)
        self.history = TrainingHistory()
        # Filled by multi-process runs: the ProcessTrainingReport with
        # per-worker stats and measured gradient-conflict counters.
        self.last_process_report = None

    # ------------------------------------------------------------------
    # Batching
    # ------------------------------------------------------------------
    def _iter_batches(self, examples: ExampleSource) -> Iterator[SparseBatch]:
        """One epoch of shuffled batches, assembled lazily.

        Only ``len(examples)`` and per-index access are required, so a
        mmap-backed dataset streams through without ever materialising the
        full example list.
        """
        order = np.arange(len(examples))
        if self.training.shuffle:
            self._rng.shuffle(order)
        gather = getattr(examples, "gather", None)
        for start in range(0, len(examples), self.training.batch_size):
            chunk_ids = order[start : start + self.training.batch_size]
            if chunk_ids.size == 0:
                continue
            chunk = (
                gather(chunk_ids)
                if gather is not None
                else [examples[int(i)] for i in chunk_ids]
            )
            yield SparseBatch.from_examples(
                chunk,
                feature_dim=self.network.input_dim,
                label_dim=self.network.output_dim,
            )

    def _epoch_batches(self, examples: ExampleSource):
        """The epoch's batch stream, prefetched when configured."""
        batches = self._iter_batches(examples)
        if self.prefetch_depth > 0:
            from repro.data.prefetch import BatchPrefetcher

            return BatchPrefetcher(batches, depth=self.prefetch_depth)
        return batches

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        train_examples: ExampleSource,
        eval_examples: ExampleSource | None = None,
    ) -> TrainingHistory:
        """Run ``training.epochs`` epochs and return the full history."""
        if len(train_examples) == 0:
            raise ValueError("train_examples must not be empty")
        if self.num_processes > 1:
            return self._train_multiprocess(train_examples, eval_examples)
        eval_pool = eval_examples if eval_examples is not None else []
        for _epoch in range(self.training.epochs):
            batches = self._epoch_batches(train_examples)
            try:
                for batch in batches:
                    self._train_one_batch(batch, eval_pool)
            finally:
                # Generator or BatchPrefetcher alike: stop assembly promptly
                # if an exception aborts the epoch mid-stream.
                batches.close()
            if len(eval_pool):
                self.history.epoch_accuracy.append(
                    evaluate_precision_at_1(self.network, eval_pool)
                )
        return self.history

    def _train_multiprocess(
        self,
        train_examples: ExampleSource,
        eval_examples: ExampleSource | None,
    ) -> TrainingHistory:
        """Delegate the run to the shared-memory process trainer.

        Imported lazily: :mod:`repro.parallel.sharedmem` imports this module
        for its single-process fallback, so a module-level import would be
        circular.
        """
        from repro.parallel.sharedmem import ProcessHogwildTrainer

        process_trainer = ProcessHogwildTrainer(
            self.network, self.training, num_processes=self.num_processes
        )
        report = process_trainer.train(train_examples, eval_examples)
        self.last_process_report = report
        # The workers trained through shared optimiser state built by the
        # process trainer; adopt it so checkpointing sees the real moments.
        if process_trainer.optimizer is not None:
            self.optimizer = process_trainer.optimizer
        self.history = report.history
        return self.history

    def train_batches(
        self,
        batches,
        eval_examples: ExampleSource | None = None,
    ) -> TrainingHistory:
        """Train on an externally produced batch stream (one pass).

        The streaming counterpart of :meth:`train`: accepts any iterable of
        :class:`~repro.types.SparseBatch` — e.g.
        ``ShardedDataset.iter_batches`` wrapped in a ``BatchPrefetcher`` —
        and leaves epoch/shuffle discipline to the producer.
        """
        eval_pool = eval_examples if eval_examples is not None else []
        for batch in batches:
            self._train_one_batch(batch, eval_pool)
        if len(eval_pool):
            self.history.epoch_accuracy.append(
                evaluate_precision_at_1(self.network, eval_pool)
            )
        return self.history

    def _train_one_batch(
        self, batch: SparseBatch, eval_pool: ExampleSource
    ) -> IterationRecord:
        start = time.perf_counter()
        metrics = self.network.train_batch(
            batch, self.optimizer, hogwild=self.hogwild, batched=self.batched
        )
        elapsed = time.perf_counter() - start

        accuracy = None
        if (
            self.training.eval_every
            and eval_pool
            and self.network.iteration % self.training.eval_every == 0
        ):
            subset = eval_pool[: self.training.eval_samples]
            accuracy = evaluate_precision_at_1(self.network, subset)

        record = IterationRecord(
            iteration=self.network.iteration,
            loss=metrics["loss"],
            batch_size=int(metrics["batch_size"]),
            active_neurons=int(metrics["active_neurons"]),
            active_weights=int(metrics["active_weights"]),
            wall_time_s=elapsed,
            accuracy=accuracy,
        )
        self.history.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def evaluate(self, examples: ExampleSource) -> float:
        """Precision@1 of the current model on ``examples``."""
        return evaluate_precision_at_1(self.network, examples)
