"""The SLIDE network: a stack of :class:`~repro.core.layer.SlideLayer`.

Implements Algorithm 1 of the paper: per-sample sparse forward pass through
every layer, sparse softmax over the sampled output neurons, message-passing
backpropagation touching only active neurons and weights, and asynchronous
(HOGWILD-style) gradient application across the samples of a batch.

Synchronous training additionally has a *batched* execution mode backed by
:mod:`repro.kernels`: per-sample LSH hashing, gathers, GEMVs and optimiser
steps are fused into whole-micro-batch operations over the union active set.
It is the default for ``train_batch(hogwild=False)``; the HOGWILD per-sample
path is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SlideNetworkConfig, TrainingConfig
from repro.core.activations import hidden_activation_grad
from repro.core.layer import LayerForwardState, SlideLayer
from repro.kernels.fused import Workspace, fused_train_step
from repro.optim.base import Optimizer
from repro.optim.factory import make_optimizer
from repro.types import FloatArray, IntArray, SparseBatch, SparseExample, dense_features
from repro.utils.rng import derive_rng

__all__ = ["SlideNetwork", "ForwardResult", "SampleGradient"]


@dataclass
class ForwardResult:
    """Forward-pass record for one sample: per-layer states plus the output."""

    layer_states: list[LayerForwardState]

    @property
    def output_state(self) -> LayerForwardState:
        return self.layer_states[-1]

    @property
    def active_output_ids(self) -> IntArray:
        return self.output_state.active_out

    @property
    def output_probabilities(self) -> FloatArray:
        return self.output_state.activation

    def total_active_neurons(self) -> int:
        """Sum of active-neuron counts across layers (cost-model input)."""
        return sum(state.num_active for state in self.layer_states)

    def total_active_weights(self) -> int:
        """Sum of active-weight counts across layers (cost-model input)."""
        return sum(state.num_active_weights for state in self.layer_states)


@dataclass
class SampleGradient:
    """The sparse gradient footprint of one training sample."""

    layer_states: list[LayerForwardState]
    weight_grads: list[FloatArray]
    bias_grads: list[FloatArray]
    loss: float


class SlideNetwork:
    """Fully connected network trained with LSH-driven adaptive sparsity."""

    def __init__(self, config: SlideNetworkConfig) -> None:
        self.config = config
        self.layers: list[SlideLayer] = []
        fan_in = config.input_dim
        for idx, layer_cfg in enumerate(config.layers):
            layer = SlideLayer(
                fan_in=fan_in,
                config=layer_cfg,
                seed=config.seed + idx,
                name=f"layer{idx}",
            )
            self.layers.append(layer)
            fan_in = layer_cfg.size
        self._rng = derive_rng(config.seed, stream=23)
        self.iteration = 0
        # Reusable gradient-block buffers for the fused synchronous path.
        self._workspace = Workspace()
        # Per-phase wall-clock accounting (hash / gather-GEMM / optimiser on
        # the fused path, table rebuilds on every path); read by the
        # throughput benchmarks to track where training time goes.  Imported
        # lazily: repro.perf.simulator imports repro.core.trainer, so a
        # module-level import of the perf package would be circular.
        from repro.perf.phases import PhaseTimer

        self.phase_timer = PhaseTimer()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        return self.config.input_dim

    @property
    def output_dim(self) -> int:
        return self.config.output_dim

    @property
    def output_layer(self) -> SlideLayer:
        return self.layers[-1]

    def num_parameters(self) -> int:
        """Total number of trainable parameters (weights + biases)."""
        return sum(layer.weights.size + layer.biases.size for layer in self.layers)

    # ------------------------------------------------------------------
    # Optimiser wiring
    # ------------------------------------------------------------------
    def build_optimizer(self, training: TrainingConfig) -> Optimizer:
        """Create an optimiser with state registered for every layer."""
        optimizer = make_optimizer(training.optimizer)
        for layer in self.layers:
            layer.register_parameters(optimizer)
        return optimizer

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward_sample(
        self,
        example: SparseExample,
        include_labels: bool = False,
    ) -> ForwardResult:
        """Sparse forward pass for one example (Algorithm 1, lines 9-13)."""
        indices = example.features.indices
        values = example.features.values
        states: list[LayerForwardState] = []
        for layer_idx, layer in enumerate(self.layers):
            is_output = layer_idx == len(self.layers) - 1
            forced = None
            if (
                is_output
                and include_labels
                and layer.config.sampling.include_labels
                and example.labels.size
            ):
                forced = example.labels
            state = layer.forward(indices, values, forced_active=forced)
            states.append(state)
            # The sparse activation of this layer feeds the next one; prune
            # exact zeros (e.g. ReLU kills them) so downstream work shrinks.
            nonzero = state.activation != 0.0
            indices = state.active_out[nonzero]
            values = state.activation[nonzero]
        return ForwardResult(layer_states=states)

    def predict_dense(self, example: SparseExample) -> FloatArray:
        """Full dense forward pass (used for evaluation / parity tests)."""
        dense = example.features.to_dense()
        for layer in self.layers:
            dense = layer.dense_forward(dense)
        return dense

    def predict_dense_batch(self, examples: list[SparseExample]) -> FloatArray:
        """Full dense forward pass for many examples at once.

        Returns a ``(len(examples), output_dim)`` probability matrix.  One
        matrix multiply per layer replaces the per-example loop, which is
        what the serving path's batched dense scorer relies on.
        """
        if not examples:
            return np.zeros((0, self.output_dim), dtype=np.float64)
        features = dense_features(examples, self.input_dim)
        for layer in self.layers:
            features = layer.dense_forward_batch(features)
        return features

    # ------------------------------------------------------------------
    # Loss and gradients
    # ------------------------------------------------------------------
    def compute_sample_gradient(self, example: SparseExample) -> SampleGradient:
        """Forward + backward for one sample; returns its sparse gradients."""
        result = self.forward_sample(example, include_labels=True)
        states = result.layer_states

        output_state = states[-1]
        probabilities = output_state.activation
        active_out = output_state.active_out

        # Cross-entropy target restricted to the active set: probability mass
        # 1/|labels| on each ground-truth label present in the active set.
        # ``searchsorted`` silently misattributes labels on an unsorted active
        # set, so the sorted invariant is enforced rather than assumed.
        if active_out.size > 1 and np.any(np.diff(active_out) <= 0):
            raise ValueError(
                "active_out must be sorted and unique for label matching; "
                "got an unsorted active set from the output layer"
            )
        target = np.zeros_like(probabilities)
        loss = 0.0
        if example.labels.size:
            positions = np.searchsorted(active_out, example.labels)
            in_range = positions < active_out.size
            positions = positions[in_range]
            matched = active_out[positions] == example.labels[in_range]
            label_positions = positions[matched]
            if label_positions.size:
                target[label_positions] = 1.0 / example.labels.size
                loss = float(
                    -np.sum(target[label_positions] * np.log(probabilities[label_positions] + 1e-12))
                )

        # Softmax + cross-entropy: dL/dz = p - y on the active set.
        delta = probabilities - target

        weight_grads: list[FloatArray] = [np.zeros(0)] * len(self.layers)
        bias_grads: list[FloatArray] = [np.zeros(0)] * len(self.layers)

        downstream_delta = delta
        for layer_idx in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[layer_idx]
            state = states[layer_idx]
            prev_delta = layer.backward(state, downstream_delta)
            weight_grad, bias_grad = layer.gradient_blocks(state)
            weight_grads[layer_idx] = weight_grad
            bias_grads[layer_idx] = bias_grad
            if layer_idx > 0:
                below = states[layer_idx - 1]
                # ``state.active_in`` lists which of the *below* layer's active
                # neurons fed this layer; map the propagated delta back onto
                # the below layer's active set and apply its ReLU mask.
                mapped = np.zeros(below.active_out.shape[0], dtype=np.float64)
                positions = np.searchsorted(below.active_out, state.active_in)
                valid = (positions < below.active_out.size) & (
                    below.active_out[np.minimum(positions, below.active_out.size - 1)]
                    == state.active_in
                )
                mapped[positions[valid]] = prev_delta[valid]
                downstream_delta = mapped * hidden_activation_grad(
                    self.layers[layer_idx - 1].activation_name, below.pre_activation
                )
        return SampleGradient(
            layer_states=states,
            weight_grads=weight_grads,
            bias_grads=bias_grads,
            loss=loss,
        )

    # ------------------------------------------------------------------
    # Training steps
    # ------------------------------------------------------------------
    def apply_sample_gradient(
        self,
        gradient: SampleGradient,
        optimizer: Optimizer,
        scale: float = 1.0,
    ) -> None:
        """Apply one sample's sparse gradient blocks to every layer.

        The per-sample update primitive shared by HOGWILD-style training
        (``scale=1``) and the legacy averaged synchronous loop
        (``scale=1/batch``); :class:`repro.parallel.hogwild.HogwildSimulator`
        uses it for its lock-free phase-2 replay as well.
        """
        for layer, state, w_grad, b_grad in zip(
            self.layers,
            gradient.layer_states,
            gradient.weight_grads,
            gradient.bias_grads,
        ):
            if scale == 1.0:
                layer.apply_gradients(optimizer, state, w_grad, b_grad)
            else:
                layer.apply_gradients(optimizer, state, w_grad * scale, b_grad * scale)

    def train_batch(
        self,
        batch: SparseBatch,
        optimizer: Optimizer,
        hogwild: bool = True,
        batched: bool | None = None,
    ) -> dict[str, float]:
        """One mini-batch step (Algorithm 1, lines 7-16).

        With ``hogwild=True`` each sample's gradient is applied immediately
        and independently (asynchronous accumulation) — the paper's execution
        model, bit-compatible across releases.  With ``hogwild=False`` the
        step is synchronous; ``batched`` selects its implementation:

        * ``None``/``True`` (default) — the fused batched kernels
          (:mod:`repro.kernels`): one LSH hash sweep, one gather + GEMM per
          layer, and one accumulated optimiser step per layer for the whole
          micro-batch.
        * ``False`` — the legacy per-sample loop that averages gradients but
          applies them one ``sparse_step`` per sample (kept for ablations and
          the kernel parity tests).
        """
        if hogwild:
            metrics = self._train_batch_per_sample(batch, optimizer, interleaved=True)
        elif batched or batched is None:
            metrics = fused_train_step(self, batch, optimizer, self._workspace)
        else:
            metrics = self._train_batch_per_sample(batch, optimizer, interleaved=False)

        self.iteration += 1
        with self.phase_timer.phase("rebuild"):
            for layer in self.layers:
                layer.maybe_rebuild(self.iteration)
        return metrics

    def _train_batch_per_sample(
        self,
        batch: SparseBatch,
        optimizer: Optimizer,
        interleaved: bool,
    ) -> dict[str, float]:
        """Per-sample step shared by HOGWILD and the legacy synchronous loop.

        ``interleaved=True`` applies each gradient immediately at full scale
        (asynchronous accumulation); ``interleaved=False`` defers every
        update until all gradients are computed, then applies them averaged.
        """
        optimizer.begin_step()
        losses = []
        active_neurons = 0
        active_weights = 0
        deferred: list[SampleGradient] = []
        for example in batch:
            gradient = self.compute_sample_gradient(example)
            losses.append(gradient.loss)
            active_neurons += sum(s.num_active for s in gradient.layer_states)
            active_weights += sum(s.num_active_weights for s in gradient.layer_states)
            if interleaved:
                self.apply_sample_gradient(gradient, optimizer)
            else:
                deferred.append(gradient)
        scale = 1.0 / max(len(batch), 1)
        for gradient in deferred:
            self.apply_sample_gradient(gradient, optimizer, scale=scale)
        return {
            "loss": float(np.mean(losses)) if losses else 0.0,
            "active_neurons": float(active_neurons),
            "active_weights": float(active_weights),
            "batch_size": float(len(batch)),
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def rebuild_all_tables(self) -> None:
        """Force a full re-hash of every LSH-enabled layer."""
        for layer in self.layers:
            if layer.lsh_index is not None:
                layer.lsh_index.build(layer.weights)
                layer._clear_dirty()
                layer.num_rebuilds += 1

    def average_output_active(self, examples: list[SparseExample]) -> float:
        """Mean number of active output neurons over ``examples`` (diagnostic).

        The paper reports ~1000/205K for Delicious and ~3000/670K for Amazon —
        i.e. < 0.5 % of the output layer.
        """
        if not examples:
            return 0.0
        counts = []
        for example in examples:
            result = self.forward_sample(example, include_labels=False)
            counts.append(result.output_state.num_active)
        return float(np.mean(counts))
