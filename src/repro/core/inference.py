"""Inference helpers: top-k prediction and precision@k evaluation.

The paper's accuracy metric on Delicious-200K and Amazon-670K is precision@1
(the standard extreme-classification metric): the fraction of test examples
whose highest-scoring predicted class is one of the example's true labels.

Evaluation uses the *dense* forward pass: SLIDE's hash tables accelerate
training, but at evaluation time we want the model's true argmax.  Scoring
goes through :func:`predict_dense_batch` — one matrix multiply per layer for
the whole evaluation set — rather than a per-example loop; the LSH-backed
*serving* counterpart of this module lives in :mod:`repro.serving.engine`.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray, IntArray, SparseExample
from repro.utils.topk import top_k_indices

__all__ = [
    "predict_top_k",
    "predict_dense_batch",
    "predict_top_k_batch",
    "evaluate_precision_at_1",
    "evaluate_precision_at_k",
]


def predict_top_k(network, example: SparseExample, k: int = 1) -> IntArray:
    """Indices of the ``k`` highest-probability output classes for ``example``."""
    scores = network.predict_dense(example)
    return top_k_indices(scores, k)


def predict_dense_batch(network, examples: list[SparseExample]) -> FloatArray:
    """Dense class-score matrix for ``examples``.

    Uses the network's batched forward pass when it has one
    (:class:`~repro.core.network.SlideNetwork` and the dense baseline both
    do) and falls back to stacking per-example scores otherwise, so every
    model with a ``predict_dense`` method can be evaluated.
    """
    batched = getattr(network, "predict_dense_batch", None)
    if batched is not None:
        return batched(examples)
    if not examples:
        return np.zeros((0, 0), dtype=np.float64)
    return np.stack([network.predict_dense(example) for example in examples])


def predict_top_k_batch(
    network, examples: list[SparseExample], k: int = 1
) -> IntArray:
    """Top-``k`` class indices for each example; shape ``(len(examples), k)``.

    Rows are ordered by descending score.  ``k`` larger than the number of
    output classes is clamped (rows then have ``output_dim`` columns),
    matching :func:`predict_top_k` / :func:`~repro.utils.topk.top_k_indices`.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not examples:
        return np.zeros((0, k), dtype=np.int64)
    scores = predict_dense_batch(network, examples)
    k = min(k, scores.shape[1])
    if k == scores.shape[1]:
        return np.argsort(-scores, axis=1, kind="stable").astype(np.int64)
    # argpartition per row, then sort the kept slice by descending score.
    partition = np.argpartition(scores, -k, axis=1)[:, -k:]
    kept = np.take_along_axis(scores, partition, axis=1)
    order = np.argsort(-kept, axis=1, kind="stable")
    return np.take_along_axis(partition, order, axis=1).astype(np.int64)


def evaluate_precision_at_1(
    network, examples: list[SparseExample], strict: bool = False
) -> float:
    """Precision@1 over ``examples`` (see :func:`evaluate_precision_at_k`)."""
    return evaluate_precision_at_k(network, examples, k=1, strict=strict)


def evaluate_precision_at_k(
    network,
    examples: list[SparseExample],
    k: int = 1,
    strict: bool = False,
    eval_batch_size: int = 256,
) -> float:
    """Precision@k: mean fraction of the top-k predictions that are true labels.

    Examples without labels carry no signal for the metric.  By default they
    are skipped; with ``strict=True`` their presence raises instead of being
    silently dropped, so data-pipeline bugs surface during evaluation.

    ``eval_batch_size`` bounds the densified feature block: scoring runs in
    chunks so memory stays at ``O(eval_batch_size * max(input_dim,
    output_dim))`` regardless of how many examples are evaluated.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if eval_batch_size <= 0:
        raise ValueError("eval_batch_size must be positive")
    unlabeled = sum(1 for example in examples if example.labels.size == 0)
    if strict and unlabeled:
        raise ValueError(
            f"{unlabeled} of {len(examples)} examples have no labels; "
            "pass strict=False to skip them"
        )
    labeled = [example for example in examples if example.labels.size]
    if not labeled:
        return 0.0
    scores = []
    for start in range(0, len(labeled), eval_batch_size):
        chunk = labeled[start : start + eval_batch_size]
        predictions = predict_top_k_batch(network, chunk, k=k)
        scores.extend(
            np.isin(predictions[row], example.labels).sum() / k
            for row, example in enumerate(chunk)
        )
    return float(np.mean(scores))
