"""Inference helpers: top-k prediction and precision@1 evaluation.

The paper's accuracy metric on Delicious-200K and Amazon-670K is precision@1
(the standard extreme-classification metric): the fraction of test examples
whose highest-scoring predicted class is one of the example's true labels.

Evaluation uses the *dense* forward pass: SLIDE's hash tables accelerate
training, but at evaluation time we want the model's true argmax, and the
evaluation sets used by the harness are small.
"""

from __future__ import annotations

import numpy as np

from repro.types import IntArray, SparseExample
from repro.utils.topk import top_k_indices

__all__ = ["predict_top_k", "evaluate_precision_at_1", "evaluate_precision_at_k"]


def predict_top_k(network, example: SparseExample, k: int = 1) -> IntArray:
    """Indices of the ``k`` highest-probability output classes for ``example``."""
    scores = network.predict_dense(example)
    return top_k_indices(scores, k)


def evaluate_precision_at_1(network, examples: list[SparseExample]) -> float:
    """Precision@1 over ``examples`` (skips examples with no labels)."""
    return evaluate_precision_at_k(network, examples, k=1)


def evaluate_precision_at_k(network, examples: list[SparseExample], k: int = 1) -> float:
    """Precision@k: mean fraction of the top-k predictions that are true labels."""
    if k <= 0:
        raise ValueError("k must be positive")
    scores = []
    for example in examples:
        if example.labels.size == 0:
            continue
        predictions = predict_top_k(network, example, k=k)
        hits = np.isin(predictions, example.labels).sum()
        scores.append(hits / k)
    if not scores:
        return 0.0
    return float(np.mean(scores))
