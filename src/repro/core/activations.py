"""Activation functions used by SLIDE layers.

The only non-standard piece is the *sparse softmax*: SLIDE normalises the
softmax over the **active** output neurons only, so the partition function is
a sum over the sampled set rather than all classes (paper Section 3.1).
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray

__all__ = [
    "relu",
    "relu_grad",
    "hidden_activation_grad",
    "sparse_softmax",
    "softmax_rows",
    "log_sparse_softmax",
]


def relu(z: FloatArray) -> FloatArray:
    """Rectified linear unit, element-wise."""
    return np.maximum(z, 0.0)


def relu_grad(z: FloatArray) -> FloatArray:
    """Derivative of ReLU with respect to its pre-activation ``z``."""
    return (z > 0.0).astype(np.float64)


def hidden_activation_grad(name: str, pre_activation: FloatArray) -> FloatArray:
    """Element-wise activation derivative used when backpropagating through a
    hidden layer.

    Hidden layers are ``relu`` or ``linear``; a hidden ``softmax`` has a
    non-diagonal Jacobian that the sparse message-passing backward pass does
    not implement, so it is rejected loudly instead of silently gating
    deltas with the wrong derivative.
    """
    if name == "relu":
        return relu_grad(pre_activation)
    if name == "linear":
        return np.ones_like(pre_activation)
    raise ValueError(
        f"backpropagation through a hidden {name!r} layer is not supported"
    )


def sparse_softmax(logits: FloatArray) -> FloatArray:
    """Softmax normalised over the provided (active) logits only.

    Numerically stabilised by subtracting the max logit.  An empty input
    returns an empty array.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.size == 0:
        return logits.copy()
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def softmax_rows(logits: FloatArray) -> FloatArray:
    """Row-wise stabilised softmax over a ``(batch, classes)`` matrix.

    The batched counterpart of :func:`sparse_softmax`, shared by the dense
    baseline's forward pass and the batched dense prediction path.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.size == 0:
        return logits.copy()
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def log_sparse_softmax(logits: FloatArray) -> FloatArray:
    """Log of :func:`sparse_softmax`, computed stably."""
    logits = np.asarray(logits, dtype=np.float64)
    if logits.size == 0:
        return logits.copy()
    shifted = logits - logits.max()
    log_norm = np.log(np.exp(shifted).sum())
    return shifted - log_norm
