"""SLIDE core: sparse layers, network, trainer and inference."""

from repro.core.activations import relu, relu_grad, sparse_softmax, log_sparse_softmax
from repro.core.layer import SlideLayer, LayerForwardState
from repro.core.network import SlideNetwork, ForwardResult
from repro.core.trainer import SlideTrainer, TrainingHistory, IterationRecord
from repro.core.inference import predict_top_k, evaluate_precision_at_1

__all__ = [
    "relu",
    "relu_grad",
    "sparse_softmax",
    "log_sparse_softmax",
    "SlideLayer",
    "LayerForwardState",
    "SlideNetwork",
    "ForwardResult",
    "SlideTrainer",
    "TrainingHistory",
    "IterationRecord",
    "predict_top_k",
    "evaluate_precision_at_1",
]
