"""SLIDE core: sparse layers, network, trainer and inference."""

from repro.core.activations import (
    relu,
    relu_grad,
    sparse_softmax,
    softmax_rows,
    log_sparse_softmax,
)
from repro.core.layer import SlideLayer, LayerForwardState
from repro.core.network import SlideNetwork, ForwardResult
from repro.core.trainer import SlideTrainer, TrainingHistory, IterationRecord
from repro.core.inference import (
    predict_top_k,
    predict_top_k_batch,
    predict_dense_batch,
    evaluate_precision_at_1,
    evaluate_precision_at_k,
)

__all__ = [
    "relu",
    "relu_grad",
    "sparse_softmax",
    "softmax_rows",
    "log_sparse_softmax",
    "SlideLayer",
    "LayerForwardState",
    "SlideNetwork",
    "ForwardResult",
    "SlideTrainer",
    "TrainingHistory",
    "IterationRecord",
    "predict_top_k",
    "predict_top_k_batch",
    "predict_dense_batch",
    "evaluate_precision_at_1",
    "evaluate_precision_at_k",
]
