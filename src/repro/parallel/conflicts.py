"""Gradient-update conflict analysis.

SLIDE's asynchronous (HOGWILD) parallelism rests on one empirical claim:
because each sample updates only the tiny set of weights between its active
neurons, two samples processed concurrently almost never touch the same
weight, so lock-free updates lose essentially nothing (Section 3.1).

This module measures that claim directly: given the active-neuron footprints
of the samples in a batch, it computes how many weight coordinates would be
written by more than one thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.types import IntArray

__all__ = ["ConflictReport", "analyze_update_conflicts", "expected_conflict_fraction"]


@dataclass(frozen=True)
class ConflictReport:
    """Summary of pairwise update overlaps within one batch."""

    batch_size: int
    layer_size: int
    # Mean number of active output neurons per sample.
    mean_active: float
    # Expected fraction of a sample's active neurons also active in another
    # given sample of the batch (pairwise overlap rate).
    pairwise_overlap_rate: float
    # Fraction of all (sample, neuron) updates that touch a neuron updated by
    # at least one other sample in the batch.
    conflicted_update_fraction: float
    # Total distinct neurons updated by the batch.
    distinct_neurons_updated: int

    @property
    def is_sparse_enough_for_hogwild(self) -> bool:
        """Heuristic flag: <10 % conflicted updates is the HOGWILD comfort zone."""
        return self.conflicted_update_fraction < 0.10


def analyze_update_conflicts(
    active_sets: list[IntArray],
    layer_size: int,
) -> ConflictReport:
    """Measure update overlap between the samples of one batch.

    Parameters
    ----------
    active_sets:
        One array of active output-neuron ids per sample.
    layer_size:
        Width of the layer (for normalisation).
    """
    if layer_size <= 0:
        raise ValueError("layer_size must be positive")
    if not active_sets:
        return ConflictReport(
            batch_size=0,
            layer_size=layer_size,
            mean_active=0.0,
            pairwise_overlap_rate=0.0,
            conflicted_update_fraction=0.0,
            distinct_neurons_updated=0,
        )

    sets = [np.unique(np.asarray(s, dtype=np.int64)) for s in active_sets]
    sizes = np.array([s.size for s in sets], dtype=np.float64)
    mean_active = float(sizes.mean())

    # Pairwise overlap rate: |A ∩ B| / min(|A|, |B|), averaged over pairs.
    overlaps = []
    for a, b in combinations(sets, 2):
        if a.size == 0 or b.size == 0:
            continue
        inter = np.intersect1d(a, b, assume_unique=True).size
        overlaps.append(inter / min(a.size, b.size))
    pairwise = float(np.mean(overlaps)) if overlaps else 0.0

    # Conflicted update fraction: updates hitting a neuron also updated by
    # another sample, over all updates.
    counts = np.zeros(layer_size, dtype=np.int64)
    total_updates = 0
    for s in sets:
        counts[s] += 1
        total_updates += s.size
    conflicted = int(np.sum(counts[counts > 1]))
    conflicted_fraction = conflicted / total_updates if total_updates else 0.0

    return ConflictReport(
        batch_size=len(sets),
        layer_size=layer_size,
        mean_active=mean_active,
        pairwise_overlap_rate=pairwise,
        conflicted_update_fraction=float(conflicted_fraction),
        distinct_neurons_updated=int(np.sum(counts > 0)),
    )


def expected_conflict_fraction(batch_size: int, active: int, layer_size: int) -> float:
    """Expected conflicted-update fraction under independent uniform sampling.

    If each of ``batch_size`` samples activates ``active`` neurons uniformly
    at random out of ``layer_size``, the probability that a given update hits
    a neuron also chosen by at least one of the other samples is
    ``1 - (1 - active/layer_size)^(batch_size - 1)``.

    This is the theoretical yardstick the empirical
    :func:`analyze_update_conflicts` numbers are compared against: SLIDE's
    adaptive sampling is *not* uniform (popular neurons are hit more often),
    so its measured conflict rate sits above this bound but remains small
    when ``active / layer_size`` is a fraction of a percent.
    """
    if batch_size <= 0 or active <= 0 or layer_size <= 0:
        raise ValueError("batch_size, active and layer_size must be positive")
    if active > layer_size:
        raise ValueError("active cannot exceed layer_size")
    p_single = active / layer_size
    return float(1.0 - (1.0 - p_single) ** (batch_size - 1))
