"""True multi-process HOGWILD training over shared-memory parameters.

The thread-based substrates in this package (:class:`~repro.parallel.hogwild.
HogwildSimulator`, :class:`~repro.parallel.executor.BatchParallelExecutor`)
reproduce SLIDE's asynchronous *update semantics* but execute under the GIL,
so they cannot demonstrate the paper's central systems claim — near-linear
scaling with CPU cores (Figure 9, Table 2).  This module provides the real
thing:

* :class:`SharedParamStore` places named parameter arrays (layer weights and
  biases, optimiser moment buffers, diagnostic counters) in
  ``multiprocessing.shared_memory`` blocks.  The store serialises its layout
  into a JSON-safe *manifest*; worker processes — forked or spawned —
  reattach the blocks zero-copy from the manifest and bind their own
  ``SlideNetwork`` / optimiser instances onto the shared arrays.
* :class:`ProcessHogwildTrainer` shards each epoch's data across ``N``
  worker processes that perform lock-free asynchronous updates directly into
  the shared parameters (HOGWILD at micro-batch granularity, Recht et al.,
  2011).  Per the paper's design each worker owns a *private* LSH index over
  the shared weights, rebuilt on the worker's own schedule; nothing but the
  parameter arrays (and two small diagnostic counters) is shared, and no
  locks are taken anywhere on the training path.

Gradient conflicts are *measured*, not assumed away: every worker stamps its
per-batch update footprint into a shared per-neuron writer bitmask, and the
parent reports how many neurons were touched by two or more workers (plus a
cross-worker :class:`~repro.parallel.conflicts.ConflictReport` over the
worker footprints).  The bitmask update is itself lock-free and therefore
slightly approximate under contention — exactly the trade-off HOGWILD makes
for the gradients themselves.

With ``num_processes=1`` the trainer degenerates to a deterministic inline
run of today's fused synchronous path (:mod:`repro.kernels`) — bit-for-bit
identical weights to ``SlideTrainer(hogwild=False).train`` on the same data
and seed, which is what the parity tests pin.

Multi-process runs are *not* bit-reproducible: update interleaving across
workers is scheduler-dependent, which is inherent to HOGWILD.  Periodic
mid-training evaluation (``TrainingConfig.eval_every``) is skipped in
multi-process mode; end-of-training evaluation still runs in the parent.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import resource
import secrets
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.config import (
    FaultToleranceConfig,
    TrainingConfig,
    network_config_from_dict,
    network_config_to_dict,
    optimizer_config_from_dict,
    optimizer_config_to_dict,
)
from repro.core.network import SlideNetwork
from repro.data.shards import ShardedDataset
from repro.faults import FaultInjector
from repro.optim.base import Optimizer
from repro.optim.factory import make_optimizer
from repro.parallel.conflicts import ConflictReport, analyze_update_conflicts
from repro.types import SparseBatch, SparseExample
from repro.utils.rng import derive_rng

__all__ = [
    "SharedParamStore",
    "network_state_arrays",
    "bind_network",
    "unbind_network",
    "WorkerStats",
    "ProcessConflictStats",
    "SupervisionEvent",
    "SupervisionReport",
    "ProcessTrainingReport",
    "ProcessHogwildTrainer",
]

# Reserved name prefix for non-parameter arrays the trainer places in the
# store (conflict counters, heartbeats); kept out of network binding helpers.
_DIAG_PREFIX = "_diag::"
_WRITER_MASK = _DIAG_PREFIX + "writer_mask"
_WORKER_UPDATES = _DIAG_PREFIX + "worker_updates"
_HEARTBEAT = _DIAG_PREFIX + "heartbeat"

# Heartbeat slab columns, one row per worker slot (float64 so a single
# store covers progress counters and CLOCK_MONOTONIC stamps alike; the
# monotonic clock is system-wide on Linux, so stamps written by workers are
# directly comparable with the supervisor's own reading of the clock).
_HB_PROGRESS = 0  # batches of the current work item applied so far
_HB_STAMP = 1  # time.monotonic() of the last progress update
_HB_ITEM = 2  # id of the work item being processed (-1 when idle)
_HB_INCARNATION = 3  # restart count of the worker slot
_HB_COLUMNS = 4

# A uint64 writer bitmask caps the worker count.
MAX_PROCESSES = 64

# Workers share the Adam moment buffers lock-free, so a racing block
# gather/scatter can pair a large first moment with a second moment whose
# accumulation was just overwritten — and Adam's m_hat/sqrt(v_hat) step is
# unbounded in that state (measured: hidden-layer weights exploding within a
# few batches).  Workers therefore run with a bounded-update Adam: each
# element moves at most DEFAULT_UPDATE_CLIP * learning_rate per step, which
# turns a torn moment pair into ordinary bounded HOGWILD noise.  Single
# process paths never clip, so the deterministic fallback stays bit-exact.
DEFAULT_UPDATE_CLIP = 10.0


def _attach_segment(name: str):
    """Attach an existing shared-memory block, untracked where possible.

    Python 3.13+ exposes ``track=False`` so attaching registers nothing with
    the resource tracker.  On older interpreters the attach *does* register,
    which is harmless here: every attaching process in this module is a
    descendant of the creating one, so all of them share the creator's
    resource-tracker process, whose cache is a set — the re-registration is
    idempotent and exactly one unregister happens when the owner unlinks.
    (The classic premature-unlink hazard, bpo-38119, needs *independent*
    trackers, i.e. attaching from an unrelated process — not our topology.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter.
        return shared_memory.SharedMemory(name=name, create=False)


class SharedParamStore:
    """Named ndarrays backed by ``multiprocessing.shared_memory`` blocks.

    One block per array.  The creating process copies the source arrays in
    (:meth:`create`) and owns the blocks' lifetime (:meth:`unlink`); any
    process holding the :meth:`manifest` can :meth:`attach` zero-copy views
    of the same memory.  Views returned by ``store[name]`` stay valid until
    :meth:`close`; callers must drop every outstanding view (see
    :func:`unbind_network`) before closing, or the export check in
    ``mmap.close`` will refuse.
    """

    def __init__(
        self,
        segments: dict[str, object],
        arrays: dict[str, np.ndarray],
        specs: dict[str, dict[str, object]],
        owner: bool,
    ) -> None:
        self._segments = segments
        self._arrays = arrays
        self._specs = specs
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], prefix: str = "slide"
    ) -> "SharedParamStore":
        """Allocate shared blocks for ``arrays`` and copy their contents in."""
        from multiprocessing import shared_memory

        if not arrays:
            raise ValueError("arrays must not be empty")
        token = secrets.token_hex(4)
        segments: dict[str, object] = {}
        views: dict[str, np.ndarray] = {}
        specs: dict[str, dict[str, object]] = {}
        try:
            for index, (name, array) in enumerate(arrays.items()):
                if not name:
                    raise ValueError("array names must be non-empty")
                source = np.ascontiguousarray(array)
                shm_name = f"{prefix}-{os.getpid():x}-{token}-{index}"
                segment = shared_memory.SharedMemory(
                    name=shm_name, create=True, size=max(source.nbytes, 1)
                )
                view = np.ndarray(source.shape, dtype=source.dtype, buffer=segment.buf)
                view[...] = source
                segments[name] = segment
                views[name] = view
                specs[name] = {
                    "shm": shm_name,
                    "shape": [int(dim) for dim in source.shape],
                    "dtype": source.dtype.str,
                }
        except BaseException:
            for name, segment in segments.items():
                views.pop(name, None)
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            raise
        return cls(segments, views, specs, owner=True)

    @classmethod
    def attach(cls, manifest: Mapping[str, object]) -> "SharedParamStore":
        """Reattach every block described by ``manifest`` (zero-copy)."""
        entries = manifest.get("arrays")
        if not isinstance(entries, Mapping) or not entries:
            raise ValueError("manifest has no 'arrays' section")
        segments: dict[str, object] = {}
        views: dict[str, np.ndarray] = {}
        specs: dict[str, dict[str, object]] = {}
        try:
            for name, spec in entries.items():
                segment = _attach_segment(str(spec["shm"]))
                shape = tuple(int(dim) for dim in spec["shape"])
                dtype = np.dtype(str(spec["dtype"]))
                expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                if segment.size < expected:
                    segment.close()
                    raise ValueError(
                        f"shared block {spec['shm']!r} holds {segment.size} bytes; "
                        f"manifest expects at least {expected}"
                    )
                segments[name] = segment
                views[name] = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
                specs[name] = {
                    "shm": str(spec["shm"]),
                    "shape": list(shape),
                    "dtype": dtype.str,
                }
        except BaseException:
            for name, segment in segments.items():
                views.pop(name, None)
                segment.close()
            raise
        return cls(segments, views, specs, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    def names(self) -> list[str]:
        return list(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> np.ndarray:
        if self._closed:
            raise RuntimeError("store is closed; views are no longer valid")
        return self._arrays[name]

    def copy_out(self, name: str) -> np.ndarray:
        """A private (non-shared) copy of the named array's current contents."""
        return np.array(self[name])

    def manifest(self) -> dict[str, object]:
        """JSON-serialisable layout: pass to workers, :meth:`attach` there."""
        return {
            "format": 1,
            "arrays": {name: dict(spec) for name, spec in self._specs.items()},
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the blocks (views die; the memory itself survives)."""
        if self._closed:
            return
        self._arrays.clear()
        for segment in self._segments.values():
            segment.close()
        self._closed = True

    def unlink(self) -> None:
        """Free the blocks system-wide (owner's responsibility, idempotent)."""
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedParamStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()


# ----------------------------------------------------------------------
# Network <-> store binding
# ----------------------------------------------------------------------
def network_state_arrays(
    network: SlideNetwork, optimizer: Optimizer
) -> dict[str, np.ndarray]:
    """Every trainable array of ``network`` + ``optimizer`` under stable names.

    Layers contribute ``layer{i}.weights`` / ``layer{i}.biases`` (matching
    the optimiser's registration names); optimiser state arrays contribute
    ``opt::{param}::{key}`` (e.g. Adam's first/second moments).
    """
    arrays: dict[str, np.ndarray] = {}
    for layer in network.layers:
        arrays[f"{layer.name}.weights"] = layer.weights
        arrays[f"{layer.name}.biases"] = layer.biases
    for param_name, key, array in optimizer.state_items():
        arrays[f"opt::{param_name}::{key}"] = array
    return arrays


def bind_network(
    network: SlideNetwork, optimizer: Optimizer, store: SharedParamStore
) -> None:
    """Point ``network``/``optimizer`` arrays at the store's shared views.

    After this call every gradient application writes directly into shared
    memory; values are preserved (the store was created from — or attached
    to — the same layout produced by :func:`network_state_arrays`).
    """
    for layer in network.layers:
        layer.weights = store[f"{layer.name}.weights"]
        layer.biases = store[f"{layer.name}.biases"]
    for param_name, key, _ in optimizer.state_items():
        optimizer.set_state_array(param_name, key, store[f"opt::{param_name}::{key}"])


def unbind_network(
    network: SlideNetwork, optimizer: Optimizer, store: SharedParamStore
) -> None:
    """Copy the shared values back into private arrays and rebind to those.

    The inverse of :func:`bind_network`: afterwards the network holds no
    references into the store, so the store can be closed (and unlinked)
    without invalidating the model.
    """
    for layer in network.layers:
        layer.weights = store.copy_out(f"{layer.name}.weights")
        layer.biases = store.copy_out(f"{layer.name}.biases")
    for param_name, key, _ in optimizer.state_items():
        optimizer.set_state_array(
            param_name, key, store.copy_out(f"opt::{param_name}::{key}")
        )


def _cpu_seconds(who: int) -> float:
    usage = resource.getrusage(who)
    return float(usage.ru_utime + usage.ru_stime)


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of a uint64 array."""
    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return bitwise_count(values).astype(np.int64)
    counts = np.zeros(values.shape, dtype=np.int64)  # pragma: no cover - numpy<2
    for bit in range(64):  # pragma: no cover - numpy<2
        counts += ((values >> np.uint64(bit)) & np.uint64(1)).astype(np.int64)
    return counts  # pragma: no cover - numpy<2


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class WorkerStats:
    """Per-worker training telemetry returned through the result queue."""

    worker_id: int
    batches: int
    samples: int
    wall_time_s: float
    mean_loss: float
    losses: list[float]
    active_neurons: list[int]
    active_weights: list[int]
    batch_sizes: list[int]
    rebuilds: int
    # Sorted unique output-neuron ids this worker updated at least once.
    footprint: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))


@dataclass
class ProcessConflictStats:
    """Cross-worker gradient-conflict measurements for one training run."""

    output_dim: int
    # Output neurons updated by >= 1 worker (from the shared writer bitmask).
    neurons_updated: int
    # Output neurons updated by >= 2 distinct workers over the whole run.
    neurons_contested: int
    # Conflict analysis treating each worker's whole-run footprint as one
    # update set (the pairwise-overlap view of the same data).
    footprint_report: ConflictReport
    # Batch updates applied per worker, read back from the shared counter
    # array — the through-shared-memory cross-check of WorkerStats.batches.
    worker_update_counts: list[int] = field(default_factory=list)

    @property
    def contested_fraction(self) -> float:
        """Fraction of updated neurons touched by two or more workers."""
        return self.neurons_contested / max(self.neurons_updated, 1)


@dataclass
class SupervisionEvent:
    """One observation of the supervisor loop (death, restart, checkpoint…).

    ``kind`` is one of ``"death"`` (process exited uncleanly), ``"error"``
    (worker relayed an exception), ``"hang"`` (stale heartbeat, worker
    killed), ``"restart"`` (replacement incarnation launched),
    ``"reassign"`` (a work item moved to a different worker slot),
    ``"gave_up"`` (slot exhausted its restart budget), ``"checkpoint"``
    (mid-run training checkpoint saved).
    """

    kind: str
    worker_id: int
    time_s: float  # seconds since the supervised run started
    detail: str = ""


@dataclass
class SupervisionReport:
    """What the supervisor saw and did over one training run."""

    events: list[SupervisionEvent] = field(default_factory=list)
    restarts: int = 0
    reassigned_items: int = 0
    # Shared-counter batches minus batches whose telemetry reached the
    # parent: updates a killed worker applied but never reported (retrained
    # after the restart — HOGWILD tolerates the duplication as noise).
    lost_batches: int = 0
    checkpoints_saved: int = 0
    # Per restart: seconds from detecting the death/hang to the replacement
    # process being launched (includes the scheduled backoff).
    recovery_latency_s: list[float] = field(default_factory=list)

    @property
    def failures(self) -> list[SupervisionEvent]:
        return [e for e in self.events if e.kind in ("death", "error", "hang")]


@dataclass
class ProcessTrainingReport:
    """Outcome of one :class:`ProcessHogwildTrainer` run."""

    num_processes: int
    start_method: str
    wall_time_s: float
    samples: int
    worker_stats: list[WorkerStats]
    conflict: ProcessConflictStats | None
    # Merged per-batch records (round-robin across workers in multi-process
    # runs); ``epoch_accuracy`` carries the parent's end-of-run evaluation.
    history: "TrainingHistory"
    # CPU seconds consumed by the measured training phase only (the parent
    # for inline runs, the reaped workers for multi-process runs) — the
    # same window ``wall_time_s`` covers, so utilisation ratios are honest.
    cpu_time_s: float = 0.0
    # Fault-tolerance telemetry (multi-process runs only).
    supervision: SupervisionReport | None = None

    @property
    def samples_per_sec(self) -> float:
        return self.samples / max(self.wall_time_s, 1e-9)

    def mean_loss(self) -> float:
        losses = [loss for stats in self.worker_stats for loss in stats.losses]
        return float(np.mean(losses)) if losses else 0.0

    def final_accuracy(self) -> float | None:
        return self.history.final_accuracy()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _group_seed(base_seed: int, group: int) -> int:
    """Shuffle seed for one shard group, independent of which worker runs it.

    Work items must produce the same batch stream no matter which worker
    slot executes them — that is what makes a shard-group item *reassignable*
    after a worker dies — so the seed is keyed on the group index, never on
    the worker id.
    """
    return (int(base_seed) * 1_000_003 + 7919 * (int(group) + 1)) & 0x7FFFFFFF


def _item_batches(payload: dict, item: Mapping[str, Any], network: SlideNetwork):
    """Yield the batches of one work item, skipping ``item['skip']`` of them.

    ``shards`` items stream one :class:`ShardedDataset` shard group for one
    epoch (a ``try``/``finally`` guarantees the resident shard's mmap is
    released even when the item is abandoned mid-stream by a fault);
    ``examples`` items shuffle this worker's materialised slice with an
    epoch-keyed generator, so a restarted worker reproduces the identical
    order without replaying earlier epochs.
    """
    data = payload["data"]
    training = payload["training"]
    batch_size = int(training["batch_size"])
    shuffle = bool(training["shuffle"])
    epoch = int(item["epoch"])
    skip = int(item.get("skip", 0))
    if data["kind"] == "shards":
        groups: list[list[int]] = data["groups"]
        group = int(item["group"])
        dataset = ShardedDataset(
            data["cache_dir"],
            seed=_group_seed(int(data["seed"]), group),
            shard_subset=groups[group],
        )
        try:
            for index, batch in enumerate(
                dataset.iter_batches(
                    batch_size, epoch=epoch, shuffle=shuffle, release=True
                )
            ):
                # Already-trained batches are decompressed and discarded:
                # skip cost is proportional to progress lost, never to the
                # whole run.
                if index < skip:
                    continue
                yield batch
        finally:
            dataset.close()
        return
    examples: list[SparseExample] = data["examples"]
    rng = derive_rng(int(data["seed"]), stream=31 + epoch)
    order = np.arange(len(examples))
    if shuffle:
        rng.shuffle(order)
    emitted = 0
    for start in range(0, len(examples), batch_size):
        chunk = [examples[int(i)] for i in order[start : start + batch_size]]
        if not chunk:
            continue
        emitted += 1
        if emitted <= skip:
            continue
        yield SparseBatch.from_examples(
            chunk,
            feature_dim=network.input_dim,
            label_dim=network.output_dim,
        )


def _run_worker(payload: dict, task_queue, result_queue) -> None:
    """Task loop of one worker incarnation.

    The worker owns no epoch logic: it blocks on ``task_queue``, trains each
    work item it receives, posts the item's full per-batch telemetry back
    through ``result_queue`` (so a later death cannot lose completed work),
    and exits on the ``None`` stop sentinel.  A heartbeat row in the shared
    store is stamped after every batch; the supervisor uses it both for
    hang detection and to compute how far a dead worker got into its item.
    """
    worker_id = int(payload["worker_id"])
    incarnation = int(payload.get("incarnation", 0))
    store = SharedParamStore.attach(payload["manifest"])
    network: SlideNetwork | None = None
    optimizer: Optimizer | None = None
    try:
        network = SlideNetwork(network_config_from_dict(payload["network_config"]))
        optimizer = make_optimizer(
            optimizer_config_from_dict(payload["optimizer_config"])
        )
        for layer in network.layers:
            layer.register_parameters(optimizer)
        # Shared moments decay/accumulate at the *global* update rate (all
        # workers write them); pace this worker's Adam bias correction to
        # match rather than to its local step count.
        optimizer.step_stride = int(payload.get("step_stride", 1))
        bind_network(network, optimizer, store)
        # The constructor hashed the worker's *random* init; re-hash the
        # shared weights so this worker's private LSH index reflects the
        # actual model before the first batch.
        network.rebuild_all_tables()

        injector = FaultInjector.from_payload(payload, worker_id, incarnation)
        writer_mask = store[_WRITER_MASK]
        worker_updates = store[_WORKER_UPDATES]
        heartbeat = store[_HEARTBEAT][worker_id]
        worker_bit = np.uint64(1 << worker_id)
        heartbeat[_HB_INCARNATION] = float(incarnation)
        heartbeat[_HB_ITEM] = -1.0
        heartbeat[_HB_STAMP] = time.monotonic()

        rebuilds_seen = sum(layer.num_rebuilds for layer in network.layers)
        while True:
            item = task_queue.get()
            if item is None:
                break
            progress = int(item.get("skip", 0))
            heartbeat[_HB_PROGRESS] = float(progress)
            heartbeat[_HB_ITEM] = float(item["id"])
            heartbeat[_HB_STAMP] = time.monotonic()

            losses: list[float] = []
            active_neurons: list[int] = []
            active_weights: list[int] = []
            batch_sizes: list[int] = []
            footprint_chunks: list[np.ndarray] = []
            samples = 0
            start = time.perf_counter()
            batches = _item_batches(payload, item, network)
            try:
                for batch in batches:
                    injector.on_batch()
                    metrics = network.train_batch(batch, optimizer, hogwild=False)
                    loss = float(metrics["loss"])
                    if not np.isfinite(loss):
                        # A NaN/inf loss means the shared parameters are
                        # poisoned (corrupt block, runaway update); training
                        # on cannot recover and silently spreads the damage.
                        raise RuntimeError(
                            f"non-finite loss {loss!r} in worker {worker_id} "
                            f"(epoch {item['epoch']}, item {item['id']}): "
                            "shared parameters are corrupt"
                        )
                    losses.append(loss)
                    active_neurons.append(int(metrics["active_neurons"]))
                    active_weights.append(int(metrics["active_weights"]))
                    batch_sizes.append(int(metrics["batch_size"]))
                    samples += int(metrics["batch_size"])
                    rows = network.output_layer.last_update_rows
                    if rows is not None and rows.size:
                        # Lock-free conflict stamp: OR this worker's bit into
                        # the shared per-neuron writer mask.  The
                        # read-modify-write can race with other workers (same
                        # trade-off as the gradient updates themselves), so
                        # the mask is a floor, not a census.
                        writer_mask[rows] |= worker_bit
                        footprint_chunks.append(np.asarray(rows, dtype=np.int64))
                    worker_updates[worker_id] += 1
                    progress += 1
                    heartbeat[_HB_PROGRESS] = float(progress)
                    heartbeat[_HB_STAMP] = time.monotonic()
            finally:
                batches.close()
            wall = time.perf_counter() - start
            rebuilds_now = sum(layer.num_rebuilds for layer in network.layers)
            result_queue.put(
                {
                    "status": "item_done",
                    "worker_id": worker_id,
                    "incarnation": incarnation,
                    "item_id": int(item["id"]),
                    "batches": len(losses),
                    "samples": samples,
                    "wall_time_s": wall,
                    "losses": losses,
                    "active_neurons": active_neurons,
                    "active_weights": active_weights,
                    "batch_sizes": batch_sizes,
                    "rebuilds": rebuilds_now - rebuilds_seen,
                    "footprint": (
                        np.unique(np.concatenate(footprint_chunks))
                        if footprint_chunks
                        else np.zeros(0, dtype=np.int64)
                    ),
                }
            )
            rebuilds_seen = rebuilds_now
            heartbeat[_HB_ITEM] = -1.0
            heartbeat[_HB_STAMP] = time.monotonic()
    finally:
        try:
            if network is not None and optimizer is not None:
                # Drop every view into the store before closing it: ndarray
                # views keep the underlying mmap exported, and close() would
                # refuse while exports exist.
                unbind_network(network, optimizer, store)
        finally:
            store.close()


def _worker_entry(payload: dict, task_queue, result_queue) -> None:
    """Top-level process target (importable, so ``spawn`` can pickle it)."""
    worker_id = int(payload["worker_id"])
    incarnation = int(payload.get("incarnation", 0))
    try:
        _run_worker(payload, task_queue, result_queue)
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        result_queue.put(
            {
                "status": "error",
                "worker_id": worker_id,
                "incarnation": incarnation,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        return
    result_queue.put(
        {"status": "ok", "worker_id": worker_id, "incarnation": incarnation}
    )


# ----------------------------------------------------------------------
# Trainer
# ----------------------------------------------------------------------
@dataclass
class _WorkerSlot:
    """Parent-side bookkeeping for one supervised worker slot."""

    worker_id: int
    process: Any = None
    task_queue: Any = None
    result_queue: Any = None
    incarnation: int = 0
    restarts: int = 0
    running: bool = False  # process launched and not yet known-dead
    alive: bool = True  # restart budget not exhausted
    stop_sent: bool = False
    got_final: bool = False
    in_flight: dict | None = None
    assigned_at: float = 0.0
    # Monotonic deadline of a scheduled (backed-off) restart, if any.
    restart_at: float | None = None
    # Monotonic time the death/hang that scheduled the restart was detected.
    died_at: float | None = None
    failures: list[str] = field(default_factory=list)


class ProcessHogwildTrainer:
    """Asynchronous multi-process SLIDE training over shared parameters.

    Each of ``num_processes`` workers builds its own :class:`SlideNetwork`
    (private LSH tables, private rebuild schedule, private RNG streams),
    binds the network's weights/biases and the optimiser's moment buffers to
    the parent's shared-memory blocks, and trains on a disjoint slice of the
    data — whole :class:`~repro.data.shards.ShardedDataset` shards when the
    input is a shard cache with enough shards, otherwise a deterministic
    round-robin split of a materialised example list.  Updates land lock-free
    (HOGWILD); the run reports measured cross-worker gradient conflicts.

    ``num_processes=1`` runs inline through ``SlideTrainer(hogwild=False)``
    and therefore stays bit-for-bit identical to the fused synchronous path.
    """

    def __init__(
        self,
        network: SlideNetwork,
        training: TrainingConfig,
        num_processes: int = 1,
        start_method: str | None = None,
        join_timeout: float | None = 60.0,
        prefix: str = "slide-hogwild",
        fault_tolerance: FaultToleranceConfig | None = None,
        checkpoint_dir: str | Path | None = None,
        fault_plan=None,
    ) -> None:
        if not 1 <= num_processes <= MAX_PROCESSES:
            raise ValueError(f"num_processes must lie in [1, {MAX_PROCESSES}]")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available on this platform"
            )
        self.network = network
        self.training = training
        self.num_processes = int(num_processes)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self.join_timeout = join_timeout
        self.prefix = prefix
        self.fault_tolerance = fault_tolerance or FaultToleranceConfig()
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        # Deterministic chaos plan (tests/benchmarks only): shipped to the
        # workers inside their spawn payload.
        self.fault_plan = fault_plan
        self.optimizer: Optimizer | None = None
        self.last_report: ProcessTrainingReport | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def train(
        self,
        train_examples,
        eval_examples=None,
        resume: str | Path | None = None,
    ) -> ProcessTrainingReport:
        """Train for ``training.epochs`` epochs; returns the run report.

        ``resume`` names a checkpoint version directory (or a
        :class:`~repro.serving.checkpoint.CheckpointStore` root, in which
        case the newest *intact* version is used) written by a previous run
        with the same configuration; training continues from the work items
        that run had not yet finished.
        """
        if len(train_examples) == 0:
            raise ValueError("train_examples must not be empty")
        if self.num_processes == 1:
            report = self._train_inline(train_examples, eval_examples, resume)
        else:
            report = self._train_processes(train_examples, eval_examples, resume)
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    # Single-process deterministic fallback
    # ------------------------------------------------------------------
    def _train_inline(
        self, train_examples, eval_examples, resume=None
    ) -> ProcessTrainingReport:
        from repro.core.trainer import SlideTrainer

        trainer = SlideTrainer(
            self.network,
            self.training,
            hogwild=False,
            checkpoint_dir=self.checkpoint_dir,
            fault_tolerance=self.fault_tolerance,
        )
        # Evaluation stays outside the timed region on every path: the
        # multi-process run evaluates once in the parent after the wall
        # clock stops, so the 1-process baseline must not pay per-epoch
        # eval time inside its measurement either (it would inflate every
        # speedup_vs_1 downstream).  CPU accounting covers the same window.
        cpu_before = _cpu_seconds(resource.RUSAGE_SELF)
        start = time.perf_counter()
        history = trainer.train(train_examples, None, resume=resume)
        wall = time.perf_counter() - start
        cpu_time = _cpu_seconds(resource.RUSAGE_SELF) - cpu_before
        if eval_examples is not None and len(eval_examples):
            from repro.core.inference import evaluate_precision_at_1

            history.epoch_accuracy.append(
                evaluate_precision_at_1(self.network, eval_examples)
            )
        self.optimizer = trainer.optimizer
        records = history.records
        stats = WorkerStats(
            worker_id=0,
            batches=len(records),
            samples=sum(r.batch_size for r in records),
            wall_time_s=wall,
            mean_loss=float(np.mean([r.loss for r in records])) if records else 0.0,
            losses=[r.loss for r in records],
            active_neurons=[r.active_neurons for r in records],
            active_weights=[r.active_weights for r in records],
            batch_sizes=[r.batch_size for r in records],
            rebuilds=sum(layer.num_rebuilds for layer in self.network.layers),
        )
        return ProcessTrainingReport(
            num_processes=1,
            start_method="inline",
            wall_time_s=wall,
            samples=stats.samples,
            worker_stats=[stats],
            conflict=None,
            history=history,
            cpu_time_s=cpu_time,
        )

    # ------------------------------------------------------------------
    # Multi-process path
    # ------------------------------------------------------------------
    def _worker_seed(self, worker_id: int) -> int:
        return (int(self.training.seed) * 1_000_003 + 7919 * (worker_id + 1)) & 0x7FFFFFFF

    def _worker_network_config(self, worker_id: int):
        """Per-worker network config: distinct seed, rescaled rebuild cadence.

        The seed offset decorrelates the workers' hash functions and random
        padding.  The rebuild schedule is expressed in *local* iterations but
        each worker only sees ``1/N`` of the global update stream, so its
        periods are divided by ``N`` — keeping the hash tables as fresh,
        relative to parameter movement, as a single-process run's.
        """
        config = self.network.config
        layers = []
        for layer in config.layers:
            rebuild = layer.rebuild
            scaled = replace(
                rebuild,
                initial_period=max(1, rebuild.initial_period // self.num_processes),
                max_period=max(1, rebuild.max_period // self.num_processes),
            )
            layers.append(replace(layer, rebuild=scaled))
        return replace(
            config,
            layers=tuple(layers),
            seed=int(config.seed) + 7919 * (worker_id + 1),
        )

    def _data_spec(self, train_examples):
        """``(kind, groups, per-worker data dicts)`` for a fresh run.

        A :class:`ShardedDataset` with at least one shard per worker is
        split into LPT-balanced shard groups; every worker carries the same
        group list (shard-group work items are runnable by *any* worker,
        which is what makes them reassignable after a death).  Anything else
        is split round-robin into per-worker materialised example slices.
        """
        if (
            isinstance(train_examples, ShardedDataset)
            and train_examples.num_shards >= self.num_processes
        ):
            groups = [
                [int(s) for s in group]
                for group in train_examples.assign_shards(self.num_processes)
            ]
            data = {
                "kind": "shards",
                "cache_dir": str(train_examples.cache_dir),
                "groups": groups,
                "seed": int(self.training.seed),
            }
            return "shards", groups, [data] * self.num_processes
        order = derive_rng(self.training.seed, stream=31).permutation(
            len(train_examples)
        )
        per_worker = []
        for worker_id in range(self.num_processes):
            indices = order[worker_id :: self.num_processes]
            per_worker.append(
                {
                    "kind": "examples",
                    "examples": [train_examples[int(i)] for i in indices],
                    "seed": self._worker_seed(worker_id),
                }
            )
        return "examples", None, per_worker

    def _build_items(self, kind: str, groups) -> list[dict]:
        """The run's full work-item list: one item per (epoch, data slice)."""
        items: list[dict] = []
        for epoch in range(int(self.training.epochs)):
            if kind == "shards":
                for group in range(len(groups)):
                    items.append(
                        {"id": len(items), "epoch": epoch, "group": group, "skip": 0}
                    )
            else:
                for slot in range(self.num_processes):
                    items.append(
                        {"id": len(items), "epoch": epoch, "slot": slot, "skip": 0}
                    )
        return items

    def _restore_process_state(self, resume, optimizer, kind: str):
        """Restore a mid-run checkpoint into the bound shared arrays.

        Called *after* :func:`bind_network`, so the in-place restore writes
        straight through into shared memory and every worker attaches to the
        checkpointed parameters.  Returns ``(items, groups, base_step)``.
        """
        from repro.serving.checkpoint import (
            CheckpointError,
            CheckpointStore,
            restore_checkpoint_into,
        )

        path = Path(resume)
        if not (path / "manifest.json").is_file():
            path = CheckpointStore(path).latest_valid()
        metadata = restore_checkpoint_into(path, self.network, optimizer)
        state = metadata.get("train_state")
        if not isinstance(state, dict) or state.get("mode") != "process":
            raise CheckpointError(
                f"checkpoint {path} carries no process training state; "
                "it cannot seed a multi-process resume"
            )
        for key, current in (
            ("seed", int(self.training.seed)),
            ("epochs", int(self.training.epochs)),
            ("batch_size", int(self.training.batch_size)),
            ("kind", kind),
        ):
            if state.get(key) != current:
                raise CheckpointError(
                    f"checkpoint {path} was written with {key}={state.get(key)!r}; "
                    f"this run uses {key}={current!r}"
                )
        if kind == "examples" and int(state.get("num_processes", -1)) != self.num_processes:
            raise CheckpointError(
                f"checkpoint {path} sharded examples across "
                f"{state.get('num_processes')} workers; example slices are "
                f"worker-bound, so resume needs the same num_processes "
                f"(got {self.num_processes})"
            )
        items = [dict(item) for item in state["items"]]
        groups = state.get("groups")
        if groups is not None:
            groups = [[int(s) for s in group] for group in groups]
        return items, groups, int(optimizer.step_count)

    def _remaining_items(self, pending, slots, heartbeat) -> list[dict]:
        """Snapshot of unfinished work: queued items + live in-flight skips."""
        out = [dict(item) for item in pending]
        for slot in slots:
            if slot.in_flight is None:
                continue
            item = dict(slot.in_flight)
            row = heartbeat[slot.worker_id]
            if (
                int(row[_HB_ITEM]) == int(item["id"])
                and int(row[_HB_INCARNATION]) == slot.incarnation
            ):
                item["skip"] = max(int(item.get("skip", 0)), int(row[_HB_PROGRESS]))
            out.append(item)
        out.sort(key=lambda item: int(item["id"]))
        return out

    def _save_process_checkpoint(
        self, ckpt_store, optimizer, base_step, kind, groups, items, worker_updates
    ) -> None:
        """Write one atomic mid-run checkpoint from the parent.

        The parent's network is bound to the shared arrays, so the snapshot
        sees the workers' latest (racy, HOGWILD-consistent) parameters; the
        sidecar records which work items are still outstanding, each with
        the number of batches its current owner had already applied.
        """
        optimizer.step_count = base_step + int(np.sum(worker_updates))
        # Workers rebuild their own private tables; the parent's index is
        # stale until rehashed, and the checkpoint stores table contents.
        self.network.rebuild_all_tables()
        train_state: dict[str, Any] = {
            "mode": "process",
            "kind": kind,
            "seed": int(self.training.seed),
            "epochs": int(self.training.epochs),
            "batch_size": int(self.training.batch_size),
            "num_processes": self.num_processes,
            "items": items,
        }
        if groups is not None:
            train_state["groups"] = groups
        ckpt_store.save(
            self.network,
            optimizer,
            metadata={"train_state": train_state},
            keep_last=self.fault_tolerance.checkpoint_keep_last,
        )

    def _supervise(
        self,
        context,
        payload_base: list[dict],
        items: list[dict],
        kind: str,
        groups,
        store: SharedParamStore,
        optimizer: Optimizer,
        base_step: int,
        processes: list,
    ) -> tuple[list[WorkerStats], SupervisionReport]:
        """Run the worker fleet to completion, restarting/reassigning on failure.

        The supervisor owns all scheduling: work items live in a parent-side
        queue, each worker slot gets one item at a time through its private
        task queue, and completed items come back — with their full
        per-batch telemetry — through a result queue private to that worker
        incarnation.  Result queues are deliberately *not* shared: a
        ``multiprocessing.Queue`` write holds a cross-process lock, and a
        worker SIGKILL-ed mid-write (fault injection, the supervisor's own
        hang-kill, a real OOM kill) would strand a shared lock and deadlock
        every surviving worker's result path — observed as cascading
        heartbeat-stale kills.  With per-incarnation queues a death can only
        strand its own pipe.  Worker death is detected promptly via
        ``multiprocessing.connection.wait`` on the
        process sentinels (not by polling a timeout window); hangs are
        detected from stale heartbeat rows in shared memory.  A failed slot
        is restarted with exponential backoff up to
        ``fault_tolerance.max_restarts`` times; when a slot's budget is
        exhausted its outstanding shard-group items drain to the surviving
        workers.  Only when an item can never run again (examples-mode slot
        gone, or every slot dead) does the run fail, with every underlying
        worker failure in the message.
        """
        ft = self.fault_tolerance
        run_start = time.monotonic()
        worker_updates = store[_WORKER_UPDATES]
        heartbeat = store[_HEARTBEAT]
        report = SupervisionReport()
        pending: deque = deque(items)
        records: dict[int, dict] = {}
        attempts: dict[int, set[int]] = {int(item["id"]): set() for item in items}
        slots = [_WorkerSlot(worker_id=w) for w in range(self.num_processes)]

        ckpt_store = None
        if self.checkpoint_dir is not None and ft.checkpoint_every_s > 0:
            from repro.serving.checkpoint import CheckpointStore

            ckpt_store = CheckpointStore(self.checkpoint_dir)
        last_checkpoint = run_start

        def now_s() -> float:
            return time.monotonic() - run_start

        def eligible(slot: _WorkerSlot, item: Mapping[str, Any]) -> bool:
            # Shard-group batches are worker-independent (group-keyed seed),
            # so any worker may run them; example slices live only in their
            # own worker's payload.
            return kind == "shards" or int(item["slot"]) == slot.worker_id

        def launch(slot: _WorkerSlot) -> None:
            # Salvage anything the previous incarnation managed to deliver
            # before its pipe is replaced (completed work must survive the
            # writer's death).  Closing our copy of the write end first makes
            # a message truncated by the kill surface as EOF instead of a
            # read that blocks forever.
            if slot.result_queue is not None:
                try:
                    slot.result_queue._writer.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                drain_slot(slot)
            slot.incarnation = slot.restarts
            payload = dict(payload_base[slot.worker_id])
            payload["incarnation"] = slot.incarnation
            # Restarted incarnations keep the slot's global batch coordinate
            # (read from the shared counter) so fault specs addressed by
            # batch index do not re-fire after a restart.
            payload["start_batch"] = int(worker_updates[slot.worker_id])
            slot.task_queue = context.Queue()
            slot.result_queue = context.Queue()
            process = context.Process(
                target=_worker_entry,
                args=(payload, slot.task_queue, slot.result_queue),
                name=f"{self.prefix}-{slot.worker_id}-i{slot.incarnation}",
                daemon=True,
            )
            process.start()
            processes.append(process)
            slot.process = process
            slot.running = True
            slot.got_final = False
            slot.stop_sent = False
            slot.in_flight = None
            slot.assigned_at = time.monotonic()
            slot.restart_at = None

        def requeue_in_flight(slot: _WorkerSlot) -> None:
            item = slot.in_flight
            if item is None:
                return
            slot.in_flight = None
            progress = int(item.get("skip", 0))
            row = heartbeat[slot.worker_id]
            if (
                int(row[_HB_ITEM]) == int(item["id"])
                and int(row[_HB_INCARNATION]) == slot.incarnation
            ):
                # Resume the item where the dead worker's heartbeat left it;
                # at most one applied-but-unstamped batch gets retrained.
                progress = max(progress, int(row[_HB_PROGRESS]))
            fresh = dict(item)
            fresh["skip"] = progress
            pending.appendleft(fresh)

        def handle_failure(slot: _WorkerSlot, event_kind: str, detail: str) -> None:
            report.events.append(
                SupervisionEvent(
                    kind=event_kind,
                    worker_id=slot.worker_id,
                    time_s=now_s(),
                    detail=detail,
                )
            )
            slot.failures.append(detail)
            slot.running = False
            slot.died_at = time.monotonic()
            requeue_in_flight(slot)
            if slot.restarts < ft.max_restarts:
                slot.restarts += 1
                slot.restart_at = time.monotonic() + ft.restart_backoff_s(slot.restarts)
            else:
                slot.alive = False
                slot.restart_at = None
                report.events.append(
                    SupervisionEvent(
                        kind="gave_up",
                        worker_id=slot.worker_id,
                        time_s=now_s(),
                        detail=f"restart budget ({ft.max_restarts}) exhausted",
                    )
                )

        def consume_message(message: dict) -> None:
            slot = slots[int(message["worker_id"])]
            status = message["status"]
            incarnation = int(message.get("incarnation", 0))
            if status == "item_done":
                item_id = int(message["item_id"])
                if (
                    slot.in_flight is not None
                    and int(slot.in_flight["id"]) == item_id
                    and incarnation == slot.incarnation
                ):
                    slot.in_flight = None
                if item_id not in records:
                    records[item_id] = message
                    # A completion racing its own death re-enqueue:
                    # drop the queued duplicate so the item is not
                    # trained twice.
                    for queued in pending:
                        if int(queued["id"]) == item_id:
                            pending.remove(queued)
                            break
            elif status == "ok":
                if incarnation == slot.incarnation:
                    slot.got_final = True
            else:  # "error"
                if incarnation != slot.incarnation or not slot.running:
                    return  # stale message from an already-replaced incarnation
                slot.process.join(5.0)
                if slot.process.is_alive():  # pragma: no cover - defensive
                    slot.process.terminate()
                    slot.process.join(5.0)
                handle_failure(
                    slot,
                    "error",
                    f"worker {slot.worker_id}: {message['error']}\n"
                    f"{message['traceback']}",
                )

        def drain_slot(slot: _WorkerSlot) -> None:
            queue = slot.result_queue
            if queue is None:
                return
            while True:
                try:
                    message = queue.get_nowait()
                except queue_module.Empty:
                    return
                except (EOFError, OSError):  # pragma: no cover - torn pipe
                    return
                consume_message(message)

        def drain_results() -> None:
            for slot in slots:
                drain_slot(slot)

        def check_deaths() -> None:
            for slot in slots:
                if not slot.running or slot.process.is_alive():
                    continue
                slot.process.join(0)
                exitcode = slot.process.exitcode
                if exitcode == 0 and (
                    slot.got_final or (slot.stop_sent and slot.in_flight is None)
                ):
                    # Clean exit (the final "ok" may still be in the pipe
                    # when the sentinel fires first).
                    slot.running = False
                    slot.got_final = True
                    continue
                # Any other silent exit — SIGKILL, OOM, even exit code 0
                # without posting a result — is surfaced immediately with
                # the worker id and exit code, not after a join timeout.
                handle_failure(
                    slot,
                    "death",
                    f"worker {slot.worker_id} died with exit code {exitcode} "
                    "before reporting a result",
                )

        def check_hangs() -> None:
            if ft.heartbeat_timeout_s <= 0:
                return
            now = time.monotonic()
            for slot in slots:
                if not slot.running or slot.in_flight is None:
                    continue
                last = max(float(heartbeat[slot.worker_id][_HB_STAMP]), slot.assigned_at)
                if now - last <= ft.heartbeat_timeout_s:
                    continue
                detail = (
                    f"worker {slot.worker_id} heartbeat stale for "
                    f"{now - last:.1f}s (timeout {ft.heartbeat_timeout_s}s); killed"
                )
                slot.process.kill()
                slot.process.join(5.0)
                handle_failure(slot, "hang", detail)

        def work_remaining() -> bool:
            return bool(pending) or any(s.in_flight is not None for s in slots)

        def unrunnable_failure() -> list[str] | None:
            failures = None
            for item in pending:
                if kind == "shards":
                    stuck = not any(s.alive for s in slots)
                else:
                    stuck = not slots[int(item["slot"])].alive
                if stuck:
                    failures = [f for s in slots for f in s.failures]
                    break
            return failures

        def do_restarts() -> None:
            now = time.monotonic()
            for slot in slots:
                if slot.restart_at is None or not slot.alive or now < slot.restart_at:
                    continue
                died_at = slot.died_at
                launch(slot)
                report.restarts += 1
                if died_at is not None:
                    report.recovery_latency_s.append(time.monotonic() - died_at)
                report.events.append(
                    SupervisionEvent(
                        kind="restart",
                        worker_id=slot.worker_id,
                        time_s=now_s(),
                        detail=f"incarnation {slot.incarnation}",
                    )
                )

        def assign_work() -> None:
            for slot in slots:
                if not slot.running or slot.stop_sent or slot.in_flight is not None:
                    continue
                chosen = None
                for item in pending:
                    if eligible(slot, item):
                        chosen = item
                        break
                if chosen is None:
                    continue
                pending.remove(chosen)
                others = attempts[int(chosen["id"])] - {slot.worker_id}
                if others:
                    report.reassigned_items += 1
                    report.events.append(
                        SupervisionEvent(
                            kind="reassign",
                            worker_id=slot.worker_id,
                            time_s=now_s(),
                            detail=(
                                f"item {chosen['id']} previously attempted by "
                                f"worker(s) {sorted(others)}"
                            ),
                        )
                    )
                attempts[int(chosen["id"])].add(slot.worker_id)
                slot.in_flight = chosen
                slot.assigned_at = time.monotonic()
                slot.task_queue.put(dict(chosen))

        def maybe_checkpoint() -> None:
            nonlocal last_checkpoint
            if ckpt_store is None:
                return
            now = time.monotonic()
            if now - last_checkpoint < ft.checkpoint_every_s:
                return
            self._save_process_checkpoint(
                ckpt_store,
                optimizer,
                base_step,
                kind,
                groups,
                self._remaining_items(pending, slots, heartbeat),
                worker_updates,
            )
            last_checkpoint = time.monotonic()
            report.checkpoints_saved += 1
            report.events.append(
                SupervisionEvent(
                    kind="checkpoint",
                    worker_id=-1,
                    time_s=now_s(),
                    detail=f"{len(records)}/{len(items)} items done",
                )
            )

        for slot in slots:
            launch(slot)

        while True:
            drain_results()
            check_deaths()
            check_hangs()
            if not work_remaining():
                for slot in slots:
                    slot.restart_at = None
                    if slot.running and not slot.stop_sent:
                        slot.task_queue.put(None)
                        slot.stop_sent = True
                if not any(slot.running for slot in slots):
                    break
            else:
                failures = unrunnable_failure()
                if failures is not None:
                    raise RuntimeError(
                        "process HOGWILD worker failure(s):\n" + "\n".join(failures)
                    )
                do_restarts()
                assign_work()
                maybe_checkpoint()

            timeout = ft.poll_interval_s
            for slot in slots:
                if slot.restart_at is not None and slot.alive:
                    timeout = min(
                        timeout, max(slot.restart_at - time.monotonic(), 0.0)
                    )
            handles = [slot.process.sentinel for slot in slots if slot.running]
            for slot in slots:
                if slot.running:
                    reader = getattr(slot.result_queue, "_reader", None)
                    if reader is not None:
                        handles.append(reader)
            if handles:
                # Wakes the instant a worker dies (sentinel) or a result
                # lands (queue pipe) — the fallback timeout only paces hang
                # detection and scheduled restarts.
                mp_connection.wait(handles, timeout=timeout)
            else:
                time.sleep(max(min(timeout, 0.05), 0.001))

        report.lost_batches = int(np.sum(worker_updates)) - sum(
            int(message["batches"]) for message in records.values()
        )
        return self._slot_stats(records), report

    def _slot_stats(self, records: dict[int, dict]) -> list[WorkerStats]:
        """Fold per-item result messages into per-worker-slot WorkerStats."""
        stats: list[WorkerStats] = []
        for worker_id in range(self.num_processes):
            losses: list[float] = []
            active_neurons: list[int] = []
            active_weights: list[int] = []
            batch_sizes: list[int] = []
            footprints: list[np.ndarray] = []
            samples = 0
            wall = 0.0
            rebuilds = 0
            for item_id in sorted(records):
                message = records[item_id]
                if int(message["worker_id"]) != worker_id:
                    continue
                losses.extend(message["losses"])
                active_neurons.extend(message["active_neurons"])
                active_weights.extend(message["active_weights"])
                batch_sizes.extend(message["batch_sizes"])
                samples += int(message["samples"])
                wall += float(message["wall_time_s"])
                rebuilds += int(message["rebuilds"])
                footprint = np.asarray(message["footprint"], dtype=np.int64)
                if footprint.size:
                    footprints.append(footprint)
            stats.append(
                WorkerStats(
                    worker_id=worker_id,
                    batches=len(losses),
                    samples=samples,
                    wall_time_s=wall,
                    mean_loss=float(np.mean(losses)) if losses else 0.0,
                    losses=losses,
                    active_neurons=active_neurons,
                    active_weights=active_weights,
                    batch_sizes=batch_sizes,
                    rebuilds=rebuilds,
                    footprint=(
                        np.unique(np.concatenate(footprints))
                        if footprints
                        else np.zeros(0, dtype=np.int64)
                    ),
                )
            )
        return stats

    def _merge_history(self, worker_stats: list[WorkerStats]) -> "TrainingHistory":
        """Round-robin the workers' per-batch records into one history.

        Iteration numbers reflect the merged order (an *approximation* of the
        true global interleaving, which is scheduler-dependent); per-record
        wall time is the worker's average seconds per batch.
        """
        from repro.core.trainer import IterationRecord, TrainingHistory

        history = TrainingHistory()
        per_batch_time = {
            stats.worker_id: stats.wall_time_s / max(stats.batches, 1)
            for stats in worker_stats
        }
        iteration = 0
        depth = max((stats.batches for stats in worker_stats), default=0)
        for batch_index in range(depth):
            for stats in worker_stats:
                if batch_index >= stats.batches:
                    continue
                iteration += 1
                history.records.append(
                    IterationRecord(
                        iteration=iteration,
                        loss=stats.losses[batch_index],
                        batch_size=stats.batch_sizes[batch_index],
                        active_neurons=stats.active_neurons[batch_index],
                        active_weights=stats.active_weights[batch_index],
                        wall_time_s=per_batch_time[stats.worker_id],
                    )
                )
        return history

    def _conflict_stats(
        self, store: SharedParamStore, worker_stats: list[WorkerStats]
    ) -> ProcessConflictStats:
        counts = _popcount(store[_WRITER_MASK])
        footprints = [np.asarray(stats.footprint, dtype=np.int64) for stats in worker_stats]
        return ProcessConflictStats(
            output_dim=self.network.output_dim,
            neurons_updated=int(np.count_nonzero(counts)),
            neurons_contested=int(np.count_nonzero(counts >= 2)),
            footprint_report=analyze_update_conflicts(
                footprints, self.network.output_dim
            ),
            worker_update_counts=[int(c) for c in store[_WORKER_UPDATES]],
        )

    def _train_processes(
        self, train_examples, eval_examples, resume=None
    ) -> ProcessTrainingReport:
        optimizer = self.network.build_optimizer(self.training)
        self.optimizer = optimizer
        arrays = network_state_arrays(self.network, optimizer)
        arrays[_WRITER_MASK] = np.zeros(self.network.output_dim, dtype=np.uint64)
        arrays[_WORKER_UPDATES] = np.zeros(self.num_processes, dtype=np.int64)
        arrays[_HEARTBEAT] = np.zeros(
            (self.num_processes, _HB_COLUMNS), dtype=np.float64
        )
        store = SharedParamStore.create(arrays, prefix=self.prefix)
        context = mp.get_context(self.start_method)
        processes: list = []
        try:
            bind_network(self.network, optimizer, store)
            kind, groups, data_per_worker = self._data_spec(train_examples)
            base_step = 0
            if resume is not None:
                items, resumed_groups, base_step = self._restore_process_state(
                    resume, optimizer, kind
                )
                if kind == "shards" and resumed_groups is not None:
                    # The checkpoint's items index into *its* group list;
                    # carry it over so item identity survives the resume
                    # (works for any surviving worker count).
                    groups = resumed_groups
                    data = {
                        "kind": "shards",
                        "cache_dir": str(train_examples.cache_dir),
                        "groups": groups,
                        "seed": int(self.training.seed),
                    }
                    data_per_worker = [data] * self.num_processes
            else:
                items = self._build_items(kind, groups)
            manifest = store.manifest()
            worker_optimizer = optimizer.to_config()
            if worker_optimizer.name == "adam" and worker_optimizer.update_clip is None:
                worker_optimizer = replace(
                    worker_optimizer, update_clip=DEFAULT_UPDATE_CLIP
                )
            optimizer_config = optimizer_config_to_dict(worker_optimizer)
            training_spec = {
                "batch_size": int(self.training.batch_size),
                "epochs": int(self.training.epochs),
                "shuffle": bool(self.training.shuffle),
            }
            fault_plan = (
                self.fault_plan.to_dict()
                if self.fault_plan is not None and self.fault_plan
                else None
            )
            payload_base = [
                {
                    "worker_id": worker_id,
                    "manifest": manifest,
                    "network_config": network_config_to_dict(
                        self._worker_network_config(worker_id)
                    ),
                    "optimizer_config": optimizer_config,
                    "training": training_spec,
                    "data": data_per_worker[worker_id],
                    "step_stride": self.num_processes,
                    "fault_plan": fault_plan,
                }
                for worker_id in range(self.num_processes)
            ]
            # RUSAGE_CHILDREN accounts reaped children only; the supervisor
            # joins every worker (and every failed incarnation) before
            # returning, so the delta below covers exactly their lifetimes.
            cpu_before = _cpu_seconds(resource.RUSAGE_CHILDREN)
            start = time.perf_counter()
            worker_stats, supervision = self._supervise(
                context,
                payload_base,
                items,
                kind,
                groups,
                store,
                optimizer,
                base_step,
                processes,
            )
            wall = time.perf_counter() - start
            cpu_time = _cpu_seconds(resource.RUSAGE_CHILDREN) - cpu_before
            conflict = self._conflict_stats(store, worker_stats)
            # The shared moments experienced one decay/accumulate cycle per
            # worker batch (the shared counter is the authoritative census,
            # including updates whose telemetry died with a worker); stamp
            # that global count onto the adopted optimiser so bias
            # correction (and any checkpoint/resume) sees mature moments
            # with a mature step count, not t=0.
            optimizer.step_count = base_step + int(np.sum(store[_WORKER_UPDATES]))
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(5.0)
            unbind_network(self.network, optimizer, store)
            store.close()
            store.unlink()

        # Workers trained against their own tables; re-hash the parent's
        # index over the final shared weights before any further use.
        self.network.rebuild_all_tables()
        history = self._merge_history(worker_stats)
        if eval_examples is not None and len(eval_examples):
            from repro.core.inference import evaluate_precision_at_1

            history.epoch_accuracy.append(
                evaluate_precision_at_1(self.network, eval_examples)
            )
        return ProcessTrainingReport(
            num_processes=self.num_processes,
            start_method=self.start_method,
            wall_time_s=wall,
            samples=sum(stats.samples for stats in worker_stats),
            worker_stats=worker_stats,
            conflict=conflict,
            history=history,
            cpu_time_s=cpu_time,
            supervision=supervision,
        )
