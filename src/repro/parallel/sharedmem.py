"""True multi-process HOGWILD training over shared-memory parameters.

The thread-based substrates in this package (:class:`~repro.parallel.hogwild.
HogwildSimulator`, :class:`~repro.parallel.executor.BatchParallelExecutor`)
reproduce SLIDE's asynchronous *update semantics* but execute under the GIL,
so they cannot demonstrate the paper's central systems claim — near-linear
scaling with CPU cores (Figure 9, Table 2).  This module provides the real
thing:

* :class:`SharedParamStore` places named parameter arrays (layer weights and
  biases, optimiser moment buffers, diagnostic counters) in
  ``multiprocessing.shared_memory`` blocks.  The store serialises its layout
  into a JSON-safe *manifest*; worker processes — forked or spawned —
  reattach the blocks zero-copy from the manifest and bind their own
  ``SlideNetwork`` / optimiser instances onto the shared arrays.
* :class:`ProcessHogwildTrainer` shards each epoch's data across ``N``
  worker processes that perform lock-free asynchronous updates directly into
  the shared parameters (HOGWILD at micro-batch granularity, Recht et al.,
  2011).  Per the paper's design each worker owns a *private* LSH index over
  the shared weights, rebuilt on the worker's own schedule; nothing but the
  parameter arrays (and two small diagnostic counters) is shared, and no
  locks are taken anywhere on the training path.

Gradient conflicts are *measured*, not assumed away: every worker stamps its
per-batch update footprint into a shared per-neuron writer bitmask, and the
parent reports how many neurons were touched by two or more workers (plus a
cross-worker :class:`~repro.parallel.conflicts.ConflictReport` over the
worker footprints).  The bitmask update is itself lock-free and therefore
slightly approximate under contention — exactly the trade-off HOGWILD makes
for the gradients themselves.

With ``num_processes=1`` the trainer degenerates to a deterministic inline
run of today's fused synchronous path (:mod:`repro.kernels`) — bit-for-bit
identical weights to ``SlideTrainer(hogwild=False).train`` on the same data
and seed, which is what the parity tests pin.

Multi-process runs are *not* bit-reproducible: update interleaving across
workers is scheduler-dependent, which is inherent to HOGWILD.  Periodic
mid-training evaluation (``TrainingConfig.eval_every``) is skipped in
multi-process mode; end-of-training evaluation still runs in the parent.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import resource
import secrets
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.config import (
    TrainingConfig,
    network_config_from_dict,
    network_config_to_dict,
    optimizer_config_from_dict,
    optimizer_config_to_dict,
)
from repro.core.network import SlideNetwork
from repro.data.shards import ShardedDataset
from repro.optim.base import Optimizer
from repro.optim.factory import make_optimizer
from repro.parallel.conflicts import ConflictReport, analyze_update_conflicts
from repro.types import SparseBatch, SparseExample
from repro.utils.rng import derive_rng

__all__ = [
    "SharedParamStore",
    "network_state_arrays",
    "bind_network",
    "unbind_network",
    "WorkerStats",
    "ProcessConflictStats",
    "ProcessTrainingReport",
    "ProcessHogwildTrainer",
]

# Reserved name prefix for non-parameter arrays the trainer places in the
# store (conflict counters); kept out of network binding helpers.
_DIAG_PREFIX = "_diag::"
_WRITER_MASK = _DIAG_PREFIX + "writer_mask"
_WORKER_UPDATES = _DIAG_PREFIX + "worker_updates"

# A uint64 writer bitmask caps the worker count.
MAX_PROCESSES = 64

# Workers share the Adam moment buffers lock-free, so a racing block
# gather/scatter can pair a large first moment with a second moment whose
# accumulation was just overwritten — and Adam's m_hat/sqrt(v_hat) step is
# unbounded in that state (measured: hidden-layer weights exploding within a
# few batches).  Workers therefore run with a bounded-update Adam: each
# element moves at most DEFAULT_UPDATE_CLIP * learning_rate per step, which
# turns a torn moment pair into ordinary bounded HOGWILD noise.  Single
# process paths never clip, so the deterministic fallback stays bit-exact.
DEFAULT_UPDATE_CLIP = 10.0


def _attach_segment(name: str):
    """Attach an existing shared-memory block, untracked where possible.

    Python 3.13+ exposes ``track=False`` so attaching registers nothing with
    the resource tracker.  On older interpreters the attach *does* register,
    which is harmless here: every attaching process in this module is a
    descendant of the creating one, so all of them share the creator's
    resource-tracker process, whose cache is a set — the re-registration is
    idempotent and exactly one unregister happens when the owner unlinks.
    (The classic premature-unlink hazard, bpo-38119, needs *independent*
    trackers, i.e. attaching from an unrelated process — not our topology.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter.
        return shared_memory.SharedMemory(name=name, create=False)


class SharedParamStore:
    """Named ndarrays backed by ``multiprocessing.shared_memory`` blocks.

    One block per array.  The creating process copies the source arrays in
    (:meth:`create`) and owns the blocks' lifetime (:meth:`unlink`); any
    process holding the :meth:`manifest` can :meth:`attach` zero-copy views
    of the same memory.  Views returned by ``store[name]`` stay valid until
    :meth:`close`; callers must drop every outstanding view (see
    :func:`unbind_network`) before closing, or the export check in
    ``mmap.close`` will refuse.
    """

    def __init__(
        self,
        segments: dict[str, object],
        arrays: dict[str, np.ndarray],
        specs: dict[str, dict[str, object]],
        owner: bool,
    ) -> None:
        self._segments = segments
        self._arrays = arrays
        self._specs = specs
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], prefix: str = "slide"
    ) -> "SharedParamStore":
        """Allocate shared blocks for ``arrays`` and copy their contents in."""
        from multiprocessing import shared_memory

        if not arrays:
            raise ValueError("arrays must not be empty")
        token = secrets.token_hex(4)
        segments: dict[str, object] = {}
        views: dict[str, np.ndarray] = {}
        specs: dict[str, dict[str, object]] = {}
        try:
            for index, (name, array) in enumerate(arrays.items()):
                if not name:
                    raise ValueError("array names must be non-empty")
                source = np.ascontiguousarray(array)
                shm_name = f"{prefix}-{os.getpid():x}-{token}-{index}"
                segment = shared_memory.SharedMemory(
                    name=shm_name, create=True, size=max(source.nbytes, 1)
                )
                view = np.ndarray(source.shape, dtype=source.dtype, buffer=segment.buf)
                view[...] = source
                segments[name] = segment
                views[name] = view
                specs[name] = {
                    "shm": shm_name,
                    "shape": [int(dim) for dim in source.shape],
                    "dtype": source.dtype.str,
                }
        except BaseException:
            for name, segment in segments.items():
                views.pop(name, None)
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            raise
        return cls(segments, views, specs, owner=True)

    @classmethod
    def attach(cls, manifest: Mapping[str, object]) -> "SharedParamStore":
        """Reattach every block described by ``manifest`` (zero-copy)."""
        entries = manifest.get("arrays")
        if not isinstance(entries, Mapping) or not entries:
            raise ValueError("manifest has no 'arrays' section")
        segments: dict[str, object] = {}
        views: dict[str, np.ndarray] = {}
        specs: dict[str, dict[str, object]] = {}
        try:
            for name, spec in entries.items():
                segment = _attach_segment(str(spec["shm"]))
                shape = tuple(int(dim) for dim in spec["shape"])
                dtype = np.dtype(str(spec["dtype"]))
                expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                if segment.size < expected:
                    segment.close()
                    raise ValueError(
                        f"shared block {spec['shm']!r} holds {segment.size} bytes; "
                        f"manifest expects at least {expected}"
                    )
                segments[name] = segment
                views[name] = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
                specs[name] = {
                    "shm": str(spec["shm"]),
                    "shape": list(shape),
                    "dtype": dtype.str,
                }
        except BaseException:
            for name, segment in segments.items():
                views.pop(name, None)
                segment.close()
            raise
        return cls(segments, views, specs, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def owner(self) -> bool:
        return self._owner

    @property
    def closed(self) -> bool:
        return self._closed

    def names(self) -> list[str]:
        return list(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> np.ndarray:
        if self._closed:
            raise RuntimeError("store is closed; views are no longer valid")
        return self._arrays[name]

    def copy_out(self, name: str) -> np.ndarray:
        """A private (non-shared) copy of the named array's current contents."""
        return np.array(self[name])

    def manifest(self) -> dict[str, object]:
        """JSON-serialisable layout: pass to workers, :meth:`attach` there."""
        return {
            "format": 1,
            "arrays": {name: dict(spec) for name, spec in self._specs.items()},
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the blocks (views die; the memory itself survives)."""
        if self._closed:
            return
        self._arrays.clear()
        for segment in self._segments.values():
            segment.close()
        self._closed = True

    def unlink(self) -> None:
        """Free the blocks system-wide (owner's responsibility, idempotent)."""
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedParamStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self._owner:
            self.unlink()


# ----------------------------------------------------------------------
# Network <-> store binding
# ----------------------------------------------------------------------
def network_state_arrays(
    network: SlideNetwork, optimizer: Optimizer
) -> dict[str, np.ndarray]:
    """Every trainable array of ``network`` + ``optimizer`` under stable names.

    Layers contribute ``layer{i}.weights`` / ``layer{i}.biases`` (matching
    the optimiser's registration names); optimiser state arrays contribute
    ``opt::{param}::{key}`` (e.g. Adam's first/second moments).
    """
    arrays: dict[str, np.ndarray] = {}
    for layer in network.layers:
        arrays[f"{layer.name}.weights"] = layer.weights
        arrays[f"{layer.name}.biases"] = layer.biases
    for param_name, key, array in optimizer.state_items():
        arrays[f"opt::{param_name}::{key}"] = array
    return arrays


def bind_network(
    network: SlideNetwork, optimizer: Optimizer, store: SharedParamStore
) -> None:
    """Point ``network``/``optimizer`` arrays at the store's shared views.

    After this call every gradient application writes directly into shared
    memory; values are preserved (the store was created from — or attached
    to — the same layout produced by :func:`network_state_arrays`).
    """
    for layer in network.layers:
        layer.weights = store[f"{layer.name}.weights"]
        layer.biases = store[f"{layer.name}.biases"]
    for param_name, key, _ in optimizer.state_items():
        optimizer.set_state_array(param_name, key, store[f"opt::{param_name}::{key}"])


def unbind_network(
    network: SlideNetwork, optimizer: Optimizer, store: SharedParamStore
) -> None:
    """Copy the shared values back into private arrays and rebind to those.

    The inverse of :func:`bind_network`: afterwards the network holds no
    references into the store, so the store can be closed (and unlinked)
    without invalidating the model.
    """
    for layer in network.layers:
        layer.weights = store.copy_out(f"{layer.name}.weights")
        layer.biases = store.copy_out(f"{layer.name}.biases")
    for param_name, key, _ in optimizer.state_items():
        optimizer.set_state_array(
            param_name, key, store.copy_out(f"opt::{param_name}::{key}")
        )


def _cpu_seconds(who: int) -> float:
    usage = resource.getrusage(who)
    return float(usage.ru_utime + usage.ru_stime)


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of a uint64 array."""
    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return bitwise_count(values).astype(np.int64)
    counts = np.zeros(values.shape, dtype=np.int64)  # pragma: no cover - numpy<2
    for bit in range(64):  # pragma: no cover - numpy<2
        counts += ((values >> np.uint64(bit)) & np.uint64(1)).astype(np.int64)
    return counts  # pragma: no cover - numpy<2


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class WorkerStats:
    """Per-worker training telemetry returned through the result queue."""

    worker_id: int
    batches: int
    samples: int
    wall_time_s: float
    mean_loss: float
    losses: list[float]
    active_neurons: list[int]
    active_weights: list[int]
    batch_sizes: list[int]
    rebuilds: int
    # Sorted unique output-neuron ids this worker updated at least once.
    footprint: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))


@dataclass
class ProcessConflictStats:
    """Cross-worker gradient-conflict measurements for one training run."""

    output_dim: int
    # Output neurons updated by >= 1 worker (from the shared writer bitmask).
    neurons_updated: int
    # Output neurons updated by >= 2 distinct workers over the whole run.
    neurons_contested: int
    # Conflict analysis treating each worker's whole-run footprint as one
    # update set (the pairwise-overlap view of the same data).
    footprint_report: ConflictReport
    # Batch updates applied per worker, read back from the shared counter
    # array — the through-shared-memory cross-check of WorkerStats.batches.
    worker_update_counts: list[int] = field(default_factory=list)

    @property
    def contested_fraction(self) -> float:
        """Fraction of updated neurons touched by two or more workers."""
        return self.neurons_contested / max(self.neurons_updated, 1)


@dataclass
class ProcessTrainingReport:
    """Outcome of one :class:`ProcessHogwildTrainer` run."""

    num_processes: int
    start_method: str
    wall_time_s: float
    samples: int
    worker_stats: list[WorkerStats]
    conflict: ProcessConflictStats | None
    # Merged per-batch records (round-robin across workers in multi-process
    # runs); ``epoch_accuracy`` carries the parent's end-of-run evaluation.
    history: "TrainingHistory"
    # CPU seconds consumed by the measured training phase only (the parent
    # for inline runs, the reaped workers for multi-process runs) — the
    # same window ``wall_time_s`` covers, so utilisation ratios are honest.
    cpu_time_s: float = 0.0

    @property
    def samples_per_sec(self) -> float:
        return self.samples / max(self.wall_time_s, 1e-9)

    def mean_loss(self) -> float:
        losses = [loss for stats in self.worker_stats for loss in stats.losses]
        return float(np.mean(losses)) if losses else 0.0

    def final_accuracy(self) -> float | None:
        return self.history.final_accuracy()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _iter_worker_batches(payload: dict, network: SlideNetwork):
    """Yield this worker's batches for every epoch, deterministically.

    ``shards`` plans stream disjoint :class:`ShardedDataset` shards (one
    resident at a time); ``examples`` plans shuffle a materialised list with
    the worker's private generator, mirroring ``SlideTrainer``'s batching.
    """
    data = payload["data"]
    training = payload["training"]
    batch_size = int(training["batch_size"])
    epochs = int(training["epochs"])
    shuffle = bool(training["shuffle"])
    if data["kind"] == "shards":
        # All workers carry the same group list and rotate through it in
        # lockstep ``(worker_id + epoch) % N``: within any epoch index the
        # groups are disjoint across workers, while over epochs each worker
        # streams the whole dataset — the usual data-parallel re-sharding,
        # without any cross-process coordination.
        groups: list[list[int]] = data["groups"]
        worker_id = int(data["worker_id"])
        for epoch in range(epochs):
            group = groups[(worker_id + epoch) % len(groups)]
            dataset = ShardedDataset(
                data["cache_dir"], seed=int(data["seed"]), shard_subset=group
            )
            yield from dataset.iter_batches(
                batch_size, epoch=epoch, shuffle=shuffle, release=True
            )
            dataset.close()
        return
    examples: list[SparseExample] = data["examples"]
    rng = derive_rng(int(data["seed"]), stream=31)
    for _epoch in range(epochs):
        order = np.arange(len(examples))
        if shuffle:
            rng.shuffle(order)
        for start in range(0, len(examples), batch_size):
            chunk = [examples[int(i)] for i in order[start : start + batch_size]]
            if not chunk:
                continue
            yield SparseBatch.from_examples(
                chunk,
                feature_dim=network.input_dim,
                label_dim=network.output_dim,
            )


def _run_worker(payload: dict) -> WorkerStats:
    worker_id = int(payload["worker_id"])
    store = SharedParamStore.attach(payload["manifest"])
    network: SlideNetwork | None = None
    optimizer: Optimizer | None = None
    try:
        network = SlideNetwork(network_config_from_dict(payload["network_config"]))
        optimizer = make_optimizer(
            optimizer_config_from_dict(payload["optimizer_config"])
        )
        for layer in network.layers:
            layer.register_parameters(optimizer)
        # Shared moments decay/accumulate at the *global* update rate (all
        # workers write them); pace this worker's Adam bias correction to
        # match rather than to its local step count.
        optimizer.step_stride = int(payload.get("step_stride", 1))
        bind_network(network, optimizer, store)
        # The constructor hashed the worker's *random* init; re-hash the
        # shared weights so this worker's private LSH index reflects the
        # actual model before the first batch.
        network.rebuild_all_tables()

        writer_mask = store[_WRITER_MASK]
        worker_updates = store[_WORKER_UPDATES]
        worker_bit = np.uint64(1 << worker_id)

        losses: list[float] = []
        active_neurons: list[int] = []
        active_weights: list[int] = []
        batch_sizes: list[int] = []
        footprint_chunks: list[np.ndarray] = []
        samples = 0
        start = time.perf_counter()
        for batch in _iter_worker_batches(payload, network):
            metrics = network.train_batch(batch, optimizer, hogwild=False)
            losses.append(float(metrics["loss"]))
            active_neurons.append(int(metrics["active_neurons"]))
            active_weights.append(int(metrics["active_weights"]))
            batch_sizes.append(int(metrics["batch_size"]))
            samples += int(metrics["batch_size"])
            rows = network.output_layer.last_update_rows
            if rows is not None and rows.size:
                # Lock-free conflict stamp: OR this worker's bit into the
                # shared per-neuron writer mask.  The read-modify-write can
                # race with other workers (same trade-off as the gradient
                # updates themselves), so the mask is a floor, not a census.
                writer_mask[rows] |= worker_bit
                footprint_chunks.append(np.asarray(rows, dtype=np.int64))
            worker_updates[worker_id] += 1
        wall = time.perf_counter() - start

        footprint = (
            np.unique(np.concatenate(footprint_chunks))
            if footprint_chunks
            else np.zeros(0, dtype=np.int64)
        )
        return WorkerStats(
            worker_id=worker_id,
            batches=len(losses),
            samples=samples,
            wall_time_s=wall,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            losses=losses,
            active_neurons=active_neurons,
            active_weights=active_weights,
            batch_sizes=batch_sizes,
            rebuilds=sum(layer.num_rebuilds for layer in network.layers),
            footprint=footprint,
        )
    finally:
        try:
            if network is not None and optimizer is not None:
                # Drop every view into the store before closing it: ndarray
                # views keep the underlying mmap exported, and close() would
                # refuse while exports exist.
                unbind_network(network, optimizer, store)
        finally:
            store.close()


def _worker_entry(payload: dict, result_queue) -> None:
    """Top-level process target (importable, so ``spawn`` can pickle it)."""
    worker_id = int(payload["worker_id"])
    try:
        stats = _run_worker(payload)
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        result_queue.put(
            {
                "status": "error",
                "worker_id": worker_id,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
        return
    result_queue.put({"status": "ok", "worker_id": worker_id, "stats": stats})


# ----------------------------------------------------------------------
# Trainer
# ----------------------------------------------------------------------
class ProcessHogwildTrainer:
    """Asynchronous multi-process SLIDE training over shared parameters.

    Each of ``num_processes`` workers builds its own :class:`SlideNetwork`
    (private LSH tables, private rebuild schedule, private RNG streams),
    binds the network's weights/biases and the optimiser's moment buffers to
    the parent's shared-memory blocks, and trains on a disjoint slice of the
    data — whole :class:`~repro.data.shards.ShardedDataset` shards when the
    input is a shard cache with enough shards, otherwise a deterministic
    round-robin split of a materialised example list.  Updates land lock-free
    (HOGWILD); the run reports measured cross-worker gradient conflicts.

    ``num_processes=1`` runs inline through ``SlideTrainer(hogwild=False)``
    and therefore stays bit-for-bit identical to the fused synchronous path.
    """

    def __init__(
        self,
        network: SlideNetwork,
        training: TrainingConfig,
        num_processes: int = 1,
        start_method: str | None = None,
        join_timeout: float | None = 60.0,
        prefix: str = "slide-hogwild",
    ) -> None:
        if not 1 <= num_processes <= MAX_PROCESSES:
            raise ValueError(f"num_processes must lie in [1, {MAX_PROCESSES}]")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available on this platform"
            )
        self.network = network
        self.training = training
        self.num_processes = int(num_processes)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self.join_timeout = join_timeout
        self.prefix = prefix
        self.optimizer: Optimizer | None = None
        self.last_report: ProcessTrainingReport | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def train(
        self,
        train_examples,
        eval_examples=None,
    ) -> ProcessTrainingReport:
        """Train for ``training.epochs`` epochs; returns the run report."""
        if len(train_examples) == 0:
            raise ValueError("train_examples must not be empty")
        if self.num_processes == 1:
            report = self._train_inline(train_examples, eval_examples)
        else:
            report = self._train_processes(train_examples, eval_examples)
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    # Single-process deterministic fallback
    # ------------------------------------------------------------------
    def _train_inline(self, train_examples, eval_examples) -> ProcessTrainingReport:
        from repro.core.trainer import SlideTrainer

        trainer = SlideTrainer(self.network, self.training, hogwild=False)
        # Evaluation stays outside the timed region on every path: the
        # multi-process run evaluates once in the parent after the wall
        # clock stops, so the 1-process baseline must not pay per-epoch
        # eval time inside its measurement either (it would inflate every
        # speedup_vs_1 downstream).  CPU accounting covers the same window.
        cpu_before = _cpu_seconds(resource.RUSAGE_SELF)
        start = time.perf_counter()
        history = trainer.train(train_examples, None)
        wall = time.perf_counter() - start
        cpu_time = _cpu_seconds(resource.RUSAGE_SELF) - cpu_before
        if eval_examples is not None and len(eval_examples):
            from repro.core.inference import evaluate_precision_at_1

            history.epoch_accuracy.append(
                evaluate_precision_at_1(self.network, eval_examples)
            )
        self.optimizer = trainer.optimizer
        records = history.records
        stats = WorkerStats(
            worker_id=0,
            batches=len(records),
            samples=sum(r.batch_size for r in records),
            wall_time_s=wall,
            mean_loss=float(np.mean([r.loss for r in records])) if records else 0.0,
            losses=[r.loss for r in records],
            active_neurons=[r.active_neurons for r in records],
            active_weights=[r.active_weights for r in records],
            batch_sizes=[r.batch_size for r in records],
            rebuilds=sum(layer.num_rebuilds for layer in self.network.layers),
        )
        return ProcessTrainingReport(
            num_processes=1,
            start_method="inline",
            wall_time_s=wall,
            samples=stats.samples,
            worker_stats=[stats],
            conflict=None,
            history=history,
            cpu_time_s=cpu_time,
        )

    # ------------------------------------------------------------------
    # Multi-process path
    # ------------------------------------------------------------------
    def _worker_seed(self, worker_id: int) -> int:
        return (int(self.training.seed) * 1_000_003 + 7919 * (worker_id + 1)) & 0x7FFFFFFF

    def _worker_network_config(self, worker_id: int):
        """Per-worker network config: distinct seed, rescaled rebuild cadence.

        The seed offset decorrelates the workers' hash functions and random
        padding.  The rebuild schedule is expressed in *local* iterations but
        each worker only sees ``1/N`` of the global update stream, so its
        periods are divided by ``N`` — keeping the hash tables as fresh,
        relative to parameter movement, as a single-process run's.
        """
        config = self.network.config
        layers = []
        for layer in config.layers:
            rebuild = layer.rebuild
            scaled = replace(
                rebuild,
                initial_period=max(1, rebuild.initial_period // self.num_processes),
                max_period=max(1, rebuild.max_period // self.num_processes),
            )
            layers.append(replace(layer, rebuild=scaled))
        return replace(
            config,
            layers=tuple(layers),
            seed=int(config.seed) + 7919 * (worker_id + 1),
        )

    def _data_plans(self, train_examples) -> list[dict[str, object]]:
        """One picklable data-slice description per worker (disjoint, total)."""
        plans: list[dict[str, object]] = []
        if (
            isinstance(train_examples, ShardedDataset)
            and train_examples.num_shards >= self.num_processes
        ):
            assignment = train_examples.assign_shards(self.num_processes)
            for worker_id in range(self.num_processes):
                plans.append(
                    {
                        "kind": "shards",
                        "cache_dir": str(train_examples.cache_dir),
                        "groups": assignment,
                        "worker_id": worker_id,
                        "seed": self._worker_seed(worker_id),
                    }
                )
            return plans
        order = derive_rng(self.training.seed, stream=31).permutation(
            len(train_examples)
        )
        for worker_id in range(self.num_processes):
            indices = order[worker_id :: self.num_processes]
            plans.append(
                {
                    "kind": "examples",
                    "examples": [train_examples[int(i)] for i in indices],
                    "seed": self._worker_seed(worker_id),
                }
            )
        return plans

    def _collect(self, processes, result_queue) -> list[WorkerStats]:
        pending = set(range(self.num_processes))
        stats: dict[int, WorkerStats] = {}
        failures: list[str] = []
        while pending:
            try:
                message = result_queue.get(timeout=0.5)
            except queue_module.Empty:
                for worker_id, process in enumerate(processes):
                    if (
                        worker_id in pending
                        and not process.is_alive()
                        and process.exitcode not in (0, None)
                    ):
                        raise RuntimeError(
                            f"worker {worker_id} died with exit code "
                            f"{process.exitcode} before reporting a result"
                        )
                continue
            worker_id = int(message["worker_id"])
            pending.discard(worker_id)
            if message["status"] == "ok":
                stats[worker_id] = message["stats"]
            else:
                failures.append(
                    f"worker {worker_id}: {message['error']}\n{message['traceback']}"
                )
        for process in processes:
            process.join(self.join_timeout)
        if failures:
            raise RuntimeError(
                "process HOGWILD worker failure(s):\n" + "\n".join(failures)
            )
        return [stats[worker_id] for worker_id in sorted(stats)]

    def _merge_history(self, worker_stats: list[WorkerStats]) -> "TrainingHistory":
        """Round-robin the workers' per-batch records into one history.

        Iteration numbers reflect the merged order (an *approximation* of the
        true global interleaving, which is scheduler-dependent); per-record
        wall time is the worker's average seconds per batch.
        """
        from repro.core.trainer import IterationRecord, TrainingHistory

        history = TrainingHistory()
        per_batch_time = {
            stats.worker_id: stats.wall_time_s / max(stats.batches, 1)
            for stats in worker_stats
        }
        iteration = 0
        depth = max((stats.batches for stats in worker_stats), default=0)
        for batch_index in range(depth):
            for stats in worker_stats:
                if batch_index >= stats.batches:
                    continue
                iteration += 1
                history.records.append(
                    IterationRecord(
                        iteration=iteration,
                        loss=stats.losses[batch_index],
                        batch_size=stats.batch_sizes[batch_index],
                        active_neurons=stats.active_neurons[batch_index],
                        active_weights=stats.active_weights[batch_index],
                        wall_time_s=per_batch_time[stats.worker_id],
                    )
                )
        return history

    def _conflict_stats(
        self, store: SharedParamStore, worker_stats: list[WorkerStats]
    ) -> ProcessConflictStats:
        counts = _popcount(store[_WRITER_MASK])
        footprints = [np.asarray(stats.footprint, dtype=np.int64) for stats in worker_stats]
        return ProcessConflictStats(
            output_dim=self.network.output_dim,
            neurons_updated=int(np.count_nonzero(counts)),
            neurons_contested=int(np.count_nonzero(counts >= 2)),
            footprint_report=analyze_update_conflicts(
                footprints, self.network.output_dim
            ),
            worker_update_counts=[int(c) for c in store[_WORKER_UPDATES]],
        )

    def _train_processes(self, train_examples, eval_examples) -> ProcessTrainingReport:
        optimizer = self.network.build_optimizer(self.training)
        self.optimizer = optimizer
        arrays = network_state_arrays(self.network, optimizer)
        arrays[_WRITER_MASK] = np.zeros(self.network.output_dim, dtype=np.uint64)
        arrays[_WORKER_UPDATES] = np.zeros(self.num_processes, dtype=np.int64)
        store = SharedParamStore.create(arrays, prefix=self.prefix)
        context = mp.get_context(self.start_method)
        processes: list = []
        try:
            bind_network(self.network, optimizer, store)
            plans = self._data_plans(train_examples)
            manifest = store.manifest()
            worker_optimizer = optimizer.to_config()
            if worker_optimizer.name == "adam" and worker_optimizer.update_clip is None:
                worker_optimizer = replace(
                    worker_optimizer, update_clip=DEFAULT_UPDATE_CLIP
                )
            optimizer_config = optimizer_config_to_dict(worker_optimizer)
            training_spec = {
                "batch_size": int(self.training.batch_size),
                "epochs": int(self.training.epochs),
                "shuffle": bool(self.training.shuffle),
            }
            result_queue = context.Queue()
            # RUSAGE_CHILDREN accounts reaped children only; _collect joins
            # every worker before returning, so the delta below covers
            # exactly the workers' lifetimes.
            cpu_before = _cpu_seconds(resource.RUSAGE_CHILDREN)
            start = time.perf_counter()
            for worker_id, plan in enumerate(plans):
                worker_config = self._worker_network_config(worker_id)
                payload = {
                    "worker_id": worker_id,
                    "manifest": manifest,
                    "network_config": network_config_to_dict(worker_config),
                    "optimizer_config": optimizer_config,
                    "training": training_spec,
                    "data": plan,
                    "step_stride": self.num_processes,
                }
                process = context.Process(
                    target=_worker_entry,
                    args=(payload, result_queue),
                    name=f"{self.prefix}-{worker_id}",
                    daemon=True,
                )
                process.start()
                processes.append(process)
            worker_stats = self._collect(processes, result_queue)
            wall = time.perf_counter() - start
            cpu_time = _cpu_seconds(resource.RUSAGE_CHILDREN) - cpu_before
            conflict = self._conflict_stats(store, worker_stats)
            # The shared moments experienced one decay/accumulate cycle per
            # worker batch; stamp that global count onto the adopted
            # optimiser so bias correction (and any checkpoint/resume) sees
            # mature moments with a mature step count, not t=0.
            optimizer.step_count = sum(stats.batches for stats in worker_stats)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(5.0)
            unbind_network(self.network, optimizer, store)
            store.close()
            store.unlink()

        # Workers trained against their own tables; re-hash the parent's
        # index over the final shared weights before any further use.
        self.network.rebuild_all_tables()
        history = self._merge_history(worker_stats)
        if eval_examples is not None and len(eval_examples):
            from repro.core.inference import evaluate_precision_at_1

            history.epoch_accuracy.append(
                evaluate_precision_at_1(self.network, eval_examples)
            )
        return ProcessTrainingReport(
            num_processes=self.num_processes,
            start_method=self.start_method,
            wall_time_s=wall,
            samples=sum(stats.samples for stats in worker_stats),
            worker_stats=worker_stats,
            conflict=conflict,
            history=history,
            cpu_time_s=cpu_time,
        )
