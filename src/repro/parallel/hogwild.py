"""HOGWILD-style asynchronous gradient accumulation, simulated explicitly.

The reference SLIDE implementation runs one OpenMP thread per sample in a
batch; every thread computes its sample's sparse gradient against a snapshot
of the weights and pushes the update without locks.  Two properties matter
for convergence (Recht et al., 2011):

1. gradients are computed against *stale* weights (the snapshot taken before
   any of the batch's updates landed);
2. overlapping updates are resolved in arbitrary order.

``HogwildSimulator`` reproduces exactly that execution model on top of a
:class:`~repro.core.network.SlideNetwork` — gradients for the whole batch are
computed against the pre-batch snapshot, then applied in a random
(adversarially shuffled) order — and reports the conflict statistics of every
step, so the claim "sparse updates rarely collide" is measured rather than
assumed.

The simulator deliberately stays on the *per-sample* gradient primitives
(``compute_sample_gradient`` / ``apply_sample_gradient``): the batched
synchronous kernels in :mod:`repro.kernels` fuse the whole batch into one
accumulated update per layer, which has no meaningful asynchronous execution
to simulate.  Keeping this path per-sample is also what keeps HOGWILD
training bit-compatible across releases.

**Scope: this is a GIL-bound simulator, not a scaling mechanism.**  Both
phases run on the calling thread of a single Python process; adding CPU
cores cannot speed it up, and it must never be used to measure the paper's
Figure 9 / Table 2 core-scalability claims.  For genuine process-level
parallelism — shared-memory parameters, lock-free cross-process updates,
measured wall-clock speedup — use
:class:`repro.parallel.sharedmem.ProcessHogwildTrainer`.  The simulator's
job is the complementary one: isolating and measuring the *semantics* of
asynchrony (staleness, reorderings, conflicts) deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.network import SlideNetwork
from repro.optim.base import Optimizer
from repro.parallel.conflicts import ConflictReport, analyze_update_conflicts
from repro.types import SparseBatch
from repro.utils.rng import derive_rng

__all__ = ["HogwildStepReport", "HogwildSimulator"]


@dataclass
class HogwildStepReport:
    """Outcome of one asynchronous batch step."""

    loss: float
    conflict_report: ConflictReport
    active_neurons: int
    active_weights: int


class HogwildSimulator:
    """Simulates lock-free per-sample gradient application (single process).

    The simulator differs from ``SlideNetwork.train_batch(hogwild=True)`` in
    one deliberate way: *all* gradients are computed against the same weight
    snapshot (maximum staleness — the worst case for asynchrony) and then
    applied in a random order.  This isolates the effect the HOGWILD theory is
    about, and is what the conflict/convergence ablation tests exercise.

    It executes sequentially under the GIL and therefore cannot exhibit (or
    measure) core scaling — see
    :class:`repro.parallel.sharedmem.ProcessHogwildTrainer` for the
    multi-process trainer that does.
    """

    def __init__(self, network: SlideNetwork, optimizer: Optimizer, seed: int = 0) -> None:
        self.network = network
        self.optimizer = optimizer
        self._rng = derive_rng(seed, stream=71)
        self.step_reports: list[HogwildStepReport] = []

    def step(self, batch: SparseBatch) -> HogwildStepReport:
        """One maximally-stale asynchronous batch update."""
        self.optimizer.begin_step()

        # Phase 1: every "thread" computes its gradient against the same
        # pre-update snapshot.  (compute_sample_gradient reads the live
        # weights; nothing is applied until phase 2, so the snapshot holds.)
        gradients = [self.network.compute_sample_gradient(example) for example in batch]

        # Phase 2: updates land in an arbitrary order, without locks.
        order = self._rng.permutation(len(gradients))
        for sample_idx in order:
            self.network.apply_sample_gradient(gradients[sample_idx], self.optimizer)

        self.network.iteration += 1
        for layer in self.network.layers:
            layer.maybe_rebuild(self.network.iteration)

        output_active = [g.layer_states[-1].active_out for g in gradients]
        report = HogwildStepReport(
            loss=float(np.mean([g.loss for g in gradients])) if gradients else 0.0,
            conflict_report=analyze_update_conflicts(
                output_active, self.network.output_dim
            ),
            active_neurons=sum(
                s.num_active for g in gradients for s in g.layer_states
            ),
            active_weights=sum(
                s.num_active_weights for g in gradients for s in g.layer_states
            ),
        )
        self.step_reports.append(report)
        return report

    def mean_conflict_fraction(self) -> float:
        """Average conflicted-update fraction over all recorded steps."""
        if not self.step_reports:
            return 0.0
        return float(
            np.mean([r.conflict_report.conflicted_update_fraction for r in self.step_reports])
        )
