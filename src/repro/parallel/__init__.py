"""Parallelism substrate, in two tiers.

**Simulators (thread-based, GIL-bound)** — :class:`HogwildSimulator` and
:class:`BatchParallelExecutor` reproduce SLIDE's asynchronous *update
semantics* (staleness, arbitrary ordering, conflict behaviour) inside one
Python process.  They are measurement instruments for the HOGWILD theory,
not a route to core scaling: the interpreter serialises their bookkeeping no
matter how many threads run.

**Real process parallelism** — :mod:`repro.parallel.sharedmem` places the
model's parameters (and optimiser moments) in ``multiprocessing``
shared-memory blocks and trains with ``N`` worker *processes* performing
lock-free asynchronous updates, each owning a private LSH index.  This is
the execution model behind the paper's Figure 9 / Table 2 scalability
claims; ``benchmarks/bench_fig9_scalability.py`` measures it for real.

:mod:`repro.parallel.conflicts` quantifies update overlap for both tiers.
"""

from repro.parallel.conflicts import ConflictReport, analyze_update_conflicts
from repro.parallel.hogwild import HogwildSimulator, HogwildStepReport
from repro.parallel.executor import BatchParallelExecutor, WorkerPool
from repro.parallel.sharedmem import (
    ProcessConflictStats,
    ProcessHogwildTrainer,
    ProcessTrainingReport,
    SharedParamStore,
    WorkerStats,
)

__all__ = [
    "ConflictReport",
    "analyze_update_conflicts",
    "HogwildSimulator",
    "HogwildStepReport",
    "BatchParallelExecutor",
    "WorkerPool",
    "SharedParamStore",
    "ProcessHogwildTrainer",
    "ProcessTrainingReport",
    "ProcessConflictStats",
    "WorkerStats",
]
