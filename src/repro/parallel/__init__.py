"""Parallelism substrate: HOGWILD-style asynchronous accumulation, update
conflict analysis, and a batch-parallel executor."""

from repro.parallel.conflicts import ConflictReport, analyze_update_conflicts
from repro.parallel.hogwild import HogwildSimulator, HogwildStepReport
from repro.parallel.executor import BatchParallelExecutor, WorkerPool

__all__ = [
    "ConflictReport",
    "analyze_update_conflicts",
    "HogwildSimulator",
    "HogwildStepReport",
    "BatchParallelExecutor",
    "WorkerPool",
]
