"""Thread-pool execution of per-sample gradient computation.

SLIDE assigns each sample of a batch to its own OpenMP thread.  The Python
equivalent uses a ``ThreadPoolExecutor``: gradient computation is dominated
by NumPy kernels that release the GIL, so per-sample work genuinely overlaps,
while the final (tiny) gradient application stays on the calling thread to
keep the update semantics identical to the sequential path.

**Scope: thread-based, GIL-bound.**  Only the time spent inside GIL-releasing
NumPy kernels overlaps; the per-sample Python bookkeeping (hashing dispatch,
gather setup, gradient application) serialises on the interpreter lock, so
this executor is a *fidelity* substrate — it reproduces the execution shape,
not the speedup.  Measured multi-core scaling (real wall-clock, Figure 9 /
Table 2) comes from the process-level trainer in
:mod:`repro.parallel.sharedmem`; the analytical projections at the paper's
44-core scale come from the device model in :mod:`repro.perf`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.network import SampleGradient, SlideNetwork
from repro.optim.base import Optimizer
from repro.types import SparseBatch

__all__ = ["BatchParallelExecutor", "WorkerPool"]


class WorkerPool:
    """A pool of named, long-lived worker threads.

    ``BatchParallelExecutor`` fans a *batch* out over short-lived tasks; the
    serving path instead needs ``N`` workers that each run a loop for the
    lifetime of the server (pull micro-batch, run inference, repeat).  This
    class owns those threads: it starts ``num_workers`` copies of a loop
    function, tracks liveness, and joins them on shutdown.  NumPy kernels
    release the GIL, so worker loops dominated by matrix work genuinely
    overlap — the same property :class:`BatchParallelExecutor` relies on.

    A worker loop that raises does not die silently: the pool records the
    first exception (thread start order breaks ties) and re-raises it from
    :meth:`join`, so a crashed worker surfaces at shutdown instead of
    leaving a dead thread behind an apparently healthy pool.
    """

    def __init__(self, num_workers: int, name: str = "worker") -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)
        self.name = name
        self._threads: list[threading.Thread] = []
        self._error: BaseException | None = None
        self._error_lock = threading.Lock()

    def start(self, loop: Callable[[int], None]) -> None:
        """Spawn ``num_workers`` threads, each running ``loop(worker_index)``."""
        if self._threads:
            raise RuntimeError("pool already started")

        def guarded(index: int) -> None:
            try:
                loop(index)
            except BaseException as exc:  # noqa: BLE001 - re-raised from join()
                with self._error_lock:
                    if self._error is None:
                        self._error = exc

        for index in range(self.num_workers):
            thread = threading.Thread(
                target=guarded,
                args=(index,),
                name=f"{self.name}-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait (up to ``timeout`` seconds per thread) for every worker.

        Re-raises the first exception any worker loop raised (clearing it,
        so a subsequent ``join`` does not raise again).
        """
        for thread in self._threads:
            thread.join(timeout=timeout)
        with self._error_lock:
            error, self._error = self._error, None
        if error is not None:
            raise error

    @property
    def started(self) -> bool:
        return bool(self._threads)

    def alive_count(self) -> int:
        """Number of worker threads still running."""
        return sum(1 for thread in self._threads if thread.is_alive())


@dataclass
class _BatchOutcome:
    loss: float
    active_neurons: int
    active_weights: int


class BatchParallelExecutor:
    """Compute per-sample gradients on a thread pool, apply them serially."""

    def __init__(self, network: SlideNetwork, optimizer: Optimizer, num_threads: int = 4) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        self.network = network
        self.optimizer = optimizer
        self.num_threads = int(num_threads)

    def train_batch(self, batch: SparseBatch) -> dict[str, float]:
        """One batch step with thread-parallel gradient computation."""
        self.optimizer.begin_step()
        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            gradients: list[SampleGradient] = list(
                pool.map(self.network.compute_sample_gradient, list(batch))
            )

        for gradient in gradients:
            for layer, state, w_grad, b_grad in zip(
                self.network.layers,
                gradient.layer_states,
                gradient.weight_grads,
                gradient.bias_grads,
            ):
                layer.apply_gradients(self.optimizer, state, w_grad, b_grad)

        self.network.iteration += 1
        for layer in self.network.layers:
            layer.maybe_rebuild(self.network.iteration)

        outcome = _BatchOutcome(
            loss=float(np.mean([g.loss for g in gradients])) if gradients else 0.0,
            active_neurons=sum(s.num_active for g in gradients for s in g.layer_states),
            active_weights=sum(
                s.num_active_weights for g in gradients for s in g.layer_states
            ),
        )
        return {
            "loss": outcome.loss,
            "active_neurons": float(outcome.active_neurons),
            "active_weights": float(outcome.active_weights),
            "batch_size": float(len(batch)),
            "num_threads": float(self.num_threads),
        }
