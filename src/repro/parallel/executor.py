"""Thread-pool execution of per-sample gradient computation.

SLIDE assigns each sample of a batch to its own OpenMP thread.  The Python
equivalent uses a ``ThreadPoolExecutor``: gradient computation is dominated
by NumPy kernels that release the GIL, so per-sample work genuinely overlaps,
while the final (tiny) gradient application stays on the calling thread to
keep the update semantics identical to the sequential path.

This substrate exists for fidelity and for the scalability experiments'
*measured work* inputs; the headline scaling numbers of Figure 9 come from
the analytical device model in :mod:`repro.perf` (see DESIGN.md for why).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.network import SampleGradient, SlideNetwork
from repro.optim.base import Optimizer
from repro.types import SparseBatch

__all__ = ["BatchParallelExecutor"]


@dataclass
class _BatchOutcome:
    loss: float
    active_neurons: int
    active_weights: int


class BatchParallelExecutor:
    """Compute per-sample gradients on a thread pool, apply them serially."""

    def __init__(self, network: SlideNetwork, optimizer: Optimizer, num_threads: int = 4) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        self.network = network
        self.optimizer = optimizer
        self.num_threads = int(num_threads)

    def train_batch(self, batch: SparseBatch) -> dict[str, float]:
        """One batch step with thread-parallel gradient computation."""
        self.optimizer.begin_step()
        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            gradients: list[SampleGradient] = list(
                pool.map(self.network.compute_sample_gradient, list(batch))
            )

        for gradient in gradients:
            for layer, state, w_grad, b_grad in zip(
                self.network.layers,
                gradient.layer_states,
                gradient.weight_grads,
                gradient.bias_grads,
            ):
                layer.apply_gradients(self.optimizer, state, w_grad, b_grad)

        self.network.iteration += 1
        for layer in self.network.layers:
            layer.maybe_rebuild(self.network.iteration)

        outcome = _BatchOutcome(
            loss=float(np.mean([g.loss for g in gradients])) if gradients else 0.0,
            active_neurons=sum(s.num_active for g in gradients for s in g.layer_states),
            active_weights=sum(
                s.num_active_weights for g in gradients for s in g.layer_states
            ),
        )
        return {
            "loss": outcome.loss,
            "active_neurons": float(outcome.active_neurons),
            "active_weights": float(outcome.active_weights),
            "batch_size": float(len(batch)),
            "num_threads": float(self.num_threads),
        }
