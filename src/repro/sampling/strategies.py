"""The three active-neuron sampling strategies (paper Section 4.1).

Given the per-table candidate buckets returned by
:meth:`repro.lsh.index.LSHIndex.query`, each strategy decides which neuron
ids become *active* for the current input:

* **Vanilla** — probe tables one at a time in random order, stop as soon as
  ``beta`` distinct neurons have been collected.  ``O(beta)`` time, lowest
  quality.
* **TopK** — aggregate candidate frequencies across all ``L`` tables, keep the
  ``beta`` most frequent.  Highest quality, pays a sort.
* **Hard thresholding** — keep every candidate that appears in at least ``m``
  tables; avoids the sort while still filtering low-collision candidates.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.config import SamplingConfig
from repro.lsh.index import LSHIndex, QueryResult
from repro.types import IntArray
from repro.utils.topk import top_k_indices

__all__ = [
    "SamplingStrategy",
    "VanillaSampling",
    "TopKSampling",
    "HardThresholdSampling",
    "make_sampling_strategy",
]


class SamplingStrategy(abc.ABC):
    """Turns LSH query results into a set of active neuron ids."""

    name: str = "base"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    @abc.abstractmethod
    def sample(
        self,
        index: LSHIndex,
        query_vector,
        target_active: int | None,
    ) -> IntArray:
        """Return a unique array of active neuron ids for ``query_vector``."""

    # Shared helper: strategies that already have a QueryResult can reuse it.
    @abc.abstractmethod
    def select_from_result(
        self, result: QueryResult, target_active: int | None
    ) -> IntArray:
        """Select ids from an existing :class:`QueryResult`."""


class VanillaSampling(SamplingStrategy):
    """Random-table probing until ``beta`` neurons are collected.

    The time complexity is ``O(beta)`` because each additional table probe is
    a single bucket lookup and the loop stops as soon as enough candidates
    have been gathered.
    """

    name = "vanilla"

    def _collect(self, num_tables, get_bucket, target_active: int | None) -> IntArray:
        """Shared random-order early-stop collection loop.

        ``sample`` and ``select_from_result`` differ only in where buckets
        come from (a live table probe vs. a prefetched result); the RNG
        consumption — one table permutation plus one over-target subset draw
        — lives here so the two entry points stay draw-for-draw identical,
        which the batched-selection parity guarantees depend on.
        """
        order = self._rng.permutation(num_tables)
        collected: list[np.ndarray] = []
        count = 0
        for table_idx in order:
            bucket = get_bucket(int(table_idx))
            if bucket.size:
                collected.append(bucket)
                count = np.unique(np.concatenate(collected)).size
            if target_active is not None and count >= target_active:
                break
        if not collected:
            return np.zeros(0, dtype=np.int64)
        unique = np.unique(np.concatenate(collected))
        if target_active is not None and unique.size > target_active:
            # Keep a uniformly random subset so the expected size matches beta.
            keep = self._rng.choice(unique.size, size=target_active, replace=False)
            unique = np.sort(unique[keep])
        return unique.astype(np.int64)

    def sample(self, index: LSHIndex, query_vector, target_active: int | None) -> IntArray:
        codes = index.hash_family.hash_vector(query_vector)
        selected = self._collect(
            index.l,
            lambda table_idx: index.tables[table_idx].query(codes[table_idx]),
            target_active,
        )
        index.num_queries += 1
        return selected

    def select_from_result(self, result: QueryResult, target_active: int | None) -> IntArray:
        return self._collect(
            len(result.buckets),
            lambda table_idx: result.buckets[table_idx],
            target_active,
        )


class TopKSampling(SamplingStrategy):
    """Frequency aggregation across all tables, keep the top ``beta``."""

    name = "topk"

    def sample(self, index: LSHIndex, query_vector, target_active: int | None) -> IntArray:
        result = index.query(query_vector)
        return self.select_from_result(result, target_active)

    def select_from_result(self, result: QueryResult, target_active: int | None) -> IntArray:
        ids, counts = result.frequencies()
        if ids.size == 0:
            return ids
        if target_active is None or ids.size <= target_active:
            return np.sort(ids)
        keep = top_k_indices(counts.astype(np.float64), target_active)
        return np.sort(ids[keep]).astype(np.int64)


class HardThresholdSampling(SamplingStrategy):
    """Keep candidates appearing in at least ``m`` of the ``L`` tables."""

    name = "hard_threshold"

    def __init__(self, threshold: int = 2, rng: np.random.Generator | None = None) -> None:
        super().__init__(rng=rng)
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = int(threshold)

    def sample(self, index: LSHIndex, query_vector, target_active: int | None) -> IntArray:
        result = index.query(query_vector)
        return self.select_from_result(result, target_active)

    def select_from_result(self, result: QueryResult, target_active: int | None) -> IntArray:
        ids, counts = result.frequencies()
        if ids.size == 0:
            return ids
        selected = ids[counts >= self.threshold]
        if selected.size == 0:
            # Degrade gracefully: fall back to the most frequent candidates so
            # the layer never goes completely dark.
            keep = top_k_indices(counts.astype(np.float64), target_active or ids.size)
            selected = ids[keep]
        if target_active is not None and selected.size > target_active:
            keep = self._rng.choice(selected.size, size=target_active, replace=False)
            selected = selected[keep]
        return np.sort(selected).astype(np.int64)


def make_sampling_strategy(
    config: SamplingConfig, rng: np.random.Generator | None = None
) -> SamplingStrategy:
    """Instantiate the strategy described by a :class:`SamplingConfig`."""
    name = config.strategy.lower()
    if name == "vanilla":
        return VanillaSampling(rng=rng)
    if name == "topk":
        return TopKSampling(rng=rng)
    if name == "hard_threshold":
        return HardThresholdSampling(threshold=config.hard_threshold, rng=rng)
    raise ValueError(f"unknown sampling strategy {config.strategy!r}")
