"""Active-neuron sampling strategies (paper Section 4.1, Appendix B)."""

from repro.sampling.strategies import (
    SamplingStrategy,
    VanillaSampling,
    TopKSampling,
    HardThresholdSampling,
    make_sampling_strategy,
)
from repro.sampling.probability import (
    vanilla_selection_probability,
    hard_threshold_selection_probability,
    hard_threshold_curve,
)

__all__ = [
    "SamplingStrategy",
    "VanillaSampling",
    "TopKSampling",
    "HardThresholdSampling",
    "make_sampling_strategy",
    "vanilla_selection_probability",
    "hard_threshold_selection_probability",
    "hard_threshold_curve",
]
