"""Closed-form selection probabilities for the sampling strategies.

These are the formulas behind Equations (2) and (3) in the paper and the
trade-off curves of Figure 11.  They re-export the implementations in
:mod:`repro.hashing.collision` under sampling-centric names and add the
Figure 11 curve generator.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.collision import (
    hard_threshold_selection_probability,
    vanilla_selection_probability,
)

__all__ = [
    "vanilla_selection_probability",
    "hard_threshold_selection_probability",
    "hard_threshold_curve",
]


def hard_threshold_curve(
    k: int,
    l: int,
    m: int,
    collision_probabilities: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Selection probability as a function of collision probability.

    Reproduces one curve of Figure 11: for a frequency threshold ``m`` and
    ``L`` tables, evaluate ``Pr(selected)`` over a sweep of elementary-hash
    collision probabilities ``p``.

    Returns
    -------
    (p_values, selection_probabilities)
    """
    if collision_probabilities is None:
        collision_probabilities = np.linspace(0.1, 0.9, 17)
    p_values = np.asarray(collision_probabilities, dtype=np.float64)
    selected = np.array(
        [hard_threshold_selection_probability(p, k, l, m) for p in p_values]
    )
    return p_values, selected
