"""Optimiser interface shared by SLIDE layers and the dense baselines.

SLIDE's gradient updates are *sparse*: only the weights connecting active
neurons to active inputs change on a given step.  To exploit that, the
optimiser exposes both a dense ``step`` (used by the baselines) and a
``sparse_step`` that updates an arbitrary sub-block of a parameter, touching
only the corresponding slices of its internal state.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.types import FloatArray, IntArray

__all__ = ["Optimizer"]


class Optimizer(abc.ABC):
    """Keeps per-parameter state and applies (possibly sparse) updates."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self._state: dict[str, dict[str, FloatArray]] = {}
        # Global step counter; sparse and dense steps both advance it.
        self.step_count = 0
        # How far begin_step() advances the counter.  1 everywhere except
        # HOGWILD worker processes: N workers share the moment buffers, so
        # each buffer element sees ~N decay/accumulate cycles per *local*
        # step and bias correction should pace with the global rate.  The
        # process trainer sets this to its worker count.
        self.step_stride = 1

    # ------------------------------------------------------------------
    # Parameter registration
    # ------------------------------------------------------------------
    def register(self, name: str, shape: tuple[int, ...]) -> None:
        """Allocate state for a parameter named ``name`` with ``shape``."""
        if name in self._state:
            raise ValueError(f"parameter {name!r} already registered")
        self._state[name] = self._init_state(shape)

    def has_parameter(self, name: str) -> bool:
        return name in self._state

    def parameter_names(self) -> list[str]:
        """Names of every registered parameter (registration order)."""
        return list(self._state)

    @abc.abstractmethod
    def to_config(self):
        """The :class:`~repro.config.OptimizerConfig` this optimiser encodes.

        The inverse of :func:`repro.optim.factory.make_optimizer`; used by
        the checkpoint format so optimisers serialise themselves instead of
        callers switching on concrete types.
        """

    @abc.abstractmethod
    def _init_state(self, shape: tuple[int, ...]) -> dict[str, FloatArray]:
        """Create optimiser state arrays for a parameter of ``shape``."""

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def begin_step(self) -> None:
        """Advance the global step counter (call once per mini-batch)."""
        self.step_count += self.step_stride

    @abc.abstractmethod
    def step(self, name: str, param: FloatArray, grad: FloatArray) -> None:
        """Dense in-place update of ``param`` given its full gradient."""

    @abc.abstractmethod
    def sparse_step(
        self,
        name: str,
        param: FloatArray,
        rows: IntArray,
        cols: IntArray | None,
        grad_block: FloatArray,
    ) -> None:
        """In-place update of ``param[rows][:, cols]`` given its gradient block.

        When ``cols`` is ``None`` the update applies to whole rows (used for
        biases, which are one-dimensional).

        Callers use this in two patterns: HOGWILD training applies one small
        block per *sample* (many calls per ``begin_step``), while the batched
        synchronous kernels accumulate the whole micro-batch's gradient and
        apply one union-active-set block per layer per ``begin_step`` — the
        standard mini-batch semantics.  Implementations must therefore not
        assume any particular number of ``sparse_step`` calls per step.
        """

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def state_of(self, name: str) -> dict[str, FloatArray]:
        """Return the internal state arrays of a parameter (no copy)."""
        return self._state[name]

    def state_items(self) -> list[tuple[str, str, FloatArray]]:
        """Every state array as ``(param_name, state_key, array)`` triples.

        Registration order for parameters, insertion order for keys — a
        stable flat enumeration used by the shared-memory parameter store
        (:mod:`repro.parallel.sharedmem`) to place the optimiser's moment
        buffers alongside the weights they belong to.
        """
        return [
            (name, key, array)
            for name, state in self._state.items()
            for key, array in state.items()
        ]

    def set_state_array(self, name: str, key: str, array: FloatArray) -> None:
        """Rebind one state array to ``array`` (same shape, in place thereafter).

        The counterpart of :meth:`state_items` for attaching/detaching
        shared-memory backing: the new array must match the shape of the one
        it replaces, and subsequent ``step``/``sparse_step`` calls read and
        write through it.
        """
        current = self._state[name][key]
        if array.shape != current.shape:
            raise ValueError(
                f"state array {name!r}/{key!r} has shape {current.shape}; "
                f"cannot rebind to shape {array.shape}"
            )
        self._state[name][key] = array

    @staticmethod
    def _block_view(param: FloatArray, rows: IntArray, cols: IntArray | None):
        """Index helper returning a fancy-index tuple for a sub-block."""
        if cols is None:
            return (rows,)
        return np.ix_(rows, cols)
