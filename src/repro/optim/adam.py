"""Adam optimiser with sparse block updates.

The dense ``step`` is textbook Adam (Kingma & Ba, 2014).  ``sparse_step``
applies the same update rule to an arbitrary ``rows x cols`` block of a
parameter, touching only that block's first/second-moment state — this is
what lets SLIDE keep per-update cost proportional to the number of *active*
weights.

Bias correction uses the global step count.  Strictly speaking lazily-updated
Adam is a slight approximation of dense Adam (untouched coordinates do not
decay their moments), matching the behaviour of the reference SLIDE code and
of sparse Adam implementations in mainstream frameworks.

``update_clip`` (optional, off by default) bounds each parameter change to
``update_clip * learning_rate`` per element.  Lock-free multi-process
training shares the ``m``/``v`` buffers across workers; a racing gather/
scatter can pair a large first moment with a second moment whose
accumulation was lost, and ``m_hat / (sqrt(v_hat) + eps)`` is unbounded in
that state.  Clipping caps the damage of a torn moment pair at bounded
HOGWILD noise without touching the exact-Adam default path.
"""

from __future__ import annotations

import numpy as np

from repro.config import OptimizerConfig
from repro.optim.base import Optimizer
from repro.types import FloatArray, IntArray

__all__ = ["AdamOptimizer"]


class AdamOptimizer(Optimizer):
    """Adam with support for block-sparse updates."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        update_clip: float | None = None,
    ) -> None:
        super().__init__(learning_rate=learning_rate)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("beta1/beta2 must lie in [0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if update_clip is not None and update_clip <= 0:
            raise ValueError("update_clip must be positive when provided")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.update_clip = None if update_clip is None else float(update_clip)

    def _init_state(self, shape: tuple[int, ...]) -> dict[str, FloatArray]:
        return {
            "m": np.zeros(shape, dtype=np.float64),
            "v": np.zeros(shape, dtype=np.float64),
        }

    def to_config(self) -> OptimizerConfig:
        return OptimizerConfig(
            name="adam",
            learning_rate=self.learning_rate,
            beta1=self.beta1,
            beta2=self.beta2,
            epsilon=self.epsilon,
            update_clip=self.update_clip,
        )

    def _bias_correction(self) -> tuple[float, float]:
        t = max(self.step_count, 1)
        return 1.0 - self.beta1**t, 1.0 - self.beta2**t

    def _clip_delta(self, delta: FloatArray) -> FloatArray:
        """Bound each element of an update to ``update_clip * lr`` (in place)."""
        if self.update_clip is not None:
            bound = self.update_clip * self.learning_rate
            np.clip(delta, -bound, bound, out=delta)
        return delta

    def step(self, name: str, param: FloatArray, grad: FloatArray) -> None:
        state = self._state[name]
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * np.square(grad)
        bc1, bc2 = self._bias_correction()
        m_hat = m / bc1
        v_hat = v / bc2
        delta = self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        param -= self._clip_delta(delta)

    def sparse_step(
        self,
        name: str,
        param: FloatArray,
        rows: IntArray,
        cols: IntArray | None,
        grad_block: FloatArray,
    ) -> None:
        if rows.size == 0:
            return
        state = self._state[name]
        view = self._block_view(param, rows, cols)
        # The gathered blocks are fresh copies (fancy indexing), so the
        # moment updates can run in place on them before scattering back.
        m_block = state["m"][view]
        v_block = state["v"][view]
        m_block *= self.beta1
        m_block += (1.0 - self.beta1) * grad_block
        v_block *= self.beta2
        v_block += (1.0 - self.beta2) * np.square(grad_block)
        state["m"][view] = m_block
        state["v"][view] = v_block
        bc1, bc2 = self._bias_correction()
        m_hat = m_block / bc1
        v_hat = v_block / bc2
        delta = self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        param[view] = param[view] - self._clip_delta(delta)
