"""Build an optimiser from an :class:`~repro.config.OptimizerConfig`."""

from __future__ import annotations

from repro.config import OptimizerConfig
from repro.optim.adam import AdamOptimizer
from repro.optim.base import Optimizer
from repro.optim.sgd import SGDOptimizer

__all__ = ["make_optimizer"]


def make_optimizer(config: OptimizerConfig) -> Optimizer:
    """Instantiate the optimiser described by ``config``."""
    if config.name == "adam":
        return AdamOptimizer(
            learning_rate=config.learning_rate,
            beta1=config.beta1,
            beta2=config.beta2,
            epsilon=config.epsilon,
            update_clip=config.update_clip,
        )
    if config.name == "sgd":
        return SGDOptimizer(
            learning_rate=config.learning_rate, momentum=config.momentum
        )
    raise ValueError(f"unknown optimizer {config.name!r}")
