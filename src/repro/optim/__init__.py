"""Sparse-aware optimisers (the paper trains everything with Adam)."""

from repro.optim.base import Optimizer
from repro.optim.adam import AdamOptimizer
from repro.optim.sgd import SGDOptimizer
from repro.optim.factory import make_optimizer

__all__ = ["Optimizer", "AdamOptimizer", "SGDOptimizer", "make_optimizer"]
