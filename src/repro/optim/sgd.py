"""Stochastic gradient descent (optionally with momentum) with sparse blocks."""

from __future__ import annotations

import numpy as np

from repro.config import OptimizerConfig
from repro.optim.base import Optimizer
from repro.types import FloatArray, IntArray

__all__ = ["SGDOptimizer"]


class SGDOptimizer(Optimizer):
    """Plain SGD / heavy-ball momentum with block-sparse update support."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(learning_rate=learning_rate)
        if not 0 <= momentum < 1:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = float(momentum)

    def _init_state(self, shape: tuple[int, ...]) -> dict[str, FloatArray]:
        if self.momentum == 0.0:
            return {}
        return {"velocity": np.zeros(shape, dtype=np.float64)}

    def to_config(self) -> OptimizerConfig:
        return OptimizerConfig(
            name="sgd",
            learning_rate=self.learning_rate,
            momentum=self.momentum,
        )

    def step(self, name: str, param: FloatArray, grad: FloatArray) -> None:
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        velocity = self._state[name]["velocity"]
        velocity *= self.momentum
        velocity += grad
        param -= self.learning_rate * velocity

    def sparse_step(
        self,
        name: str,
        param: FloatArray,
        rows: IntArray,
        cols: IntArray | None,
        grad_block: FloatArray,
    ) -> None:
        if rows.size == 0:
            return
        view = self._block_view(param, rows, cols)
        if self.momentum == 0.0:
            param[view] = param[view] - self.learning_rate * grad_block
            return
        velocity = self._state[name]["velocity"]
        v_block = self.momentum * velocity[view] + grad_block
        velocity[view] = v_block
        param[view] = param[view] - self.learning_rate * v_block
