"""Plain-text rendering of tables and series for the benchmark harness.

The paper's artefacts are figures and tables; this reproduction prints the
same rows/series as aligned text so the benches' captured output can be
compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_comparison", "series_payload"]


def series_payload(
    series: Mapping[str, tuple[Iterable[float], Iterable[float]]],
    x_name: str,
    y_name: str,
) -> dict[str, dict[str, list[float]]]:
    """Convert ``{name: (xs, ys)}`` harness series into artifact-friendly
    ``{name: {x_name: [...], y_name: [...]}}`` with plain-float lists."""
    payload: dict[str, dict[str, list[float]]] = {}
    for name, (xs, ys) in series.items():
        payload[str(name)] = {
            x_name: [float(x) for x in np.asarray(list(xs), dtype=np.float64)],
            y_name: [float(y) for y in np.asarray(list(ys), dtype=np.float64)],
        }
    return payload


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of homogeneous dict rows as an aligned text table."""
    if not rows:
        return f"{title or 'table'}: (empty)"
    columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[idx]) for r in rendered)) for idx, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[idx]) for idx, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[idx].ljust(widths[idx]) for idx in range(len(columns))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    series: Mapping[str, tuple[Iterable[float], Iterable[float]]],
    title: str | None = None,
    max_points: int = 12,
) -> str:
    """Render named (x, y) series as rows of sampled points.

    Long series are down-sampled to ``max_points`` evenly spaced points so
    the output stays readable in bench logs.
    """
    lines = []
    if title:
        lines.append(title)
    for name, (xs, ys) in series.items():
        xs = np.asarray(list(xs), dtype=np.float64)
        ys = np.asarray(list(ys), dtype=np.float64)
        if xs.size != ys.size:
            raise ValueError(f"series {name!r}: x and y lengths differ")
        if xs.size == 0:
            lines.append(f"  {name}: (empty)")
            continue
        if xs.size > max_points:
            idx = np.linspace(0, xs.size - 1, max_points).round().astype(int)
            xs, ys = xs[idx], ys[idx]
        points = ", ".join(
            f"({_format_value(float(x))}, {_format_value(float(y))})" for x, y in zip(xs, ys)
        )
        lines.append(f"  {name} [{x_label} -> {y_label}]: {points}")
    return "\n".join(lines)


def format_comparison(
    paper_value: float,
    measured_value: float,
    label: str,
    unit: str = "",
) -> str:
    """One-line paper-vs-measured comparison used in EXPERIMENTS.md extracts."""
    unit_suffix = f" {unit}" if unit else ""
    return (
        f"{label}: paper={_format_value(paper_value)}{unit_suffix}, "
        f"measured={_format_value(measured_value)}{unit_suffix}"
    )
