"""Serving accuracy-vs-latency sweep over the sparse engine's active budget.

The serving-side counterpart of the paper's ``beta`` ablation: for a trained
network, sweep the :class:`~repro.serving.engine.SparseInferenceEngine`
active budget and record, per setting, precision@1 against the ground truth,
the gap to the exact dense engine, real per-request latency quantiles
(:class:`~repro.perf.latency.LatencyHistogram`) and throughput.  The dense
engine is included as the exact reference row, so the table reads as "how
much accuracy does each latency budget buy".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.network import SlideNetwork
from repro.perf.latency import LatencyHistogram
from repro.serving.engine import (
    DenseInferenceEngine,
    InferenceEngine,
    SparseInferenceEngine,
)
from repro.types import SparseExample

__all__ = ["ServingSweepResult", "measure_engine", "serving_accuracy_latency_sweep"]


@dataclass(frozen=True)
class ServingSweepResult:
    """One row of the sweep: engine setting plus measured quality and speed."""

    engine: str
    active_budget: int | None
    precision_at_1: float
    precision_gap: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    throughput_rps: float
    mean_candidates: float
    fallback_rate: float

    def as_row(self) -> dict[str, object]:
        """A flat dict for :func:`repro.harness.report.format_table`."""
        return {
            "engine": self.engine,
            "budget": "full" if self.active_budget is None else self.active_budget,
            "precision@1": round(self.precision_at_1, 4),
            "gap_vs_dense": round(self.precision_gap, 4),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "throughput_rps": round(self.throughput_rps, 1),
            "mean_candidates": round(self.mean_candidates, 1),
            "fallback_rate": round(self.fallback_rate, 3),
        }


def measure_engine(
    engine: InferenceEngine,
    examples: Sequence[SparseExample],
    k: int = 1,
    batch_size: int = 32,
) -> tuple[float, LatencyHistogram, float, float]:
    """Drive ``examples`` through ``engine`` in ``batch_size`` chunks.

    Returns ``(precision@1, latency_histogram, throughput_rps,
    mean_candidates_scored)`` — the shared measurement loop behind the
    sweep and ``benchmarks/bench_serving_latency.py``.  ``examples`` may be
    any sequence, including a mmap-backed
    :class:`repro.data.ShardedDataset`, so sweeps run over real XC test
    splits without loading them eagerly.
    """
    histogram = LatencyHistogram()
    hits = 0
    judged = 0
    candidates = 0
    started = time.perf_counter()
    for start in range(0, len(examples), batch_size):
        chunk = examples[start : start + batch_size]
        chunk_started = time.perf_counter()
        predictions = engine.predict_batch(chunk, k=k)
        elapsed = time.perf_counter() - chunk_started
        # Attribute the batch cost evenly across its requests.
        per_request = elapsed / max(len(chunk), 1)
        for example, prediction in zip(chunk, predictions):
            histogram.record(per_request)
            candidates += prediction.candidates_scored
            if example.labels.size:
                judged += 1
                if np.isin(prediction.class_ids[:1], example.labels).any():
                    hits += 1
    total = time.perf_counter() - started
    precision = hits / judged if judged else 0.0
    throughput = len(examples) / total if total > 0 else 0.0
    mean_candidates = candidates / max(len(examples), 1)
    return precision, histogram, throughput, mean_candidates


def serving_accuracy_latency_sweep(
    network: SlideNetwork,
    examples: Sequence[SparseExample],
    budgets: tuple[int | None, ...] = (None, 256, 128, 64, 32),
    k: int = 1,
    batch_size: int = 32,
) -> list[ServingSweepResult]:
    """Sweep sparse-engine budgets against the dense reference.

    Returns one :class:`ServingSweepResult` per setting — the dense engine
    first, then one row per entry of ``budgets`` (``None`` = unbudgeted).
    """
    if not examples:
        raise ValueError("examples must be non-empty")

    results: list[ServingSweepResult] = []
    dense = DenseInferenceEngine(network)
    dense_precision, histogram, throughput, mean_candidates = measure_engine(
        dense, examples, k, batch_size
    )
    summary = histogram.summary()
    results.append(
        ServingSweepResult(
            engine="dense",
            active_budget=None,
            precision_at_1=dense_precision,
            precision_gap=0.0,
            p50_ms=summary["p50_s"] * 1e3,
            p95_ms=summary["p95_s"] * 1e3,
            p99_ms=summary["p99_s"] * 1e3,
            throughput_rps=throughput,
            mean_candidates=mean_candidates,
            fallback_rate=0.0,
        )
    )

    for budget in budgets:
        engine = SparseInferenceEngine(network, active_budget=budget)
        precision, histogram, throughput, mean_candidates = measure_engine(
            engine, examples, k, batch_size
        )
        summary = histogram.summary()
        results.append(
            ServingSweepResult(
                engine="sparse",
                active_budget=budget,
                precision_at_1=precision,
                precision_gap=dense_precision - precision,
                p50_ms=summary["p50_s"] * 1e3,
                p95_ms=summary["p95_s"] * 1e3,
                p99_ms=summary["p99_s"] * 1e3,
                throughput_rps=throughput,
                mean_candidates=mean_candidates,
                fallback_rate=engine.fallback_rate(),
            )
        )
    return results
