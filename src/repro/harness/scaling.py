"""Measured process-scaling driver (Figure 9 / Table 2, for real).

Unlike :func:`repro.harness.figures.figure9_scalability` — which *projects*
convergence times onto the paper's 44-core machine with the calibrated
device model — this module actually trains the same synthetic XC workload at
several worker-process counts through
:class:`repro.parallel.sharedmem.ProcessHogwildTrainer` and reports measured
wall-clock speedups, CPU utilisation and gradient-conflict counts.  The Fig 9
and Table 2 benchmark scripts are thin views over
:func:`measure_process_scaling`; ``examples/scalability_study.py`` drives it
interactively.

The training data is ingested once into a temporary mmap CSR shard cache
(:mod:`repro.data`), so worker processes stream *disjoint shards* instead of
pickling example lists — the same zero-copy discipline a real deployment
would use.

Measured speedup is bounded by the machine: with ``C`` usable cores, ``N >
C`` processes time-share and cannot beat ``N = C``.  Every result therefore
records :func:`available_cores`, and downstream assertions gate on it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import asdict, dataclass

from repro.config import (
    LayerConfig,
    LSHConfig,
    OptimizerConfig,
    RebuildScheduleConfig,
    SamplingConfig,
    SlideNetworkConfig,
    TrainingConfig,
)
from repro.core.network import SlideNetwork
from repro.data.ingest import ingest_examples
from repro.data.shards import ShardedDataset
from repro.datasets.synthetic import delicious_like_config, generate_synthetic_xc
from repro.parallel.sharedmem import ProcessHogwildTrainer

__all__ = [
    "available_cores",
    "ScalingRun",
    "build_scaling_network_config",
    "measure_process_scaling",
]


def available_cores() -> int:
    """CPU cores this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ScalingRun:
    """One measured training run at a fixed worker-process count."""

    processes: int
    wall_time_s: float
    samples: int
    samples_per_sec: float
    speedup_vs_1: float
    # speedup / processes — 1.0 would be perfect linear scaling.
    parallel_efficiency: float
    precision_at_1: float
    # Total worker CPU seconds / (wall seconds x processes): the measured
    # analogue of Table 2's core-utilisation column.
    cpu_utilization: float
    mean_loss: float
    # Gradient-conflict counters (zeros for the single-process run).
    neurons_updated: int
    neurons_contested: int
    contested_fraction: float
    lsh_rebuilds: int

    def as_row(self) -> dict[str, float | int]:
        row = asdict(self)
        row["wall_time_s"] = round(self.wall_time_s, 3)
        row["samples_per_sec"] = round(self.samples_per_sec, 1)
        row["speedup_vs_1"] = round(self.speedup_vs_1, 3)
        row["parallel_efficiency"] = round(self.parallel_efficiency, 3)
        row["precision_at_1"] = round(self.precision_at_1, 4)
        row["cpu_utilization"] = round(self.cpu_utilization, 3)
        row["mean_loss"] = round(self.mean_loss, 4)
        row["contested_fraction"] = round(self.contested_fraction, 4)
        return row


def build_scaling_network_config(
    feature_dim: int, label_dim: int, seed: int, hidden_dim: int = 64
) -> SlideNetworkConfig:
    """The SLIDE architecture every scaling run trains (LSH output layer)."""
    layers = (
        LayerConfig(size=hidden_dim, activation="relu", lsh=None),
        LayerConfig(
            size=label_dim,
            activation="softmax",
            lsh=LSHConfig(hash_family="simhash", k=4, l=24, bucket_size=96),
            sampling=SamplingConfig(
                strategy="vanilla",
                target_active=max(16, label_dim // 12),
                min_active=16,
            ),
            rebuild=RebuildScheduleConfig(initial_period=20, decay=0.3),
        ),
    )
    return SlideNetworkConfig(input_dim=feature_dim, layers=layers, seed=seed)


def measure_process_scaling(
    process_counts: tuple[int, ...] = (1, 2, 4),
    scale: float = 1.0 / 512.0,
    epochs: int = 3,
    batch_size: int = 32,
    seed: int = 0,
    start_method: str | None = None,
    cache_dir: str | None = None,
) -> dict[str, object]:
    """Train the synthetic XC workload at each process count and measure.

    Every run starts from an identically initialised network (same config
    seed) and consumes the same shard cache for the same number of epochs;
    only the worker-process count changes.  ``processes=1`` is the fused
    single-process baseline (bit-for-bit today's ``hogwild=False`` path) that
    both the speedup and the precision-parity comparisons are anchored to.

    Returns a JSON-ready dict: per-count rows, the workload description, the
    machine's usable core count, and summary speedups.
    """
    if not process_counts or sorted(process_counts)[0] < 1:
        raise ValueError("process_counts must name at least one positive count")
    if 1 not in process_counts:
        process_counts = (1, *process_counts)
    dataset = generate_synthetic_xc(delicious_like_config(scale=scale, seed=seed))
    feature_dim = dataset.config.feature_dim
    label_dim = dataset.config.label_dim
    training = TrainingConfig(
        batch_size=batch_size,
        epochs=epochs,
        optimizer=OptimizerConfig(name="adam", learning_rate=1e-3),
        seed=seed,
    )

    owns_cache = cache_dir is None
    cache_path = cache_dir or tempfile.mkdtemp(prefix="fig9-shards-")
    try:
        # Shard small enough that every worker gets several disjoint shards.
        max_processes = max(process_counts)
        shard_size = max(batch_size, len(dataset.train) // (4 * max_processes) or 1)
        ingest_examples(
            dataset.train,
            feature_dim=feature_dim,
            label_dim=label_dim,
            cache_dir=cache_path,
            shard_size=shard_size,
            source=dataset.config.name,
        )
        sharded_train = ShardedDataset(cache_path, seed=seed)

        runs: list[ScalingRun] = []
        baseline_wall: float | None = None
        for processes in sorted(set(int(p) for p in process_counts)):
            network = SlideNetwork(
                build_scaling_network_config(feature_dim, label_dim, seed)
            )
            trainer = ProcessHogwildTrainer(
                network, training, num_processes=processes, start_method=start_method
            )
            report = trainer.train(sharded_train, dataset.test)
            # cpu_time_s covers exactly the wall_time_s window (training
            # only, evaluation excluded on every path), so the utilisation
            # ratio compares like with like across process counts.
            used_cpu = report.cpu_time_s
            wall = report.wall_time_s
            if baseline_wall is None:
                baseline_wall = wall
            speedup = baseline_wall / max(wall, 1e-9)
            conflict = report.conflict
            runs.append(
                ScalingRun(
                    processes=processes,
                    wall_time_s=wall,
                    samples=report.samples,
                    samples_per_sec=report.samples_per_sec,
                    speedup_vs_1=speedup,
                    parallel_efficiency=speedup / processes,
                    precision_at_1=report.final_accuracy() or 0.0,
                    cpu_utilization=used_cpu / max(wall * processes, 1e-9),
                    mean_loss=report.mean_loss(),
                    neurons_updated=conflict.neurons_updated if conflict else 0,
                    neurons_contested=conflict.neurons_contested if conflict else 0,
                    contested_fraction=(
                        conflict.contested_fraction if conflict else 0.0
                    ),
                    lsh_rebuilds=sum(
                        stats.rebuilds for stats in report.worker_stats
                    ),
                )
            )
    finally:
        if owns_cache:
            shutil.rmtree(cache_path, ignore_errors=True)

    by_count = {run.processes: run for run in runs}
    cores = available_cores()
    return {
        "workload": {
            "dataset": dataset.config.name,
            "feature_dim": feature_dim,
            "label_dim": label_dim,
            "num_train": len(dataset.train),
            "num_test": len(dataset.test),
            "num_shards": sharded_train.num_shards,
            "batch_size": batch_size,
            "epochs": epochs,
            "seed": seed,
        },
        "available_cores": cores,
        "start_method": start_method or "default",
        "rows": [run.as_row() for run in runs],
        "baseline_precision_at_1": round(by_count[1].precision_at_1, 4),
        "max_measured_speedup": round(
            max(run.speedup_vs_1 for run in runs), 3
        ),
        # Speedup is hardware-bound: with fewer usable cores than worker
        # processes, added workers time-share a core instead of adding one.
        "cores_limit_speedup": cores < max(by_count),
    }
