"""One driver function per table of the paper's evaluation section."""

from __future__ import annotations

import time

import numpy as np

from repro.config import LSHConfig
from repro.datasets.stats import PAPER_DATASET_STATS, compute_statistics
from repro.datasets.synthetic import (
    amazon_like_config,
    delicious_like_config,
    generate_synthetic_xc,
)
from repro.lsh.index import LSHIndex
from repro.perf.cpu_counters import slide_breakdown, tf_breakdown
from repro.perf.devices import SLIDE_UTILIZATION, TF_CPU_UTILIZATION
from repro.perf.memory import hugepages_counter_comparison, slide_memory_footprint
from repro.utils.rng import derive_rng

__all__ = [
    "table1_dataset_statistics",
    "table2_core_utilization",
    "table3_insertion_timing",
    "table4_hugepages_counters",
]


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------
def table1_dataset_statistics(
    scale: float = 1.0 / 1024.0, seed: int = 0
) -> list[dict[str, float | int | str]]:
    """Paper datasets (as reported) next to the synthetic stand-ins (as measured)."""
    rows: list[dict[str, float | int | str]] = []
    for stats in PAPER_DATASET_STATS.values():
        row = stats.as_row()
        row["source"] = "paper"
        rows.append(row)

    for builder in (delicious_like_config, amazon_like_config):
        config = builder(scale=scale, seed=seed)
        dataset = generate_synthetic_xc(config)
        stats = compute_statistics(
            config.name,
            dataset.train,
            dataset.test,
            feature_dim=config.feature_dim,
            label_dim=config.label_dim,
        )
        row = stats.as_row()
        row["source"] = "synthetic"
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 2 — core utilisation
# ----------------------------------------------------------------------
def table2_core_utilization(
    threads: tuple[int, ...] = (8, 16, 32),
    output_dim: int = 670_091,
    hidden_dim: int = 128,
    batch_size: int = 256,
    avg_active_output: float = 3000.0,
) -> list[dict[str, float | int | str]]:
    """Core utilisation of TF-CPU vs SLIDE at several thread counts.

    Two columns are reported per framework: the calibrated utilisation curve
    used by the wall-clock device model (anchored on the paper's Table 2),
    and the utilisation implied by the mechanistic pipeline-slot model of
    Figure 6 — showing that the model reproduces the *direction* of the
    paper's measurement (SLIDE stays high and flat, TF-CPU degrades).
    """
    rows: list[dict[str, float | int | str]] = []
    for t in threads:
        tf_model = tf_breakdown(t, output_dim, hidden_dim, batch_size)
        slide_model = slide_breakdown(t, avg_active_output, hidden_dim, batch_size, output_dim)
        rows.append(
            {
                "threads": t,
                "TF-CPU_utilization_calibrated": round(TF_CPU_UTILIZATION(t), 3),
                "SLIDE_utilization_calibrated": round(SLIDE_UTILIZATION(t), 3),
                "TF-CPU_utilization_model": round(tf_model.utilization(), 3),
                "SLIDE_utilization_model": round(slide_model.utilization(), 3),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 3 — hash-table insertion schemes
# ----------------------------------------------------------------------
def table3_insertion_timing(
    num_neurons: int = 20_000,
    dim: int = 128,
    k: int = 6,
    l: int = 20,
    bucket_size: int = 64,
    seed: int = 0,
    update_fractions: tuple[float, ...] = (0.01, 0.1),
) -> list[dict[str, float | int | str]]:
    """Wall-clock of Reservoir vs FIFO table maintenance, three ways.

    Mirrors Table 3 and extends it along the axis this repo optimises:

    * ``per_item_insert_s`` — the legacy maintenance pattern: one scalar
      table touch per (neuron, table) with pre-packed fingerprints;
    * ``insertion_to_ht_s`` — the batched ``insert_many`` placement of the
      same pre-packed fingerprints (one array op per table);
    * ``full_insertion_s`` — hashing + fingerprint packing + batched
      placement (the cost of a cold ``build``);
    * ``update_f*`` — the code-diff incremental ``update`` after re-drawing
      the weights of a fraction of the neurons, with the number of bucket
      moves actually applied, showing that incremental rebuild cost scales
      with the number of *changed* fingerprints.

    (The paper inserts the 205,443 output neurons of Delicious-200K; the
    default here is scaled down but the relative ordering — reservoir
    slightly cheaper than FIFO, both dwarfed by hashing — is preserved.)
    """
    rng = derive_rng(seed)
    base_weights = rng.normal(size=(num_neurons, dim))
    item_ids = np.arange(num_neurons, dtype=np.int64)
    rows: list[dict[str, float | int | str]] = []
    for policy in ("reservoir", "fifo"):
        config = LSHConfig(
            hash_family="simhash", k=k, l=l, bucket_size=bucket_size, insertion_policy=policy
        )
        weights = base_weights.copy()

        # Shared preprocessing: one vectorised hash sweep + one fingerprint
        # pack per table (both insertion styles consume the same arrays).
        index = LSHIndex(dim, config, seed=seed)
        start = time.perf_counter()
        all_codes = index.hash_family.hash_matrix(weights)
        hash_seconds = time.perf_counter() - start
        start = time.perf_counter()
        all_fps = index._fingerprint_matrix(all_codes)
        fingerprint_seconds = time.perf_counter() - start

        # Per-item placement (the legacy pattern).
        per_item_index = LSHIndex(dim, config, seed=seed)
        start = time.perf_counter()
        for neuron_id in range(num_neurons):
            for table_idx, table in enumerate(per_item_index.tables):
                table.insert_fingerprint(int(all_fps[neuron_id, table_idx]), neuron_id)
        per_item_seconds = time.perf_counter() - start

        # Batched placement of the identical fingerprints.
        start = time.perf_counter()
        for table_idx, table in enumerate(index.tables):
            table.insert_many(all_fps[:, table_idx], item_ids)
        batched_seconds = time.perf_counter() - start

        row: dict[str, float | int | str] = {
            "policy": "Reservoir Sampling" if policy == "reservoir" else "FIFO",
            "num_neurons": num_neurons,
            "hash_s": hash_seconds + fingerprint_seconds,
            "per_item_insert_s": per_item_seconds,
            "insertion_to_ht_s": batched_seconds,
            "full_insertion_s": hash_seconds + fingerprint_seconds + batched_seconds,
            "per_item_items_per_s": num_neurons / max(per_item_seconds, 1e-9),
            "batched_items_per_s": num_neurons / max(batched_seconds, 1e-9),
            "batched_speedup_vs_per_item": per_item_seconds / max(batched_seconds, 1e-9),
        }

        # Code-diff incremental updates at increasing dirty fractions.  The
        # proper index (item/code/fingerprint matrices) is built once via the
        # batched path, then each fraction re-draws that many neuron weights.
        update_index = LSHIndex(dim, config, seed=seed)
        update_index.build(weights, item_ids)
        for fraction in update_fractions:
            dirty = np.sort(
                rng.choice(
                    num_neurons, size=max(1, int(num_neurons * fraction)), replace=False
                )
            ).astype(np.int64)
            weights[dirty] = rng.normal(size=(dirty.size, dim))
            moved_before = update_index.num_moved_entries
            start = time.perf_counter()
            update_index.update(dirty, weights[dirty])
            update_seconds = time.perf_counter() - start
            moved = update_index.num_moved_entries - moved_before
            tag = f"update_f{fraction:g}"
            row[f"{tag}_s"] = update_seconds
            row[f"{tag}_dirty"] = int(dirty.size)
            row[f"{tag}_moved"] = int(moved)
            row[f"{tag}_items_per_s"] = dirty.size / max(update_seconds, 1e-9)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 4 — CPU counters with and without hugepages
# ----------------------------------------------------------------------
def table4_hugepages_counters(
    input_dim: int = 135_909,
    hidden_dim: int = 128,
    output_dim: int = 670_091,
    batch_size: int = 256,
    avg_active_output: float = 3000.0,
    avg_input_nnz: float = 75.0,
    l_tables: int = 50,
    iterations_per_second: float = 10.0,
) -> list[dict[str, float | str]]:
    """TLB / page-walk / page-fault metrics with 4 KB vs 2 MB pages (Table 4)."""
    footprint = slide_memory_footprint(
        input_dim=input_dim,
        hidden_dim=hidden_dim,
        output_dim=output_dim,
        batch_size=batch_size,
        avg_active_output=avg_active_output,
        avg_input_nnz=avg_input_nnz,
        l_tables=l_tables,
    )
    comparison = hugepages_counter_comparison(footprint, iterations_per_second)
    rows: list[dict[str, float | str]] = []
    for metric, values in comparison.items():
        rows.append(
            {
                "metric": metric,
                "without_hugepages": values["without_hugepages"],
                "with_hugepages": values["with_hugepages"],
                "improvement_factor": (
                    values["without_hugepages"] / values["with_hugepages"]
                    if values["with_hugepages"]
                    else float("inf")
                ),
            }
        )
    return rows
